"""CLI workflows end-to-end at miniature scale."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.data import load_archive, save_archive


@pytest.fixture(scope="module")
def archive_path(tmp_path_factory, trips):
    path = tmp_path_factory.mktemp("cli") / "trips.npz"
    save_archive(path, trips[:40])
    return path


@pytest.fixture(scope="module")
def model_path(tmp_path_factory, archive_path):
    path = tmp_path_factory.mktemp("cli") / "model.npz"
    code = main(["train", "--data", str(archive_path), "--out", str(path),
                 "--hidden", "16", "--epochs", "2", "--min-hits", "3",
                 "--batch-size", "64"])
    assert code == 0
    return path


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_generate_writes_archive(tmp_path, capsys):
    out = tmp_path / "gen.npz"
    code = main(["generate", "--city", "porto", "--trips", "10",
                 "--out", str(out)])
    assert code == 0
    assert "10 trips" in capsys.readouterr().out
    assert len(load_archive(out)) == 10


def test_generate_harbin(tmp_path):
    out = tmp_path / "harbin.npz"
    assert main(["generate", "--city", "harbin", "--trips", "5",
                 "--out", str(out)]) == 0
    assert len(load_archive(out)) == 5


def test_train_reports_and_saves(model_path, capsys):
    # model_path fixture already ran train; re-check the file loads.
    from repro.core import T2Vec
    model = T2Vec.load(model_path)
    assert model.vocab.size > 4


def test_encode_writes_vectors(tmp_path, model_path, archive_path, capsys):
    out = tmp_path / "vectors.npz"
    code = main(["encode", "--model", str(model_path),
                 "--data", str(archive_path), "--out", str(out)])
    assert code == 0
    with np.load(out) as data:
        vectors = data["vectors"]
    assert vectors.shape == (40, 16)


def test_knn_prints_ranked_list(model_path, archive_path, capsys):
    code = main(["knn", "--model", str(model_path),
                 "--data", str(archive_path), "--query", "0", "--k", "3"])
    assert code == 0
    out = capsys.readouterr().out
    lines = [line for line in out.splitlines() if line.strip()]
    assert len(lines) == 4  # header + 3 rows
    # The query itself is its own nearest neighbour at distance ~0.
    first = lines[1].split()
    assert first[0] == "1" and first[1] == "0"


def test_knn_rejects_bad_index(model_path, archive_path, capsys):
    code = main(["knn", "--model", str(model_path),
                 "--data", str(archive_path), "--query", "999"])
    assert code == 2


def test_evaluate_reports_mean_rank(model_path, archive_path, capsys):
    code = main(["evaluate", "--model", str(model_path),
                 "--data", str(archive_path), "--queries", "5",
                 "--dropping-rate", "0.4"])
    assert code == 0
    assert "mean rank" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Telemetry: --metrics-out and `repro stats`
# ----------------------------------------------------------------------
def test_train_metrics_out_writes_jsonl(tmp_path, archive_path, capsys):
    from repro.telemetry import cache_hit_rate, read_jsonl
    model_out = tmp_path / "model.npz"
    metrics = tmp_path / "metrics.jsonl"
    code = main(["train", "--data", str(archive_path),
                 "--out", str(model_out), "--hidden", "16", "--epochs", "2",
                 "--min-hits", "3", "--batch-size", "64",
                 "--metrics-out", str(metrics)])
    assert code == 0
    records = read_jsonl(metrics)
    names = {(r["type"], r["name"]) for r in records}
    assert ("gauge", "train.epoch_loss") in names
    assert ("gauge", "train.tokens_per_s") in names
    assert ("counter", "train.steps") in names
    assert ("span", "t2vec.fit") in names
    loss = next(r for r in records
                if r["type"] == "gauge" and r["name"] == "train.epoch_loss")
    assert len(loss["history"]) == 2          # one entry per epoch


def test_encode_metrics_capture_cache_and_latency(tmp_path, model_path,
                                                  archive_path, capsys):
    from repro.telemetry import cache_hit_rate, read_jsonl
    out = tmp_path / "vectors.npz"
    metrics = tmp_path / "encode_metrics.jsonl"
    code = main(["encode", "--model", str(model_path),
                 "--data", str(archive_path), "--out", str(out),
                 "--metrics-out", str(metrics)])
    assert code == 0
    records = read_jsonl(metrics)
    latency = next(r for r in records if r["type"] == "histogram"
                   and r["name"] == "encode.latency_s")
    assert latency["count"] > 0 and latency["p95"] >= latency["p50"]
    assert cache_hit_rate(records) == 0.0     # cold cache: all misses


def test_stats_renders_metrics_summary(tmp_path, model_path, archive_path,
                                       capsys):
    metrics = tmp_path / "knn_metrics.jsonl"
    code = main(["knn", "--model", str(model_path),
                 "--data", str(archive_path), "--query", "0", "--k", "3",
                 "--metrics-out", str(metrics)])
    assert code == 0
    capsys.readouterr()
    assert main(["stats", "--metrics", str(metrics)]) == 0
    out = capsys.readouterr().out
    assert "counters" in out
    assert "encode.cache_misses" in out
    assert "encode cache hit rate" in out


def test_stats_missing_file_errors(tmp_path, capsys):
    assert main(["stats", "--metrics", str(tmp_path / "nope.jsonl")]) == 2
    assert "no such metrics file" in capsys.readouterr().err


def test_train_progress_flag(tmp_path, archive_path, capsys):
    model_out = tmp_path / "model_progress.npz"
    code = main(["train", "--data", str(archive_path),
                 "--out", str(model_out), "--hidden", "8", "--epochs", "1",
                 "--min-hits", "3", "--batch-size", "64", "--progress"])
    assert code == 0
    assert "epoch   1:" in capsys.readouterr().err
