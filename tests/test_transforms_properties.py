"""Property-based tests for the degradation transforms and pair stream.

Hypothesis drives `downsample` / `distort` / `degrade` over random
trajectories, rates, and seeds, checking the invariants the paper's pair
synthesis relies on (Section IV-B): endpoints survive downsampling, zero
rates are identities, lengths never grow, and equal seeds reproduce the
exact draw sequence — including across pipeline worker counts.
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.data import Trajectory, degrade, distort, downsample  # noqa: E402
from repro.data.pipeline import TrainingDataPipeline  # noqa: E402

rates = st.floats(min_value=0.0, max_value=0.95, allow_nan=False).map(float)
seeds = st.integers(min_value=0, max_value=2 ** 32 - 1)


@st.composite
def trajectories(draw, min_points=2, max_points=40):
    n = draw(st.integers(min_value=min_points, max_value=max_points))
    rng = np.random.default_rng(draw(seeds))
    points = rng.uniform(-5000.0, 5000.0, size=(n, 2))
    return Trajectory(points=points)


@given(trajectories(), rates, seeds)
def test_downsample_preserves_endpoints_and_never_grows(t, rate, seed):
    out = downsample(t, rate, np.random.default_rng(seed))
    assert 2 <= len(out) <= len(t)
    np.testing.assert_array_equal(out.start, t.start)
    np.testing.assert_array_equal(out.end, t.end)


@given(trajectories(), seeds)
def test_zero_rates_are_identities(t, seed):
    rng = np.random.default_rng(seed)
    assert downsample(t, 0.0, rng) is t
    assert distort(t, 0.0, rng) is t
    degraded = degrade(t, 0.0, 0.0, rng)
    np.testing.assert_array_equal(degraded.points, t.points)


@given(trajectories(), rates, seeds)
def test_distort_keeps_length_and_bounds_displacement(t, rate, seed):
    out = distort(t, rate, np.random.default_rng(seed))
    assert len(out) == len(t)
    moved = np.linalg.norm(out.points - t.points, axis=1)
    # N(0, 30 m) noise per axis: anything beyond 8 sigma is a bug.
    assert float(moved.max(initial=0.0)) < 8 * 30.0 * np.sqrt(2)


@given(trajectories(min_points=3), rates, rates, seeds)
def test_degrade_same_seed_is_deterministic(t, r1, r2, seed):
    first = degrade(t, r1, r2, np.random.default_rng(seed))
    second = degrade(t, r1, r2, np.random.default_rng(seed))
    np.testing.assert_array_equal(first.points, second.points)
    assert 2 <= len(first) <= len(t)


@settings(max_examples=5, deadline=None)
@given(seeds, st.integers(min_value=1, max_value=3))
def test_pair_stream_deterministic_across_num_workers(pytestconfig, seed,
                                                      workers):
    """The pipeline's acceptance invariant, fuzzed over seeds and worker
    counts: sharding never changes the synthesized token stream."""
    trips = pytestconfig._pipeline_trips
    vocab = pytestconfig._pipeline_vocab
    serial = list(TrainingDataPipeline(trips, vocab, seed=seed,
                                       num_workers=0).token_pairs())
    sharded = list(TrainingDataPipeline(trips, vocab, seed=seed,
                                        num_workers=workers,
                                        chunk_size=2).token_pairs())
    assert len(sharded) == len(serial) == 16 * len(trips)
    for (src_a, tgt_a), (src_b, tgt_b) in zip(serial, sharded):
        np.testing.assert_array_equal(src_a, src_b)
        np.testing.assert_array_equal(tgt_a, tgt_b)


@pytest.fixture(autouse=True)
def _stash_pipeline_fixtures(request, pytestconfig):
    """Expose the session trips/vocab to @given tests (hypothesis cannot
    mix function-scoped pytest fixtures into generated examples)."""
    if not hasattr(pytestconfig, "_pipeline_trips"):
        pytestconfig._pipeline_trips = request.getfixturevalue("trips")[:6]
        pytestconfig._pipeline_vocab = request.getfixturevalue("vocab")
    yield
