"""Autograd engine tests: op semantics, broadcasting, gradient checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, concat, stack, where_const
from repro.nn.functional import log_softmax, logsumexp, softmax
from repro.nn.tensor import _unbroadcast


def numeric_gradient(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar f() with respect to x (in place)."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        i = it.multi_index
        original = x[i]
        x[i] = original + eps
        up = f()
        x[i] = original - eps
        down = f()
        x[i] = original
        grad[i] = (up - down) / (2 * eps)
        it.iternext()
    return grad


def check_gradients(build, *arrays, tol=1e-7):
    """Assert autograd gradients of ``build(*tensors)`` match numeric ones."""
    tensors = [Tensor(a, requires_grad=True) for a in arrays]
    out = build(*tensors)
    out.backward()
    for tensor, array in zip(tensors, arrays):
        expected = numeric_gradient(
            lambda: build(*[Tensor(a) for a in arrays]).item(), array)
        assert tensor.grad is not None
        np.testing.assert_allclose(tensor.grad, expected, atol=tol, rtol=1e-5)


@pytest.mark.usefixtures("float64_tensors")
class TestGradients:
    def setup_method(self):
        self.rng = np.random.default_rng(42)

    def test_add_mul(self):
        a = self.rng.standard_normal((3, 4))
        b = self.rng.standard_normal((3, 4))
        check_gradients(lambda x, y: ((x + y) * x).sum(), a, b)

    def test_broadcast_add(self):
        a = self.rng.standard_normal((3, 4))
        b = self.rng.standard_normal((4,))
        check_gradients(lambda x, y: (x + y).sum(), a, b)

    def test_broadcast_mul_keepdim(self):
        a = self.rng.standard_normal((2, 3, 4))
        b = self.rng.standard_normal((1, 3, 1))
        check_gradients(lambda x, y: (x * y).sum(), a, b)

    def test_div(self):
        a = self.rng.standard_normal((3, 3))
        b = self.rng.uniform(0.5, 2.0, (3, 3))
        check_gradients(lambda x, y: (x / y).sum(), a, b)

    def test_pow(self):
        a = self.rng.uniform(0.5, 2.0, (4,))
        check_gradients(lambda x: (x ** 3).sum(), a)

    def test_matmul(self):
        a = self.rng.standard_normal((3, 5))
        b = self.rng.standard_normal((5, 2))
        check_gradients(lambda x, y: (x @ y).sum(), a, b)

    def test_matmul_batched(self):
        a = self.rng.standard_normal((2, 3, 4))
        b = self.rng.standard_normal((2, 4, 5))
        check_gradients(lambda x, y: (x @ y).sum(), a, b)

    def test_nonlinearities(self):
        a = self.rng.standard_normal((3, 4))
        check_gradients(lambda x: x.tanh().sum(), a)
        check_gradients(lambda x: x.sigmoid().sum(), a)
        check_gradients(lambda x: x.relu().sum(), a, tol=1e-6)
        check_gradients(lambda x: x.exp().sum(), a)
        b = self.rng.uniform(0.5, 3.0, (3, 4))
        check_gradients(lambda x: x.log().sum(), b)

    def test_sum_axis(self):
        a = self.rng.standard_normal((3, 4, 2))
        check_gradients(lambda x: (x.sum(axis=1) ** 2).sum(), a)
        check_gradients(lambda x: (x.sum(axis=2, keepdims=True) * x).sum(), a)

    def test_mean(self):
        a = self.rng.standard_normal((4, 5))
        check_gradients(lambda x: (x.mean(axis=0) ** 2).sum(), a)

    def test_reshape_transpose(self):
        a = self.rng.standard_normal((3, 4))
        check_gradients(lambda x: (x.reshape(2, 6) ** 2).sum(), a)
        check_gradients(lambda x: (x.T @ x).sum(), a)

    def test_getitem_slice(self):
        a = self.rng.standard_normal((4, 6))
        check_gradients(lambda x: (x[:, 1:4] ** 2).sum(), a)

    def test_getitem_fancy(self):
        a = self.rng.standard_normal((5, 3))
        idx = np.array([0, 2, 2, 4])  # repeats must accumulate
        check_gradients(lambda x: (x[idx] ** 2).sum(), a)

    def test_take_rows(self):
        a = self.rng.standard_normal((6, 3))
        idx = np.array([[0, 1], [1, 5]])
        check_gradients(lambda x: (x.take_rows(idx) ** 2).sum(), a)

    def test_concat_stack(self):
        a = self.rng.standard_normal((2, 3))
        b = self.rng.standard_normal((2, 3))
        check_gradients(lambda x, y: (concat([x, y], axis=1) ** 2).sum(), a, b)
        check_gradients(lambda x, y: (stack([x, y], axis=0) ** 2).sum(), a, b)

    def test_where_const(self):
        a = self.rng.standard_normal((3, 4))
        b = self.rng.standard_normal((3, 4))
        cond = self.rng.random((3, 4)) > 0.5
        check_gradients(lambda x, y: (where_const(cond, x, y) ** 2).sum(), a, b)

    def test_log_softmax(self):
        a = self.rng.standard_normal((4, 7))
        check_gradients(lambda x: log_softmax(x, axis=1)[np.arange(4),
                                                         [0, 3, 6, 2]].sum(), a)

    def test_logsumexp(self):
        a = self.rng.standard_normal((3, 5)) * 10
        check_gradients(lambda x: logsumexp(x, axis=1).sum(), a)


@pytest.mark.usefixtures("float64_tensors")
class TestSemantics:
    def test_scalar_backward_requires_scalar(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_backward_without_grad_flag(self):
        t = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            t.backward()

    def test_grad_accumulates_across_backwards(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        (t * 3).sum().backward()
        (t * 3).sum().backward()
        np.testing.assert_allclose(t.grad, [6.0])

    def test_detach_cuts_graph(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        out = (t.detach() * 5).sum()
        assert not out.requires_grad

    def test_diamond_graph(self):
        # y = x*x + x*x must give grad 4x (shared subexpression counted twice).
        t = Tensor(np.array([3.0]), requires_grad=True)
        shared = t * t
        (shared + shared).sum().backward()
        np.testing.assert_allclose(t.grad, [12.0])

    def test_softmax_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).standard_normal((5, 9)) * 20)
        s = softmax(x, axis=1).numpy()
        np.testing.assert_allclose(s.sum(axis=1), np.ones(5), atol=1e-12)
        assert (s >= 0).all()

    def test_logsumexp_extreme_values_stable(self):
        x = Tensor(np.array([[1000.0, 1000.0], [-1000.0, -1000.0]]))
        out = logsumexp(x, axis=1).numpy()
        np.testing.assert_allclose(out, [1000.0 + np.log(2), -1000.0 + np.log(2)])

    def test_matmul_vector_cases(self):
        a = Tensor(np.arange(6, dtype=float).reshape(2, 3), requires_grad=True)
        v = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        out = (a @ v).sum()
        out.backward()
        np.testing.assert_allclose(v.grad, a.data.sum(axis=0))


@pytest.mark.usefixtures("float64_tensors")
@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(1, 4), cols=st.integers(1, 4),
    broadcast_rows=st.booleans(), broadcast_cols=st.booleans(),
)
def test_unbroadcast_inverts_broadcasting(rows, cols, broadcast_rows,
                                          broadcast_cols):
    shape = (1 if broadcast_rows else rows, 1 if broadcast_cols else cols)
    grad = np.ones((rows, cols))
    reduced = _unbroadcast(grad, shape)
    assert reduced.shape == shape
    # Total mass is preserved: summing over broadcast axes loses nothing.
    assert reduced.sum() == pytest.approx(grad.sum())


@pytest.mark.usefixtures("float64_tensors")
@settings(max_examples=25, deadline=None)
@given(st.lists(st.floats(-10, 10), min_size=1, max_size=8))
def test_add_mul_match_numpy(values):
    array = np.array(values)
    t = Tensor(array)
    np.testing.assert_allclose((t + t).numpy(), array + array)
    np.testing.assert_allclose((t * 3.0).numpy(), array * 3.0)
    np.testing.assert_allclose((-t).numpy(), -array)
