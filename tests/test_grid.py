"""Equal-size cell grid: point mapping, centroids, bounds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial import Grid


@pytest.fixture
def small_grid():
    return Grid(min_x=0.0, min_y=0.0, max_x=1000.0, max_y=500.0, cell_size=100.0)


def test_dimensions(small_grid):
    assert small_grid.n_cols == 10
    assert small_grid.n_rows == 5
    assert small_grid.num_cells == 50


def test_cell_of_corners(small_grid):
    assert small_grid.cell_of(np.array([0.0, 0.0])) == 0
    assert small_grid.cell_of(np.array([950.0, 450.0])) == 49
    assert small_grid.cell_of(np.array([150.0, 250.0])) == 2 * 10 + 1


def test_cell_of_clamps_out_of_bounds(small_grid):
    assert small_grid.cell_of(np.array([-50.0, -50.0])) == 0
    assert small_grid.cell_of(np.array([5000.0, 5000.0])) == 49


def test_centroid_round_trip(small_grid):
    ids = np.arange(small_grid.num_cells)
    centroids = small_grid.centroid(ids)
    np.testing.assert_array_equal(small_grid.cell_of(centroids), ids)


def test_centroid_values(small_grid):
    np.testing.assert_allclose(small_grid.centroid(np.array([0])), [[50.0, 50.0]])
    np.testing.assert_allclose(small_grid.centroid(np.array([11])), [[150.0, 150.0]])


def test_centroid_rejects_bad_ids(small_grid):
    with pytest.raises(IndexError):
        small_grid.centroid(np.array([50]))
    with pytest.raises(IndexError):
        small_grid.centroid(np.array([-1]))


def test_invalid_construction():
    with pytest.raises(ValueError):
        Grid(0, 0, 10, 10, cell_size=0)
    with pytest.raises(ValueError):
        Grid(0, 0, -1, 10, cell_size=5)


def test_covering_contains_all_points():
    rng = np.random.default_rng(0)
    pts = rng.uniform(-500, 500, size=(200, 2))
    grid = Grid.covering(pts, cell_size=50.0)
    ids = grid.cell_of(pts)
    assert ids.min() >= 0
    assert ids.max() < grid.num_cells
    # Every point is inside its claimed cell (no clamping happened).
    centroids = grid.centroid(ids)
    assert (np.abs(pts - centroids) <= 25.0 + 1e-6).all()


def test_covering_empty_raises():
    with pytest.raises(ValueError):
        Grid.covering(np.empty((0, 2)), 100.0)


@settings(max_examples=40, deadline=None)
@given(
    x=st.floats(0, 999.999), y=st.floats(0, 499.999),
    cell=st.floats(10, 200),
)
def test_point_within_half_cell_of_its_centroid(x, y, cell):
    grid = Grid(0.0, 0.0, 1000.0, 500.0, cell_size=cell)
    point = np.array([x, y])
    centroid = grid.centroid(grid.cell_of(point))
    assert np.abs(point - centroid).max() <= cell / 2 + 1e-9
