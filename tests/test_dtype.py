"""Default-dtype switching and mixed-precision behaviour."""

import numpy as np
import pytest

from repro.nn import (GRU, Adam, Embedding, Linear, Tensor,
                      get_default_dtype, set_default_dtype)


def test_library_default_is_float32():
    # The shipped default trades precision for CPU speed (see tensor.py).
    assert np.dtype(get_default_dtype()) == np.dtype(np.float32)


def test_set_default_dtype_round_trip():
    previous = get_default_dtype()
    try:
        set_default_dtype(np.float64)
        assert Tensor(np.zeros(3, dtype=np.float32)).data.dtype == np.float64
        set_default_dtype(np.float32)
        assert Tensor([1.0, 2.0]).data.dtype == np.float32
    finally:
        set_default_dtype(previous)


def test_rejects_non_float_dtypes():
    with pytest.raises(ValueError):
        set_default_dtype(np.int64)
    with pytest.raises(ValueError):
        set_default_dtype(np.float16)


def test_ops_preserve_dtype():
    t = Tensor(np.ones((3, 3)))
    dtype = t.data.dtype
    assert (t + t).data.dtype == dtype
    assert (t * 2.0).data.dtype == dtype
    assert (t @ t).data.dtype == dtype
    assert t.tanh().data.dtype == dtype
    assert t.sum(axis=0).data.dtype == dtype


def test_gradients_match_parameter_dtype():
    layer = Linear(4, 2, rng=np.random.default_rng(0))
    out = layer(Tensor(np.ones((3, 4)))).sum()
    out.backward()
    assert layer.weight.grad.dtype == layer.weight.data.dtype


def test_training_step_in_float32_is_finite():
    rng = np.random.default_rng(0)
    emb = Embedding(10, 8, rng=rng)
    gru = GRU(8, 8, rng=rng)
    proj = Linear(8, 10, rng=rng)
    params = emb.parameters() + gru.parameters() + proj.parameters()
    opt = Adam(params, lr=1e-3)
    for _ in range(3):
        steps = [emb(rng.integers(0, 10, size=4)) for _ in range(5)]
        outs, _ = gru(steps)
        loss = (proj(outs[-1]) ** 2).mean()
        opt.zero_grad()
        loss.backward()
        opt.step()
        assert np.isfinite(loss.item())
    assert all(np.isfinite(p.data).all() for p in params)
