"""Cell pretraining (Algorithm 1): spatial structure in the embeddings."""

import numpy as np
import pytest

from repro.core import CellEmbeddingConfig, CellEmbeddingTrainer
from repro.spatial import NUM_SPECIALS


@pytest.fixture(scope="module")
def trained(vocab):
    trainer = CellEmbeddingTrainer(vocab, CellEmbeddingConfig(
        dim=16, context_size=6, k_nearest=8, epochs=4, seed=0))
    before = trainer.loss()
    table = trainer.train()
    return trainer, table, before


def test_output_shape(vocab, trained):
    _, table, _ = trained
    assert table.shape == (vocab.size, 16)


def test_training_reduces_objective(trained):
    trainer, _, before = trained
    after = trainer.loss()
    assert after < before


def test_sample_contexts_alignment(vocab):
    trainer = CellEmbeddingTrainer(vocab, CellEmbeddingConfig(
        dim=8, context_size=4, k_nearest=6, seed=1))
    centers, contexts = trainer.sample_contexts()
    assert len(centers) == len(contexts) == vocab.num_hot_cells * 4
    assert centers.min() >= NUM_SPECIALS
    assert contexts.min() >= NUM_SPECIALS
    assert contexts.max() < vocab.size


def test_contexts_are_spatially_close(vocab):
    """Eq. 8: sampled contexts come from the K nearest cells."""
    trainer = CellEmbeddingTrainer(vocab, CellEmbeddingConfig(
        dim=8, context_size=8, k_nearest=6, theta=100.0, seed=2))
    centers, contexts = trainer.sample_contexts()
    dists = vocab.token_distance(centers, contexts)
    knn_tokens, knn_dists = vocab.knn_table(6)
    assert dists.max() <= knn_dists.max() + 1e-9


def test_close_cells_get_closer_embeddings_than_far_cells(vocab, trained):
    """The point of CL: embedding distance correlates with spatial distance."""
    _, table, _ = trained
    hot = np.arange(vocab.num_hot_cells) + NUM_SPECIALS
    rng = np.random.default_rng(3)
    sample = rng.choice(hot, size=min(40, len(hot)), replace=False)

    knn_tokens, _ = vocab.knn_table(5)
    near_sims, far_sims = [], []
    for token in sample:
        neighbours = knn_tokens[token - NUM_SPECIALS, 1:]
        far = hot[rng.integers(0, len(hot), size=4)]
        vec = table[token]
        near_sims.append(np.mean([_cos(vec, table[n]) for n in neighbours]))
        far_sims.append(np.mean([_cos(vec, table[f]) for f in far]))
    assert np.mean(near_sims) > np.mean(far_sims) + 0.05


def _cos(a, b):
    return float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b) + 1e-12))


def test_deterministic_given_seed(vocab):
    a = CellEmbeddingTrainer(vocab, CellEmbeddingConfig(dim=8, epochs=1, seed=9))
    b = CellEmbeddingTrainer(vocab, CellEmbeddingConfig(dim=8, epochs=1, seed=9))
    np.testing.assert_array_equal(a.train(), b.train())
