"""Vector k-NN indexes: exact scan and LSH, single-query and batched."""

import numpy as np
import pytest

from repro.core import ExactIndex, LSHIndex
from repro.core.index import blocked_topk, pairwise_distances


@pytest.fixture(scope="module")
def vectors():
    rng = np.random.default_rng(0)
    return rng.standard_normal((500, 16))


@pytest.fixture(scope="module")
def queries(vectors):
    rng = np.random.default_rng(3)
    return vectors[rng.integers(0, len(vectors), size=12)] \
        + 0.01 * rng.standard_normal((12, 16))


class TestExactIndex:
    def test_knn_matches_argsort(self, vectors):
        index = ExactIndex(vectors)
        query = vectors[7] + 0.01
        idx, dists = index.knn(query, k=10)
        truth = np.argsort(np.linalg.norm(vectors - query, axis=1))[:10]
        np.testing.assert_array_equal(idx, truth)
        assert (np.diff(dists) >= 0).all()

    def test_nearest_to_member_is_itself(self, vectors):
        index = ExactIndex(vectors)
        idx, dists = index.knn(vectors[42], k=1)
        assert idx[0] == 42
        assert dists[0] == pytest.approx(0.0, abs=1e-9)

    def test_k_larger_than_index(self):
        index = ExactIndex(np.eye(3))
        idx, _ = index.knn(np.zeros(3), k=10)
        assert len(idx) == 3

    def test_rejects_non_matrix(self):
        with pytest.raises(ValueError):
            ExactIndex(np.zeros(5))

    def test_knn_matches_reference_scan(self, vectors, queries):
        index = ExactIndex(vectors)
        for query in queries:
            idx, dists = index.knn(query, k=10)
            ref_idx, ref_dists = index.knn_scan(query, k=10)
            np.testing.assert_array_equal(idx, ref_idx)
            np.testing.assert_allclose(dists, ref_dists, rtol=1e-9)


class TestExactBatch:
    def test_batch_matches_per_query(self, vectors, queries):
        index = ExactIndex(vectors)
        batch_idx, batch_dists = index.knn_batch(queries, k=10)
        assert batch_idx.shape == (len(queries), 10)
        for i, query in enumerate(queries):
            idx, dists = index.knn(query, k=10)
            np.testing.assert_array_equal(batch_idx[i], idx)
            np.testing.assert_allclose(batch_dists[i], dists, rtol=1e-12)

    def test_tile_boundary_sizes(self, vectors, queries):
        """Results are identical whatever the tiling (block_rows) is."""
        baseline_idx, baseline_dists = ExactIndex(
            vectors, block_rows=len(vectors)).knn_batch(queries, k=7)
        for block_rows in (1, 7, 100, 499, 500, 501, 10_000):
            idx, dists = ExactIndex(
                vectors, block_rows=block_rows).knn_batch(queries, k=7)
            np.testing.assert_array_equal(idx, baseline_idx, err_msg=str(block_rows))
            np.testing.assert_allclose(dists, baseline_dists, rtol=1e-12)

    def test_k_larger_than_index(self, queries):
        index = ExactIndex(np.eye(16))
        idx, dists = index.knn_batch(queries, k=50)
        assert idx.shape == (len(queries), 16)
        assert (np.diff(dists, axis=1) >= 0).all()

    def test_duplicate_distances_tie_break_by_index(self):
        """Exact duplicates are both returned, ordered by index."""
        base = np.arange(20, dtype=float).reshape(10, 2)
        vectors = np.concatenate([base, base[3:4], base[3:4]])  # rows 10, 11
        index = ExactIndex(vectors, block_rows=4)
        idx, dists = index.knn_batch(base[3], k=3)
        np.testing.assert_array_equal(idx[0], [3, 10, 11])
        np.testing.assert_allclose(dists[0], 0.0, atol=1e-12)

    def test_member_query_distance_exactly_zero(self, vectors):
        """The GEMM identity never leaks cancellation into the output."""
        index = ExactIndex(vectors.astype(np.float32))
        _, dists = index.knn_batch(vectors[:8].astype(np.float32), k=1)
        assert (dists == 0.0).all()

    def test_single_query_1d_and_2d_agree(self, vectors):
        index = ExactIndex(vectors)
        idx1, d1 = index.knn_batch(vectors[5], k=4)
        idx2, d2 = index.knn_batch(vectors[5:6], k=4)
        np.testing.assert_array_equal(idx1, idx2)
        np.testing.assert_array_equal(d1, d2)

    def test_against_brute_force_oracle(self, vectors, queries):
        index = ExactIndex(vectors)
        idx, dists = index.knn_batch(queries, k=5)
        for i, query in enumerate(queries):
            truth = np.sort(np.linalg.norm(vectors - query, axis=1))[:5]
            np.testing.assert_allclose(dists[i], truth, rtol=1e-9)

    def test_pairwise_distances_matches_direct(self, vectors, queries):
        matrix = pairwise_distances(queries, vectors, block_rows=37)
        direct = np.linalg.norm(
            queries[:, None, :] - vectors[None, :, :], axis=2)
        np.testing.assert_allclose(matrix, direct, rtol=1e-6, atol=1e-9)

    def test_blocked_topk_empty_queries(self, vectors):
        idx, dists = blocked_topk(np.empty((0, 16)), vectors, k=3)
        assert idx.shape == (0, 3) and dists.shape == (0, 3)


class TestIndexDtype:
    def test_float32_preserved_end_to_end(self, vectors):
        """float32 embeddings must not be upcast (2x memory + bandwidth)."""
        index = ExactIndex(vectors.astype(np.float32))
        assert index.vectors.dtype == np.float32
        _, dists = index.knn_batch(vectors[:4].astype(np.float32), k=3)
        assert dists.dtype == np.float32
        lsh = LSHIndex(vectors.astype(np.float32), num_tables=2, num_bits=6)
        assert lsh.vectors.dtype == np.float32
        _, lsh_dists = lsh.knn(vectors[0].astype(np.float32), k=3)
        assert lsh_dists.dtype == np.float32

    def test_float64_preserved(self, vectors):
        assert ExactIndex(vectors).vectors.dtype == np.float64
        assert LSHIndex(vectors, num_tables=2).vectors.dtype == np.float64

    def test_integer_input_uses_library_default(self):
        from repro.nn import get_default_dtype
        index = ExactIndex(np.arange(12).reshape(6, 2))
        assert index.vectors.dtype == np.dtype(get_default_dtype())

    def test_float32_matches_float64_results(self, vectors, queries):
        idx32, d32 = ExactIndex(
            vectors.astype(np.float32)).knn_batch(queries, k=5)
        idx64, d64 = ExactIndex(vectors).knn_batch(queries, k=5)
        np.testing.assert_array_equal(idx32, idx64)
        np.testing.assert_allclose(d32, d64, rtol=1e-4)


class TestLSHIndex:
    def test_recall_against_exact(self, vectors):
        exact = ExactIndex(vectors)
        lsh = LSHIndex(vectors, num_tables=12, num_bits=6, seed=0)
        recalls = []
        rng = np.random.default_rng(1)
        for _ in range(20):
            query = vectors[rng.integers(len(vectors))] + 0.05 * rng.standard_normal(16)
            truth, _ = exact.knn(query, k=10)
            approx, _ = lsh.knn(query, k=10)
            recalls.append(len(set(truth) & set(approx)) / 10)
        assert np.mean(recalls) > 0.6  # decent recall with 12 tables

    def test_distances_are_exact_for_returned_candidates(self, vectors):
        lsh = LSHIndex(vectors, num_tables=4, num_bits=6, seed=0)
        query = np.zeros(16)
        idx, dists = lsh.knn(query, k=5)
        np.testing.assert_allclose(
            dists, np.linalg.norm(vectors[idx] - query, axis=1), rtol=1e-9)

    def test_falls_back_to_exact_when_buckets_empty(self, vectors):
        # With many bits, buckets are tiny; a far-away query may miss all.
        lsh = LSHIndex(vectors, num_tables=1, num_bits=16, seed=0)
        far_query = np.full(16, 100.0)
        idx, _ = lsh.knn(far_query, k=20)
        assert len(idx) == 20  # fallback guarantees k results

    def test_candidates_subset_of_index(self, vectors):
        lsh = LSHIndex(vectors, num_tables=4, num_bits=6, seed=0)
        cand = lsh.candidates(vectors[0])
        assert cand.min() >= 0
        assert cand.max() < len(vectors)
        assert 0 in set(cand.tolist())  # a member hashes into its own bucket

    def test_validation(self, vectors):
        with pytest.raises(ValueError):
            LSHIndex(vectors, num_tables=0)
        with pytest.raises(ValueError):
            LSHIndex(vectors, num_bits=63)
        with pytest.raises(ValueError):
            LSHIndex(np.zeros(4))

    def test_faster_than_exact_on_large_index(self):
        """LSH visits a fraction of the index (candidate count << N)."""
        rng = np.random.default_rng(2)
        big = rng.standard_normal((5000, 16))
        lsh = LSHIndex(big, num_tables=4, num_bits=10, seed=0)
        sizes = [len(lsh.candidates(big[i])) for i in range(20)]
        assert np.mean(sizes) < 0.5 * len(big)

    def test_candidates_sorted_and_deterministic(self, vectors):
        """Candidate order no longer depends on python set iteration."""
        a = LSHIndex(vectors, num_tables=4, num_bits=6, seed=0)
        b = LSHIndex(vectors, num_tables=4, num_bits=6, seed=0)
        for query in vectors[:10]:
            cand = a.candidates(query)
            assert (np.diff(cand) > 0).all()    # strictly ascending
            np.testing.assert_array_equal(cand, b.candidates(query))

    def test_csr_buckets_match_dict_semantics(self, vectors):
        """CSR storage holds exactly the old dict-of-lists buckets."""
        lsh = LSHIndex(vectors, num_tables=3, num_bits=5, seed=1)
        for t in range(lsh.num_tables):
            table = {}
            for i, sig in enumerate(lsh._signatures(vectors, t)):
                table.setdefault(int(sig), []).append(i)
            seen = 0
            for sig, members in table.items():
                np.testing.assert_array_equal(
                    lsh.bucket_members(t, sig), members)
                seen += len(members)
            assert seen == len(vectors)          # every row in some bucket
            assert len(lsh.bucket_members(t, 1 << 62)) == 0   # missing sig

    def test_batched_signatures_match_per_table(self, vectors):
        lsh = LSHIndex(vectors, num_tables=4, num_bits=8, seed=2)
        all_sigs = lsh._signatures_all(vectors)
        for t in range(lsh.num_tables):
            np.testing.assert_array_equal(all_sigs[t],
                                          lsh._signatures(vectors, t))


class TestLSHBatch:
    def test_batch_matches_per_query(self, vectors, queries):
        lsh = LSHIndex(vectors, num_tables=6, num_bits=6, seed=0)
        batch_idx, batch_dists = lsh.knn_batch(queries, k=8)
        assert batch_idx.shape == (len(queries), 8)
        for i, query in enumerate(queries):
            idx, dists = lsh.knn(query, k=8)
            np.testing.assert_array_equal(batch_idx[i], idx)
            np.testing.assert_allclose(batch_dists[i], dists, rtol=1e-12)

    def test_batch_matches_per_query_with_fallbacks(self, vectors):
        """Queries that miss every bucket degrade identically in batch."""
        lsh = LSHIndex(vectors, num_tables=1, num_bits=16, seed=0)
        far = np.full((3, 16), 100.0) + np.arange(3)[:, None]
        batch_idx, _ = lsh.knn_batch(far, k=20)
        assert batch_idx.shape == (3, 20)
        for i in range(3):
            idx, _ = lsh.knn(far[i], k=20)
            np.testing.assert_array_equal(batch_idx[i], idx)

    def test_k_larger_than_index(self):
        rng = np.random.default_rng(5)
        small = rng.standard_normal((7, 8))
        lsh = LSHIndex(small, num_tables=2, num_bits=4, seed=0)
        idx, _ = lsh.knn_batch(small[:3], k=50)
        assert idx.shape == (3, 7)

    def test_recall_floor_on_clustered_workload(self):
        """Seeded clustered vectors: batched LSH recovers >= 0.9 of true kNN."""
        rng = np.random.default_rng(7)
        centers = rng.standard_normal((40, 24))
        assign = np.arange(2000) % 40
        vecs = (centers[assign] + 0.05 * rng.standard_normal((2000, 24)))
        qs = vecs[rng.integers(0, 2000, size=30)] \
            + 0.05 * rng.standard_normal((30, 24))
        truth, _ = ExactIndex(vecs).knn_batch(qs, k=10)
        approx, _ = LSHIndex(vecs, num_tables=8, num_bits=12,
                             seed=0).knn_batch(qs, k=10)
        recalls = [len(set(truth[i]) & set(approx[i])) / 10
                   for i in range(len(qs))]
        assert np.mean(recalls) >= 0.9

    def test_batch_groups_shared_buckets(self, vectors):
        """Identical queries hash identically and share one re-rank group."""
        from repro.telemetry import MetricsRegistry
        registry = MetricsRegistry()
        lsh = LSHIndex(vectors, num_tables=4, num_bits=6, seed=0,
                       registry=registry)
        same = np.repeat(vectors[3:4], 5, axis=0)
        idx, _ = lsh.knn_batch(same, k=4)
        assert (idx == idx[0]).all()
        assert registry.histogram("index.lsh.query_groups").values == [1.0]
