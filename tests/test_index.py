"""Vector k-NN indexes: exact scan and LSH."""

import numpy as np
import pytest

from repro.core import ExactIndex, LSHIndex


@pytest.fixture(scope="module")
def vectors():
    rng = np.random.default_rng(0)
    return rng.standard_normal((500, 16))


class TestExactIndex:
    def test_knn_matches_argsort(self, vectors):
        index = ExactIndex(vectors)
        query = vectors[7] + 0.01
        idx, dists = index.knn(query, k=10)
        truth = np.argsort(np.linalg.norm(vectors - query, axis=1))[:10]
        np.testing.assert_array_equal(idx, truth)
        assert (np.diff(dists) >= 0).all()

    def test_nearest_to_member_is_itself(self, vectors):
        index = ExactIndex(vectors)
        idx, dists = index.knn(vectors[42], k=1)
        assert idx[0] == 42
        assert dists[0] == pytest.approx(0.0, abs=1e-9)

    def test_k_larger_than_index(self):
        index = ExactIndex(np.eye(3))
        idx, _ = index.knn(np.zeros(3), k=10)
        assert len(idx) == 3

    def test_rejects_non_matrix(self):
        with pytest.raises(ValueError):
            ExactIndex(np.zeros(5))


class TestLSHIndex:
    def test_recall_against_exact(self, vectors):
        exact = ExactIndex(vectors)
        lsh = LSHIndex(vectors, num_tables=12, num_bits=6, seed=0)
        recalls = []
        rng = np.random.default_rng(1)
        for _ in range(20):
            query = vectors[rng.integers(len(vectors))] + 0.05 * rng.standard_normal(16)
            truth, _ = exact.knn(query, k=10)
            approx, _ = lsh.knn(query, k=10)
            recalls.append(len(set(truth) & set(approx)) / 10)
        assert np.mean(recalls) > 0.6  # decent recall with 12 tables

    def test_distances_are_exact_for_returned_candidates(self, vectors):
        lsh = LSHIndex(vectors, num_tables=4, num_bits=6, seed=0)
        query = np.zeros(16)
        idx, dists = lsh.knn(query, k=5)
        np.testing.assert_allclose(
            dists, np.linalg.norm(vectors[idx] - query, axis=1), rtol=1e-9)

    def test_falls_back_to_exact_when_buckets_empty(self, vectors):
        # With many bits, buckets are tiny; a far-away query may miss all.
        lsh = LSHIndex(vectors, num_tables=1, num_bits=16, seed=0)
        far_query = np.full(16, 100.0)
        idx, _ = lsh.knn(far_query, k=20)
        assert len(idx) == 20  # fallback guarantees k results

    def test_candidates_subset_of_index(self, vectors):
        lsh = LSHIndex(vectors, num_tables=4, num_bits=6, seed=0)
        cand = lsh.candidates(vectors[0])
        assert cand.min() >= 0
        assert cand.max() < len(vectors)
        assert 0 in set(cand.tolist())  # a member hashes into its own bucket

    def test_validation(self, vectors):
        with pytest.raises(ValueError):
            LSHIndex(vectors, num_tables=0)
        with pytest.raises(ValueError):
            LSHIndex(vectors, num_bits=63)
        with pytest.raises(ValueError):
            LSHIndex(np.zeros(4))

    def test_faster_than_exact_on_large_index(self):
        """LSH visits a fraction of the index (candidate count << N)."""
        rng = np.random.default_rng(2)
        big = rng.standard_normal((5000, 16))
        lsh = LSHIndex(big, num_tables=4, num_bits=10, seed=0)
        sizes = [len(lsh.candidates(big[i])) for i in range(20)]
        assert np.mean(sizes) < 0.5 * len(big)
