"""Synthetic city trip generator: the Porto/Harbin substitute."""

import numpy as np
import pytest

from repro.data import (CityConfig, SyntheticCity, dataset_statistics,
                        harbin_like, porto_like)


def test_generate_respects_min_points(city, trips):
    assert all(len(t) >= city.config.min_points for t in trips)


def test_trips_have_route_ids_and_timestamps(trips):
    for trip in trips[:10]:
        assert trip.route_id is not None
        assert trip.timestamps is not None
        assert (np.diff(trip.timestamps) > 0).all()


def test_route_popularity_is_skewed(city):
    """Zipf demand: the most popular route must dominate the tail."""
    trips = city.generate(400, rng=np.random.default_rng(9))
    counts = np.bincount([t.route_id for t in trips],
                         minlength=city.config.num_routes)
    assert counts.max() >= 5 * max(1, counts[counts > 0].min())
    # The head route matches the configured Zipf law roughly.
    assert counts.argmax() < 5


def test_trip_points_follow_the_route(city):
    rng = np.random.default_rng(3)
    trip = city.generate_trip(rng)
    variants = city.routes[trip.route_id]
    # Every sample lies near one of the route variants (within noise bounds).
    best = np.inf
    for polyline in variants:
        dists = np.sqrt(((trip.points[:, None, :] -
                          polyline[None, :, :]) ** 2).sum(axis=2)).min(axis=1)
        best = min(best, dists.max())
    # Samples interpolate between polyline vertices; allow a block of slack.
    assert best < city.config.spacing + 6 * city.config.gps_noise


def test_deterministic_given_seed():
    a = SyntheticCity(CityConfig(grid_cols=6, grid_rows=6, num_routes=10,
                                 min_route_nodes=5, min_points=8, seed=5))
    b = SyntheticCity(CityConfig(grid_cols=6, grid_rows=6, num_routes=10,
                                 min_route_nodes=5, min_points=8, seed=5))
    ta = a.generate(5)
    tb = b.generate(5)
    for x, y in zip(ta, tb):
        np.testing.assert_array_equal(x.points, y.points)


def test_dataset_statistics(trips):
    stats = dataset_statistics(trips)
    assert stats["num_trips"] == len(trips)
    assert stats["num_points"] == sum(len(t) for t in trips)
    assert stats["mean_length"] == pytest.approx(
        np.mean([len(t) for t in trips]))


def test_dataset_statistics_empty():
    stats = dataset_statistics([])
    assert stats == {"num_points": 0, "num_trips": 0, "mean_length": 0.0}


def test_presets_have_distinct_geometry():
    porto = porto_like()
    harbin = harbin_like()
    assert porto.config.name != harbin.config.name
    assert (porto.config.grid_cols, porto.config.grid_rows) != (
        harbin.config.grid_cols, harbin.config.grid_rows)


def test_all_points_stacks_everything(city, trips):
    pts = city.all_points(trips)
    assert pts.shape == (sum(len(t) for t in trips), 2)


def test_impossible_min_points_raises():
    config = CityConfig(grid_cols=4, grid_rows=4, spacing=100.0,
                        num_routes=5, min_route_nodes=3, min_points=500, seed=1)
    city = SyntheticCity(config)
    with pytest.raises(RuntimeError):
        city.generate(3)


def test_sampling_is_nonuniform_in_space(city):
    """Speed drift makes consecutive sample spacing vary along a trip."""
    rng = np.random.default_rng(11)
    trip = city.generate_trip(rng)
    spacing = np.sqrt((np.diff(trip.points, axis=0) ** 2).sum(axis=1))
    assert spacing.std() > 0.1 * spacing.mean()
