"""Synthetic road network substrate."""

import networkx as nx
import numpy as np
import pytest

from repro.data import RoadNetwork


@pytest.fixture(scope="module")
def network():
    return RoadNetwork.perturbed_grid(6, 5, spacing=100.0,
                                      rng=np.random.default_rng(0))


def test_grid_dimensions(network):
    assert network.num_nodes == 30


def test_stays_connected_despite_edge_removal():
    net = RoadNetwork.perturbed_grid(8, 8, spacing=100.0, edge_removal=0.3,
                                     rng=np.random.default_rng(1))
    assert nx.is_connected(net.graph)


def test_edge_removal_actually_removes_edges():
    rng_a, rng_b = np.random.default_rng(2), np.random.default_rng(2)
    full = RoadNetwork.perturbed_grid(8, 8, 100.0, edge_removal=0.0, rng=rng_a)
    sparse = RoadNetwork.perturbed_grid(8, 8, 100.0, edge_removal=0.25, rng=rng_b)
    assert sparse.graph.number_of_edges() < full.graph.number_of_edges()


def test_edges_have_length_attribute(network):
    for u, v, attrs in network.graph.edges(data=True):
        expected = np.linalg.norm(network.positions[u] - network.positions[v])
        assert attrs["length"] == pytest.approx(expected)


def test_shortest_path_valid(network):
    nodes = network.nodes
    path = network.shortest_path(nodes[0], nodes[-1])
    assert path[0] == nodes[0]
    assert path[-1] == nodes[-1]
    for u, v in zip(path, path[1:]):
        assert network.graph.has_edge(u, v)


def test_path_polyline_shape(network):
    path = network.shortest_path(0, network.num_nodes - 1)
    polyline = network.path_polyline(path)
    assert polyline.shape == (len(path), 2)
    with pytest.raises(ValueError):
        network.path_polyline([0])


def test_perturbed_shortest_path_connects_endpoints(network):
    rng = np.random.default_rng(3)
    path = network.perturbed_shortest_path(0, network.num_nodes - 1, rng)
    assert path[0] == 0
    assert path[-1] == network.num_nodes - 1


def test_perturbed_paths_vary(network):
    rng = np.random.default_rng(4)
    paths = {tuple(network.perturbed_shortest_path(0, network.num_nodes - 1,
                                                   rng, sigma=0.6))
             for _ in range(10)}
    assert len(paths) > 1  # perturbation produces alternative routes


def test_random_route_min_nodes(network):
    rng = np.random.default_rng(5)
    route = network.random_route(rng, min_nodes=5)
    assert len(route) >= 5


def test_random_route_impossible_raises():
    tiny = RoadNetwork.perturbed_grid(2, 2, 100.0, edge_removal=0.0,
                                      rng=np.random.default_rng(0))
    with pytest.raises(RuntimeError):
        tiny.random_route(np.random.default_rng(0), min_nodes=50, max_tries=5)


def test_invalid_construction():
    with pytest.raises(ValueError):
        RoadNetwork.perturbed_grid(1, 5, 100.0)
    with pytest.raises(ValueError):
        RoadNetwork.perturbed_grid(4, 4, 100.0, edge_removal=1.0)
    disconnected = nx.Graph([(0, 1), (2, 3)])
    with pytest.raises(ValueError):
        RoadNetwork(disconnected, {i: np.zeros(2) for i in range(4)})
