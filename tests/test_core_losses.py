"""sequence_loss wiring: L1/L2/L3 over real decoder states."""

import numpy as np
import pytest

from repro.core import EncoderDecoder, LossSpec, ModelConfig, sequence_loss
from repro.data import PairDataset, build_training_pairs


@pytest.fixture(scope="module")
def setup(vocab, trips):
    rng = np.random.default_rng(0)
    pairs = build_training_pairs(trips[:3], dropping_rates=(0.0, 0.4),
                                 distorting_rates=(0.0,), rng=rng)
    dataset = PairDataset(pairs, vocab)
    batch = next(dataset.batches(6, rng, shuffle=False))
    model = EncoderDecoder(ModelConfig(vocab.size, 16, 16, num_layers=1,
                                       dropout=0.0, seed=0))
    _, state = model.encode(batch.src, batch.src_mask)
    hidden = model.decode(batch.tgt_in, state, batch.tgt_mask)
    return model, batch, hidden


@pytest.mark.parametrize("kind", ["L1", "L2", "L3"])
def test_all_loss_kinds_finite_and_positive(setup, vocab, kind):
    model, batch, hidden = setup
    spec = LossSpec(kind=kind, k_nearest=6, theta=100.0, noise=16)
    loss = sequence_loss(model, hidden, batch.tgt_out, batch.tgt_mask,
                         vocab, spec, np.random.default_rng(0))
    value = loss.item()
    assert np.isfinite(value)
    assert value > 0


def test_l2_approaches_l1_for_tiny_theta(setup, vocab):
    """Paper: theta -> 0 reduces the proximity loss to NLL."""
    model, batch, hidden = setup
    l1 = sequence_loss(model, hidden, batch.tgt_out, batch.tgt_mask, vocab,
                       LossSpec(kind="L1")).item()
    l2 = sequence_loss(model, hidden, batch.tgt_out, batch.tgt_mask, vocab,
                       LossSpec(kind="L2", theta=1e-3)).item()
    assert l2 == pytest.approx(l1, rel=1e-4)


def test_l3_close_to_l2_with_many_candidates(setup, vocab):
    """With K covering the vocabulary and large noise, L3 estimates L2."""
    model, batch, hidden = setup
    l2 = sequence_loss(model, hidden, batch.tgt_out, batch.tgt_mask, vocab,
                       LossSpec(kind="L2", theta=100.0)).item()
    spec = LossSpec(kind="L3", k_nearest=vocab.num_hot_cells,
                    theta=100.0, noise=max(1, vocab.size))
    l3 = sequence_loss(model, hidden, batch.tgt_out, batch.tgt_mask, vocab,
                       spec, np.random.default_rng(0)).item()
    assert l3 == pytest.approx(l2, rel=0.05)


def test_loss_ignores_padding(setup, vocab):
    """Appending padded rows must not change the loss."""
    model, batch, hidden = setup
    spec = LossSpec(kind="L1")
    base = sequence_loss(model, hidden, batch.tgt_out, batch.tgt_mask,
                         vocab, spec).item()
    # Duplicate hidden rows but mark the duplicates as padding.
    from repro.nn import concat
    doubled = concat([hidden, hidden], axis=0)
    targets = np.concatenate([batch.tgt_out.reshape(-1),
                              batch.tgt_out.reshape(-1)])
    mask = np.concatenate([batch.tgt_mask.reshape(-1),
                           np.zeros(batch.tgt_mask.size)])
    padded = sequence_loss(model, doubled, targets, mask, vocab, spec).item()
    assert padded == pytest.approx(base, rel=1e-6)


def test_gradients_flow_to_all_parameters(setup, vocab):
    model, batch, hidden = setup
    model.zero_grad()
    spec = LossSpec(kind="L3", k_nearest=6, noise=16)
    loss = sequence_loss(model, hidden, batch.tgt_out, batch.tgt_mask,
                         vocab, spec, np.random.default_rng(0))
    loss.backward()
    grads = {name: p.grad for name, p in model.named_parameters()}
    assert grads["proj_weight"] is not None
    assert grads["embedding.weight"] is not None
    assert grads["encoder.cells.0.w_hh"] is not None
    assert np.abs(grads["encoder.cells.0.w_hh"]).sum() > 0


def test_empty_mask_raises(setup, vocab):
    model, batch, hidden = setup
    with pytest.raises(ValueError):
        sequence_loss(model, hidden, batch.tgt_out,
                      np.zeros_like(batch.tgt_mask), vocab, LossSpec(kind="L1"))


def test_invalid_loss_kind_rejected():
    with pytest.raises(ValueError):
        LossSpec(kind="L4")
    with pytest.raises(ValueError):
        LossSpec(k_nearest=0)
    with pytest.raises(ValueError):
        LossSpec(noise=0)
