"""Streaming data pipeline: worker parity, bucketing, prefetch, telemetry.

The contract under test (docs/performance.md "Data pipeline"):

* the token-pair stream is bit-identical for ``num_workers`` ∈ {0, 1, 4}
  (per-original ``SeedSequence``-spawned RNGs, order-restoring collector);
* with a whole-epoch bucketing window, the batch stream exactly matches
  the materialized ``TokenPairDataset.batches`` reference path;
* the worker's raw-array degrade is draw-for-draw identical to the
  public ``degrade`` transform;
* bucketing pads less than shuffle-only batching, and the padding
  counters/queue metrics land in the registry.
"""

import numpy as np
import pytest

from repro.data import (TokenPairDataset, TrainingDataPipeline, degrade,
                        tokenize)
from repro.data.pipeline import (Prefetcher, pair_rng, synthesize_token_pairs)
from repro.telemetry import MetricsRegistry

RATES = (0.0, 0.2, 0.4, 0.6)


def make_pipeline(trips, vocab, **kwargs):
    kwargs.setdefault("seed", 11)
    return TrainingDataPipeline(trips, vocab, **kwargs)


def assert_batches_equal(got, want):
    assert len(got) == len(want)
    for g, w in zip(got, want):
        np.testing.assert_array_equal(g.src, w.src)
        np.testing.assert_array_equal(g.src_mask, w.src_mask)
        np.testing.assert_array_equal(g.tgt_in, w.tgt_in)
        np.testing.assert_array_equal(g.tgt_out, w.tgt_out)
        np.testing.assert_array_equal(g.tgt_mask, w.tgt_mask)


# ----------------------------------------------------------------------
# Determinism / parity
# ----------------------------------------------------------------------
def test_token_stream_bit_identical_across_num_workers(trips, vocab):
    """The acceptance-criteria parity: num_workers ∈ {0, 1, 4}."""
    streams = []
    for workers in (0, 1, 4):
        pipeline = make_pipeline(trips[:20], vocab, num_workers=workers,
                                 chunk_size=4)
        streams.append(list(pipeline.token_pairs()))
    reference = streams[0]
    assert len(reference) == 20 * 16
    for stream in streams[1:]:
        assert len(stream) == len(reference)
        for (src_a, tgt_a), (src_b, tgt_b) in zip(reference, stream):
            np.testing.assert_array_equal(src_a, src_b)
            np.testing.assert_array_equal(tgt_a, tgt_b)


def test_batch_stream_identical_across_num_workers(trips, vocab):
    def batch_stream(workers):
        pipeline = make_pipeline(trips[:20], vocab, num_workers=workers,
                                 chunk_size=4, bucket_batches=3)
        return list(pipeline.batches(8, np.random.default_rng(5)))

    reference = batch_stream(0)
    assert len(reference) == 40  # 320 pairs / batch 8
    assert_batches_equal(batch_stream(1), reference)
    assert_batches_equal(batch_stream(4), reference)


def test_whole_epoch_window_matches_reference_dataset_path(trips, vocab):
    """bucket_batches=None reproduces TokenPairDataset.batches exactly.

    The pipeline draws one seed from the caller's rng and shuffles its
    chunk list with ``default_rng(seed)`` — feeding that derived rng to
    the materialized dataset must give the identical batch stream.
    """
    pipeline = make_pipeline(trips[:16], vocab, bucket_batches=None)
    reference = pipeline.materialize()
    assert isinstance(reference, TokenPairDataset)
    assert len(reference) == len(pipeline)

    caller_rng = np.random.default_rng(123)
    derived = int(caller_rng.integers(np.iinfo(np.int64).max))
    got = list(pipeline.batches(16, np.random.default_rng(123)))
    want = list(reference.batches(16, np.random.default_rng(derived)))
    assert_batches_equal(got, want)


def test_unshuffled_whole_epoch_window_matches_reference(trips, vocab):
    pipeline = make_pipeline(trips[:12], vocab, bucket_batches=None)
    reference = pipeline.materialize()
    got = list(pipeline.batches(16, shuffle=False))
    want = list(reference.batches(16, shuffle=False))
    assert_batches_equal(got, want)


def test_worker_degrade_matches_public_transform(trips, vocab):
    """The fused raw-array degrade is draw-for-draw `degrade`."""
    for index, original in enumerate(trips[:4]):
        pairs = synthesize_token_pairs(original, vocab, RATES, RATES,
                                       pair_rng(7, index))
        oracle_rng = pair_rng(7, index)
        position = 0
        for r1 in RATES:
            for r2 in RATES:
                expected = tokenize(degrade(original, r1, r2, oracle_rng),
                                    vocab)
                np.testing.assert_array_equal(pairs[position][0], expected)
                np.testing.assert_array_equal(pairs[position][1],
                                              tokenize(original, vocab))
                position += 1


def test_same_seed_same_stream_different_seed_differs(trips, vocab):
    first = list(make_pipeline(trips[:6], vocab, seed=1).token_pairs())
    second = list(make_pipeline(trips[:6], vocab, seed=1).token_pairs())
    other = list(make_pipeline(trips[:6], vocab, seed=2).token_pairs())
    for (a, _), (b, _) in zip(first, second):
        np.testing.assert_array_equal(a, b)
    assert any(len(a) != len(c) or (a != c).any()
               for (a, _), (c, _) in zip(first, other))


def test_fresh_each_epoch_regenerates_pairs(trips, vocab):
    stable = make_pipeline(trips[:6], vocab)
    fresh = make_pipeline(trips[:6], vocab, fresh_each_epoch=True)

    def epoch_sources(pipeline):
        return [batch.src.copy()
                for batch in pipeline.batches(16, shuffle=False)]

    assert all((a == b).all() for a, b in
               zip(epoch_sources(stable), epoch_sources(stable)))
    first, second = epoch_sources(fresh), epoch_sources(fresh)
    assert any(a.shape != b.shape or (a != b).any()
               for a, b in zip(first, second))


def test_spawn_start_method_parity(trips, vocab):
    """The macOS/Windows start method produces the identical stream."""
    reference = list(make_pipeline(trips[:8], vocab).token_pairs())
    spawned = list(make_pipeline(trips[:8], vocab, num_workers=2,
                                 chunk_size=4,
                                 start_method="spawn").token_pairs())
    assert len(spawned) == len(reference)
    for (a, ta), (b, tb) in zip(reference, spawned):
        np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(ta, tb)


# ----------------------------------------------------------------------
# Bucketing
# ----------------------------------------------------------------------
def pad_overhead(batches):
    real = sum(float(b.src_mask.sum() + b.tgt_mask.sum()) for b in batches)
    total = sum(float(b.src_mask.size + b.tgt_mask.size) for b in batches)
    return (total - real) / real


def test_bucketing_reduces_padding_overhead(trips, vocab):
    bucketed = make_pipeline(trips, vocab, bucket_batches=8)
    shuffled = make_pipeline(trips, vocab, bucket_batches=8, bucketing=False)
    rng = np.random.default_rng(0)
    bucketed_overhead = pad_overhead(list(bucketed.batches(16, rng)))
    shuffled_overhead = pad_overhead(list(shuffled.batches(16, rng)))
    assert bucketed_overhead < shuffled_overhead


def test_batches_cover_every_pair_exactly_once(trips, vocab):
    pipeline = make_pipeline(trips[:10], vocab, bucket_batches=2)
    batches = list(pipeline.batches(8, np.random.default_rng(3)))
    assert sum(batch.size for batch in batches) == len(pipeline) == 160
    # Every source sequence of the stream appears in some batch column.
    stream_lengths = sorted(len(src) for src, _ in pipeline.token_pairs())
    batch_lengths = sorted(
        int(batch.src_mask[:, j].sum())
        for batch in batches for j in range(batch.size))
    assert batch_lengths == stream_lengths


# ----------------------------------------------------------------------
# Streaming machinery
# ----------------------------------------------------------------------
def test_prefetcher_yields_all_items_in_order():
    items = list(range(57))
    prefetcher = Prefetcher(iter(items), depth=2)
    try:
        assert list(prefetcher) == items
    finally:
        prefetcher.close()


def test_prefetcher_propagates_source_exception():
    def exploding():
        yield 1
        raise ValueError("boom")

    prefetcher = Prefetcher(exploding(), depth=2)
    try:
        assert next(prefetcher) == 1
        with pytest.raises(ValueError, match="boom"):
            for _ in prefetcher:
                pass
    finally:
        prefetcher.close()


def test_early_break_with_workers_cleans_up(trips, vocab):
    """Abandoning iteration mid-epoch (Trainer.evaluate's max_batches
    break) must terminate worker processes, not leak or deadlock."""
    pipeline = make_pipeline(trips, vocab, num_workers=2, chunk_size=4)
    for _ in range(3):
        iterator = pipeline.batches(8, np.random.default_rng(0))
        next(iterator)
        iterator.close()
    # A full pass afterwards still works and is complete.
    batches = list(pipeline.batches(16, np.random.default_rng(0)))
    assert sum(batch.size for batch in batches) == len(pipeline)


def test_worker_failure_surfaces_as_error(trips, vocab):
    pipeline = make_pipeline(trips[:4], vocab, num_workers=1)
    pipeline.vocab = None  # workers will crash tokenizing
    with pytest.raises(RuntimeError, match="worker"):
        list(pipeline.token_pairs())


def test_invalid_configuration_rejected(trips, vocab):
    for kwargs in ({"num_workers": -1}, {"chunk_size": 0},
                   {"bucket_batches": 0}, {"prefetch_batches": -1},
                   {"queue_size": 0}):
        with pytest.raises(ValueError):
            make_pipeline(trips[:4], vocab, **kwargs)
    with pytest.raises(ValueError):
        next(make_pipeline(trips[:4], vocab).batches(0))


# ----------------------------------------------------------------------
# Telemetry
# ----------------------------------------------------------------------
def test_telemetry_metrics_recorded(trips, vocab):
    registry = MetricsRegistry()
    pipeline = make_pipeline(trips[:16], vocab, num_workers=2, chunk_size=4,
                             registry=registry)
    batches = list(pipeline.batches(16, np.random.default_rng(0)))
    assert registry.counter("data.pairs").value == len(pipeline)
    assert registry.counter("data.batches").value == len(batches)
    assert registry.counter("data.tokens.real").value > 0
    assert registry.histogram("data.worker.produce_s").count > 0
    assert registry.histogram("data.worker.wait_s").count > 0
    real = registry.counter("data.tokens.real").value
    pad = registry.counter("data.tokens.pad").value
    want_real = sum(float(b.src_mask.sum() + b.tgt_mask.sum())
                    for b in batches)
    want_total = sum(float(b.src_mask.size + b.tgt_mask.size)
                     for b in batches)
    assert real == pytest.approx(want_real)
    assert real + pad == pytest.approx(want_total)


# ----------------------------------------------------------------------
# Trainer integration
# ----------------------------------------------------------------------
def test_trainer_fits_from_pipeline(trips, vocab):
    from repro.core import (EncoderDecoder, LossSpec, ModelConfig, Trainer,
                            TrainingConfig)
    pipeline = make_pipeline(trips[:8], vocab, num_workers=2, chunk_size=4)
    validation = make_pipeline(trips[8:12], vocab, seed=99).materialize()
    model = EncoderDecoder(ModelConfig(vocab.size, 16, 16, num_layers=1,
                                       dropout=0.0, seed=0))
    trainer = Trainer(model, vocab, LossSpec(kind="L1"),
                      TrainingConfig(batch_size=16, max_epochs=2,
                                     patience=10))
    result = trainer.fit(pipeline, validation=validation)
    assert result.epochs_run == 2
    assert result.steps == 2 * len(list(pipeline.batches(16)))
    assert np.isfinite(result.train_losses).all()
