"""Generic time-series encoding (paper future work 2)."""

import numpy as np
import pytest

from repro.core import (Series2Vec, Series2VecConfig, SeriesVocabulary,
                        TrainingConfig, distort_series, downsample_series)
from repro.core.losses import LossSpec


def wave(kind: str, n: int, rng: np.random.Generator) -> np.ndarray:
    """Three easily separable series families."""
    t = np.linspace(0, 4 * np.pi, n)
    phase = rng.uniform(0, 2 * np.pi)
    noise = 0.05 * rng.standard_normal(n)
    if kind == "sine":
        return np.sin(t + phase) + noise
    if kind == "ramp":
        return np.linspace(-1, 1, n) + 0.1 * np.sin(3 * t + phase) + noise
    return np.sign(np.sin(t + phase)) + noise  # square


@pytest.fixture(scope="module")
def series_data():
    rng = np.random.default_rng(0)
    kinds = ["sine", "ramp", "square"]
    data = [(k, wave(k, rng.integers(30, 50), rng))
            for k in kinds for _ in range(20)]
    rng.shuffle(data)
    return data


@pytest.fixture(scope="module")
def fitted(series_data):
    model = Series2Vec(Series2VecConfig(
        num_bins=24, embedding_size=16, hidden_size=16,
        loss=LossSpec(k_nearest=6, noise=16),
        training=TrainingConfig(batch_size=64, max_epochs=4, patience=10),
        seed=0))
    result = model.fit([s for _, s in series_data[:45]])
    return model, result


class TestSeriesVocabulary:
    def test_build_respects_bin_budget(self):
        rng = np.random.default_rng(0)
        vocab = SeriesVocabulary.build([rng.standard_normal(100)], num_bins=16)
        assert 2 <= vocab.num_hot_cells <= 17
        assert vocab.size == vocab.num_hot_cells + 4

    def test_tokenize_round_trip_on_centers(self):
        vocab = SeriesVocabulary(np.array([0.0, 1.0, 2.0]))
        tokens = vocab.tokenize_series(np.array([0.0, 1.0, 2.0]))
        np.testing.assert_array_equal(tokens, [4, 5, 6])

    def test_tokenize_maps_to_nearest_center(self):
        vocab = SeriesVocabulary(np.array([0.0, 10.0]))
        tokens = vocab.tokenize_series(np.array([1.0, 9.0, 100.0]))
        np.testing.assert_array_equal(tokens, [4, 5, 5])

    def test_proximity_kernels_inherited(self):
        vocab = SeriesVocabulary(np.array([0.0, 1.0, 2.0, 5.0]))
        cand, weights = vocab.proximity_candidates(np.array([4]), k=3, theta=1.0)
        np.testing.assert_allclose(weights.sum(axis=1), 1.0)
        assert cand[0, 0] == 4  # self is nearest

    def test_too_few_bins_rejected(self):
        with pytest.raises(ValueError):
            SeriesVocabulary(np.array([1.0]))
        with pytest.raises(ValueError):
            SeriesVocabulary.build([np.array([])], num_bins=8)


class TestSeriesTransforms:
    def test_downsample_keeps_endpoints(self):
        rng = np.random.default_rng(0)
        s = np.arange(30, dtype=float)
        out = downsample_series(s, 0.8, rng)
        assert out[0] == 0.0 and out[-1] == 29.0
        assert len(out) < 30

    def test_downsample_rate_zero_identity(self):
        rng = np.random.default_rng(0)
        s = np.arange(5, dtype=float)
        np.testing.assert_array_equal(downsample_series(s, 0.0, rng), s)

    def test_distort_moves_selected_fraction(self):
        rng = np.random.default_rng(0)
        s = np.zeros(1000)
        out = distort_series(s, 0.3, 1.0, rng)
        moved = (out != 0).mean()
        assert 0.2 < moved < 0.4

    def test_invalid_rates(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            downsample_series(np.zeros(5), 1.0, rng)
        with pytest.raises(ValueError):
            distort_series(np.zeros(5), 1.5, 1.0, rng)


class TestSeries2Vec:
    def test_fit_reduces_loss(self, fitted):
        _, result = fitted
        assert result.train_losses[-1] < result.train_losses[0]

    def test_encode_shape(self, fitted, series_data):
        model, _ = fitted
        vec = model.encode(series_data[0][1])
        assert vec.shape == (16,)

    def test_same_family_closer_than_cross_family(self, fitted, series_data):
        model, _ = fitted
        heldout = series_data[45:]
        by_kind = {}
        for kind, s in heldout:
            by_kind.setdefault(kind, []).append(s)
        kinds = sorted(by_kind)
        # Compare within-family vs cross-family mean distances.
        within, across = [], []
        for kind in kinds:
            group = by_kind[kind]
            if len(group) < 2:
                continue
            within.append(model.distance(group[0], group[1]))
            other = by_kind[kinds[(kinds.index(kind) + 1) % len(kinds)]][0]
            across.append(model.distance(group[0], other))
        assert np.mean(within) < np.mean(across)

    def test_knn_returns_valid_indices(self, fitted, series_data):
        model, _ = fitted
        candidates = [s for _, s in series_data[45:]]
        idx = model.knn(series_data[45][1], candidates, k=3)
        assert len(idx) == 3
        assert idx[0] == 0  # the query itself is in the candidate list

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            Series2Vec().encode(np.zeros(10))

    def test_fit_rejects_degenerate_input(self):
        with pytest.raises(ValueError):
            Series2Vec().fit([np.zeros(2)])
