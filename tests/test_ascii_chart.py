"""ASCII line-chart rendering for the figure benches."""

import numpy as np
import pytest

from repro.eval.ascii_chart import MARKERS, line_chart


def test_contains_title_series_markers_and_legend():
    chart = line_chart("Figure X", [1, 2, 3],
                       {"t2vec": [1.0, 2.0, 3.0], "EDR": [3.0, 2.0, 1.0]})
    assert "Figure X" in chart
    assert "o=t2vec" in chart and "x=EDR" in chart
    assert "o" in chart and "x" in chart


def test_extremes_placed_on_top_and_bottom_rows():
    chart = line_chart("t", [0, 1], {"s": [0.0, 10.0]})
    rows = [line for line in chart.splitlines() if "|" in line]
    assert "o" in rows[0]      # max lands on the top plot row
    assert "o" in rows[-1]     # min on the bottom plot row


def test_x_axis_labels_present():
    chart = line_chart("t", [100, 800], {"s": [1.0, 2.0]})
    assert "100" in chart and "800" in chart


def test_thousands_abbreviated():
    chart = line_chart("t", [20000, 100000], {"s": [1.0, 2.0]})
    assert "20k" in chart and "100k" in chart


def test_log_scale_orders_magnitudes():
    chart = line_chart("t", [1, 2, 3], {"s": [0.001, 1.0, 1000.0]},
                       logy=True, height=9)
    rows = [line for line in chart.splitlines() if "|" in line]
    top = next(i for i, r in enumerate(rows) if "o" in r)
    bottom = max(i for i, r in enumerate(rows) if "o" in r)
    # On a log axis the three points are evenly spread, so the middle
    # point sits near the middle row.
    middle_rows = [i for i, r in enumerate(rows) if "o" in r]
    assert len(middle_rows) == 3
    assert abs(middle_rows[1] - (top + bottom) / 2) <= 1


def test_log_scale_rejects_nonpositive():
    with pytest.raises(ValueError):
        line_chart("t", [1], {"s": [0.0]}, logy=True)


def test_flat_series_renders_without_dividing_by_zero():
    chart = line_chart("t", [1, 2, 3], {"s": [5.0, 5.0, 5.0]})
    assert "o" in chart


def test_validation():
    with pytest.raises(ValueError):
        line_chart("t", [1, 2], {})
    with pytest.raises(ValueError):
        line_chart("t", [1, 2], {"s": [1.0]})
    too_many = {f"s{i}": [1.0] for i in range(len(MARKERS) + 1)}
    with pytest.raises(ValueError):
        line_chart("t", [1], too_many)


def test_segments_interpolated_between_points():
    chart = line_chart("t", list(range(10)),
                       {"s": list(np.linspace(0, 100, 10))}, width=40)
    assert "." in chart  # connecting dots drawn


def test_single_point_series():
    chart = line_chart("t", [5], {"s": [2.0]})
    assert "o" in chart
