"""Decoder losses: L1/L2/L3 semantics and their mutual consistency."""

import numpy as np
import pytest

from repro.nn import (Tensor, masked_sampled_loss, nll_loss,
                      sampled_weighted_loss, weighted_nll_loss)

from .test_tensor import check_gradients


@pytest.fixture
def rng():
    return np.random.default_rng(3)


@pytest.mark.usefixtures("float64_tensors")
class TestNLL:
    def test_matches_manual_cross_entropy(self, rng):
        logits = rng.standard_normal((4, 6))
        targets = np.array([0, 2, 5, 1])
        loss = nll_loss(Tensor(logits), targets).item()
        log_probs = logits - np.log(np.exp(logits).sum(axis=1, keepdims=True))
        expected = -log_probs[np.arange(4), targets].mean()
        assert loss == pytest.approx(expected, rel=1e-9)

    def test_mask_excludes_rows(self, rng):
        logits = rng.standard_normal((4, 6))
        targets = np.array([0, 2, 5, 1])
        mask = np.array([1.0, 1.0, 0.0, 0.0])
        masked = nll_loss(Tensor(logits), targets, mask).item()
        unmasked = nll_loss(Tensor(logits[:2]), targets[:2]).item()
        assert masked == pytest.approx(unmasked, rel=1e-9)

    def test_empty_mask_raises(self, rng):
        logits = Tensor(rng.standard_normal((2, 3)))
        with pytest.raises(ValueError):
            nll_loss(logits, np.array([0, 1]), np.zeros(2))

    def test_gradients(self, rng):
        logits = rng.standard_normal((3, 5))
        targets = np.array([1, 0, 4])
        check_gradients(lambda x: nll_loss(x, targets), logits)


@pytest.mark.usefixtures("float64_tensors")
class TestWeightedNLL:
    def test_one_hot_weights_reduce_to_nll(self, rng):
        logits = rng.standard_normal((4, 6))
        targets = np.array([0, 2, 5, 1])
        weights = np.zeros((4, 6))
        weights[np.arange(4), targets] = 1.0
        l2 = weighted_nll_loss(Tensor(logits), weights).item()
        l1 = nll_loss(Tensor(logits), targets).item()
        assert l2 == pytest.approx(l1, rel=1e-9)

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            weighted_nll_loss(Tensor(np.zeros((2, 3))), np.zeros((2, 4)))

    def test_gradients(self, rng):
        logits = rng.standard_normal((3, 5))
        weights = rng.dirichlet(np.ones(5), size=3)
        check_gradients(lambda x: weighted_nll_loss(x, weights), logits)


@pytest.mark.usefixtures("float64_tensors")
class TestSampledLoss:
    def test_full_candidate_set_matches_weighted_nll(self, rng):
        """With NO = the entire vocabulary, L3 equals L2 exactly."""
        vocab, hidden_dim, batch = 7, 4, 3
        hidden = rng.standard_normal((batch, hidden_dim))
        proj = rng.standard_normal((vocab, hidden_dim))
        weights_full = rng.dirichlet(np.ones(vocab), size=batch)
        candidates = np.tile(np.arange(vocab), (batch, 1))
        l3 = sampled_weighted_loss(Tensor(hidden), Tensor(proj), candidates,
                                   weights_full).item()
        logits = hidden @ proj.T
        l2 = weighted_nll_loss(Tensor(logits), weights_full).item()
        assert l3 == pytest.approx(l2, rel=1e-9)

    def test_masked_dense_variant_agrees_with_gathered(self, rng):
        vocab, hidden_dim, batch, k = 9, 4, 5, 3
        hidden = rng.standard_normal((batch, hidden_dim))
        proj = rng.standard_normal((vocab, hidden_dim))
        candidates = np.stack([rng.choice(vocab, size=k, replace=False)
                               for _ in range(batch)])
        w = rng.dirichlet(np.ones(k), size=batch)
        gathered = sampled_weighted_loss(Tensor(hidden), Tensor(proj),
                                         candidates, w).item()
        logits = Tensor(hidden @ proj.T)
        rows = np.arange(batch)[:, None]
        dense_w = np.zeros((batch, vocab))
        dense_w[rows, candidates] = w
        bias = np.full((batch, vocab), -1e9)
        bias[rows, candidates] = 0.0
        dense = masked_sampled_loss(logits, dense_w, bias).item()
        assert dense == pytest.approx(gathered, rel=1e-6)

    def test_noise_cells_only_affect_partition(self, rng):
        """Adding noise candidates (weight 0) changes Z but not the numerator."""
        hidden = rng.standard_normal((2, 3))
        proj = rng.standard_normal((6, 3))
        cand_small = np.array([[0, 1], [2, 3]])
        w = np.array([[0.6, 0.4], [0.5, 0.5]])
        small = sampled_weighted_loss(Tensor(hidden), Tensor(proj),
                                      cand_small, w).item()
        cand_big = np.concatenate([cand_small, np.array([[4, 5], [4, 5]])], axis=1)
        w_big = np.concatenate([w, np.zeros((2, 2))], axis=1)
        big = sampled_weighted_loss(Tensor(hidden), Tensor(proj),
                                    cand_big, w_big).item()
        assert big > small  # larger partition always increases -log p

    def test_bias_is_applied(self, rng):
        hidden = rng.standard_normal((2, 3))
        proj = rng.standard_normal((4, 3))
        bias = rng.standard_normal(4)
        cand = np.array([[0, 1], [2, 3]])
        w = np.array([[1.0, 0.0], [1.0, 0.0]])
        without = sampled_weighted_loss(Tensor(hidden), Tensor(proj), cand, w).item()
        with_bias = sampled_weighted_loss(Tensor(hidden), Tensor(proj), cand, w,
                                          proj_bias=Tensor(bias)).item()
        assert without != pytest.approx(with_bias)

    def test_gradients_hidden_and_proj(self, rng):
        hidden = rng.standard_normal((2, 3))
        proj = rng.standard_normal((6, 3))
        cand = np.array([[0, 1, 4], [2, 3, 5]])
        w = rng.dirichlet(np.ones(3), size=2)
        check_gradients(
            lambda h, p: sampled_weighted_loss(h, p, cand, w), hidden, proj)

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            sampled_weighted_loss(Tensor(np.zeros((2, 3))),
                                  Tensor(np.zeros((5, 3))),
                                  np.zeros((2, 4), dtype=int), np.zeros((2, 3)))
