"""Seq2seq encoder-decoder model mechanics."""

import numpy as np
import pytest

from repro.core import EncoderDecoder, ModelConfig
from repro.data import build_training_pairs, PairDataset
from repro.spatial import BOS, EOS


@pytest.fixture(scope="module")
def model(vocab):
    return EncoderDecoder(ModelConfig(vocab_size=vocab.size,
                                      embedding_size=16, hidden_size=16,
                                      num_layers=2, dropout=0.0, seed=0))


@pytest.fixture(scope="module")
def batch(vocab, trips):
    rng = np.random.default_rng(0)
    pairs = build_training_pairs(trips[:4], dropping_rates=(0.0, 0.4),
                                 distorting_rates=(0.0,), rng=rng)
    dataset = PairDataset(pairs, vocab)
    return next(dataset.batches(8, rng, shuffle=False))


def test_encode_shapes(model, batch):
    v, state = model.encode(batch.src, batch.src_mask)
    assert v.shape == (batch.size, 16)
    assert len(state) == 2
    assert state[0].shape == (batch.size, 16)


def test_representation_uses_top_layer_final_state(model, batch):
    v, state = model.encode(batch.src, batch.src_mask)
    np.testing.assert_array_equal(v.numpy(), state[-1].numpy())


def test_representations_distinguish_inputs(model, batch):
    v = model.represent(batch.src, batch.src_mask)
    pairwise = np.sqrt(((v[:, None] - v[None, :]) ** 2).sum(axis=2))
    # Different trajectories map to different vectors even untrained.
    off_diag = pairwise[~np.eye(len(v), dtype=bool)]
    assert off_diag.min() > 0


def test_represent_is_deterministic_and_restores_mode(model, batch):
    model.train()
    a = model.represent(batch.src, batch.src_mask)
    b = model.represent(batch.src, batch.src_mask)
    np.testing.assert_array_equal(a, b)
    assert model.training  # mode restored


def test_decode_output_shape(model, batch):
    _, state = model.encode(batch.src, batch.src_mask)
    hidden = model.decode(batch.tgt_in, state, batch.tgt_mask)
    t_steps = batch.tgt_in.shape[0]
    assert hidden.shape == (t_steps * batch.size, 16)


def test_logits_shape(model, batch, vocab):
    _, state = model.encode(batch.src, batch.src_mask)
    hidden = model.decode(batch.tgt_in, state, batch.tgt_mask)
    logits = model.logits(hidden)
    assert logits.shape == (hidden.shape[0], vocab.size)


def test_greedy_decode_terminates_and_excludes_specials(model, batch):
    decoded = model.greedy_decode(batch.src, batch.src_mask, max_len=20)
    assert len(decoded) == batch.size
    for tokens in decoded:
        assert len(tokens) <= 20
        assert not np.isin(tokens, [BOS, EOS]).any()


def test_encoder_mask_padding_invariance(model, vocab):
    """Extra padding must not change a sequence's representation."""
    seq = np.array([5, 6, 7, 8])
    short = seq.reshape(-1, 1)
    short_mask = np.ones((4, 1))
    padded = np.concatenate([seq, [0, 0, 0]]).reshape(-1, 1)
    padded_mask = np.concatenate([np.ones(4), np.zeros(3)]).reshape(-1, 1)
    a = model.represent(short, short_mask)
    b = model.represent(padded, padded_mask)
    np.testing.assert_allclose(a, b, atol=1e-6)


def test_parameter_count_scales_with_config(vocab):
    small = EncoderDecoder(ModelConfig(vocab.size, 8, 8, num_layers=1))
    big = EncoderDecoder(ModelConfig(vocab.size, 32, 32, num_layers=3))
    assert big.num_parameters() > small.num_parameters()


def test_beam_decode_terminates_and_excludes_specials(model, batch):
    decoded = model.beam_decode(batch.src, batch.src_mask, beam_width=3,
                                max_len=15)
    assert len(decoded) == batch.size
    for tokens in decoded:
        assert len(tokens) <= 15
        assert not np.isin(tokens, [BOS, EOS]).any()


def test_beam_width_one_matches_greedy(model, batch):
    """A width-1 beam is greedy search (same argmax path)."""
    greedy = model.greedy_decode(batch.src, batch.src_mask, max_len=12)
    beam = model.beam_decode(batch.src, batch.src_mask, beam_width=1,
                             max_len=12)
    for g, b in zip(greedy, beam):
        np.testing.assert_array_equal(g, b)


def test_beam_decode_rejects_bad_width(model, batch):
    import pytest as _pytest
    with _pytest.raises(ValueError):
        model.beam_decode(batch.src, batch.src_mask, beam_width=0)


def test_beam_decode_works_with_lstm(vocab):
    lstm_model = EncoderDecoder(ModelConfig(vocab.size, 12, 12, num_layers=1,
                                            dropout=0.0, rnn_type="lstm",
                                            seed=0))
    src = np.array([[5, 6], [7, 8]])
    mask = np.ones((2, 2))
    decoded = lstm_model.beam_decode(src, mask, beam_width=2, max_len=8)
    assert len(decoded) == 2
