"""Cross-module integration: miniature versions of the paper's pipeline.

These tests glue together the generator, vocabulary, model, baselines,
eval harness, clustering, and persistence — the paths a downstream user
actually exercises — at the smallest scale that is still meaningful.
"""

import numpy as np
import pytest

from repro import LossSpec, T2Vec, T2VecConfig, TrainingConfig
from repro.baselines import CMS, EDR, EDwP
from repro.data import load_archive, save_archive
from repro.eval import build_setup, format_table, mean_rank
from repro.tasks import cluster_purity, cluster_trajectories


@pytest.fixture(scope="module")
def mini_model(trips):
    model = T2Vec(T2VecConfig(
        min_hits=3, embedding_size=24, hidden_size=24, num_layers=1,
        dropout=0.0, loss=LossSpec(kind="L3", k_nearest=6, noise=16),
        dropping_rates=(0.0, 0.4), distorting_rates=(0.0,),
        training=TrainingConfig(batch_size=128, max_epochs=6, patience=10),
        seed=0))
    model.fit(trips[:60])
    return model


def test_mini_most_similar_experiment(mini_model, trips):
    """The Figure-4 protocol end to end, t2vec vs two baselines."""
    setup = build_setup(trips[60:75], trips[20:60], num_queries=10,
                        rng=np.random.default_rng(0))
    measures = [mini_model, EDR(100.0), EDwP(), CMS(mini_model.vocab)]
    ranks = {m.name: mean_rank(m, setup) for m in measures}
    random_rank = len(setup.database) / 2
    # Every structured measure beats random; CMS is never the best.
    for name, rank in ranks.items():
        assert rank < random_rank, name
    assert ranks["CMS"] >= min(ranks.values())
    # And the results render into a paper-style table without error.
    table = format_table("mini", "r", [0], {k: [v] for k, v in ranks.items()})
    assert "t2vec" in table


def test_mini_robustness_trend(mini_model, trips):
    """t2vec's rank under heavy degradation stays within a sane factor."""
    clean = build_setup(trips[60:75], trips[20:60], 10,
                        rng=np.random.default_rng(1))
    degraded = build_setup(trips[60:75], trips[20:60], 10,
                           dropping_rate=0.5, rng=np.random.default_rng(1))
    clean_rank = mean_rank(mini_model, clean)
    degraded_rank = mean_rank(mini_model, degraded)
    assert degraded_rank < 6.0 * max(clean_rank, 1.0)


def test_model_survives_archive_and_checkpoint_round_trip(
        tmp_path, mini_model, trips):
    """Save model + archive, reload both, and get identical distances."""
    archive = tmp_path / "trips.npz"
    checkpoint = tmp_path / "model.npz"
    save_archive(archive, trips[60:70])
    mini_model.save(checkpoint)

    restored_model = T2Vec.load(checkpoint)
    restored_trips = load_archive(archive)
    original = mini_model.distance_to_many(trips[60], trips[60:70])
    roundtrip = restored_model.distance_to_many(restored_trips[0],
                                                restored_trips)
    np.testing.assert_allclose(roundtrip, original, atol=1e-5)


def test_clustering_on_learned_vectors_beats_chance(mini_model, trips):
    heldout = trips[60:80]
    route_ids = [t.route_id for t in heldout]
    n_clusters = min(6, len(set(route_ids)))
    labels = cluster_trajectories(mini_model, heldout, n_clusters, seed=0)
    purity = cluster_purity(labels, route_ids)
    # Chance purity is roughly the dominant route's share; learned
    # vectors should do clearly better on route-skewed data.
    counts = np.bincount(route_ids)
    chance = counts.max() / counts.sum()
    assert purity >= chance


def test_full_run_telemetry_acceptance(tmp_path, trips):
    """The issue's acceptance path: fit + encode_many + knn under one
    registry produces JSONL with per-epoch loss, tokens/sec, an
    encode-latency histogram, and cache hit-rate — and `stats` renders it."""
    from repro import ExactIndex, MetricsRegistry
    from repro.telemetry import cache_hit_rate, read_jsonl, summarize, write_jsonl

    registry = MetricsRegistry()
    model = T2Vec(T2VecConfig(
        min_hits=3, embedding_size=16, hidden_size=16, num_layers=1,
        dropout=0.0, loss=LossSpec(kind="L1"),
        dropping_rates=(0.0,), distorting_rates=(0.0,),
        training=TrainingConfig(batch_size=64, max_epochs=2, patience=10),
        cell_epochs=1, seed=0), registry=registry)
    result = model.fit(trips[:30])
    vectors = model.encode_many(trips[:30])
    model.encode_many(trips[:10])                      # warm-cache hits
    index = ExactIndex(vectors, registry=registry)
    index.knn(vectors[0], k=5)

    path = tmp_path / "metrics.jsonl"
    write_jsonl(registry, path)
    records = read_jsonl(path)
    by_name = {(r["type"], r["name"]): r for r in records}

    loss = by_name[("gauge", "train.epoch_loss")]
    assert len(loss["history"]) == result.epochs_run == 2
    assert by_name[("gauge", "train.tokens_per_s")]["value"] > 0
    latency = by_name[("histogram", "encode.latency_s")]
    assert latency["count"] > 0
    assert latency["p95"] >= latency["p50"] > 0
    assert by_name[("counter", "index.exact.queries")]["value"] == 1
    assert 0 < cache_hit_rate(records) < 1

    rendered = summarize(records)
    for needle in ("train.epoch_loss", "encode.latency_s", "p95",
                   "encode.cache_hits"):
        assert needle in rendered


def test_greedy_reconstruction_stays_on_route(mini_model, trips):
    """The decoder's reconstruction lands near the input's route."""
    trip = trips[62]
    reconstruction = mini_model.reconstruct_route(trip, max_len=60)
    if len(reconstruction) == 0:
        pytest.skip("model decoded an empty route at this scale")
    dists = np.sqrt(((reconstruction[:, None, :] -
                      trip.points[None, :, :]) ** 2).sum(axis=2)).min(axis=1)
    # Within a few cells of the true trajectory on average.
    assert dists.mean() < 8 * mini_model.config.cell_size
