"""Training pair synthesis: the 16-variant grid per original trajectory."""

import numpy as np

from repro.data import (DEFAULT_DISTORTING_RATES, DEFAULT_DROPPING_RATES,
                        build_training_pairs, iter_training_pairs)


def test_sixteen_pairs_per_original(trips, rng):
    originals = trips[:3]
    pairs = build_training_pairs(originals, rng=rng)
    assert len(pairs) == 16 * len(originals)


def test_rate_grid_covered(trips, rng):
    pairs = build_training_pairs(trips[:1], rng=rng)
    combos = {(p.dropping_rate, p.distorting_rate) for p in pairs}
    assert combos == {(r1, r2) for r1 in DEFAULT_DROPPING_RATES
                      for r2 in DEFAULT_DISTORTING_RATES}


def test_target_is_the_original(trips, rng):
    original = trips[0]
    pairs = build_training_pairs([original], rng=rng)
    for pair in pairs:
        np.testing.assert_array_equal(pair.target.points, original.points)


def test_sources_are_degraded(trips, rng):
    original = trips[0]
    pairs = build_training_pairs([original], dropping_rates=(0.6,),
                                 distorting_rates=(0.0,), rng=rng)
    assert len(pairs[0].source) < len(original)


def test_clean_pair_identity(trips, rng):
    pairs = build_training_pairs(trips[:1], dropping_rates=(0.0,),
                                 distorting_rates=(0.0,), rng=rng)
    np.testing.assert_array_equal(pairs[0].source.points, trips[0].points)


def test_source_endpoints_preserved(trips, rng):
    pairs = build_training_pairs(trips[:4], rng=rng)
    for pair in pairs:
        if pair.distorting_rate == 0.0:  # distortion may move endpoints
            np.testing.assert_array_equal(pair.source.start, pair.target.start)
            np.testing.assert_array_equal(pair.source.end, pair.target.end)


def test_clean_pair_source_does_not_alias_target(trips, rng):
    """r1 = r2 = 0 leaves degrade a no-op; the pair must still hand out
    an independent copy, or mutating the source corrupts the target."""
    for make in (build_training_pairs,
                 lambda *a, **kw: list(iter_training_pairs(*a, **kw))):
        pairs = make(trips[:2], dropping_rates=(0.0,),
                     distorting_rates=(0.0,), rng=rng)
        for pair in pairs:
            assert pair.source is not pair.target
            assert pair.source.points is not pair.target.points
            np.testing.assert_array_equal(pair.source.points,
                                          pair.target.points)


def test_defensive_copy_preserves_metadata(trips, rng):
    pairs = build_training_pairs(trips[:1], dropping_rates=(0.0,),
                                 distorting_rates=(0.0,), rng=rng)
    source, target = pairs[0].source, pairs[0].target
    assert source.traj_id == target.traj_id
    assert source.route_id == target.route_id
    if target.timestamps is None:
        assert source.timestamps is None
    else:
        assert source.timestamps is not target.timestamps
        np.testing.assert_array_equal(source.timestamps, target.timestamps)


def test_iter_matches_build_count(trips):
    originals = trips[:2]
    lazy = list(iter_training_pairs(originals, rng=np.random.default_rng(0)))
    eager = build_training_pairs(originals, rng=np.random.default_rng(0))
    assert len(lazy) == len(eager)
    for a, b in zip(lazy, eager):
        np.testing.assert_array_equal(a.source.points, b.source.points)
