"""Training pair synthesis: the 16-variant grid per original trajectory."""

import numpy as np
import pytest

from repro.data import (DEFAULT_DISTORTING_RATES, DEFAULT_DROPPING_RATES,
                        build_training_pairs, iter_training_pairs)


def test_sixteen_pairs_per_original(trips, rng):
    originals = trips[:3]
    pairs = build_training_pairs(originals, rng=rng)
    assert len(pairs) == 16 * len(originals)


def test_rate_grid_covered(trips, rng):
    pairs = build_training_pairs(trips[:1], rng=rng)
    combos = {(p.dropping_rate, p.distorting_rate) for p in pairs}
    assert combos == {(r1, r2) for r1 in DEFAULT_DROPPING_RATES
                      for r2 in DEFAULT_DISTORTING_RATES}


def test_target_is_the_original(trips, rng):
    original = trips[0]
    pairs = build_training_pairs([original], rng=rng)
    for pair in pairs:
        np.testing.assert_array_equal(pair.target.points, original.points)


def test_sources_are_degraded(trips, rng):
    original = trips[0]
    pairs = build_training_pairs([original], dropping_rates=(0.6,),
                                 distorting_rates=(0.0,), rng=rng)
    assert len(pairs[0].source) < len(original)


def test_clean_pair_identity(trips, rng):
    pairs = build_training_pairs(trips[:1], dropping_rates=(0.0,),
                                 distorting_rates=(0.0,), rng=rng)
    np.testing.assert_array_equal(pairs[0].source.points, trips[0].points)


def test_source_endpoints_preserved(trips, rng):
    pairs = build_training_pairs(trips[:4], rng=rng)
    for pair in pairs:
        if pair.distorting_rate == 0.0:  # distortion may move endpoints
            np.testing.assert_array_equal(pair.source.start, pair.target.start)
            np.testing.assert_array_equal(pair.source.end, pair.target.end)


def test_iter_matches_build_count(trips):
    originals = trips[:2]
    lazy = list(iter_training_pairs(originals, rng=np.random.default_rng(0)))
    eager = build_training_pairs(originals, rng=np.random.default_rng(0))
    assert len(lazy) == len(eager)
    for a, b in zip(lazy, eager):
        np.testing.assert_array_equal(a.source.points, b.source.points)
