"""vRNN baseline: next-cell language model as a trajectory encoder."""

import numpy as np
import pytest

from repro.baselines import VanillaRNNEmbedding


@pytest.fixture(scope="module")
def vrnn(vocab, trips):
    model = VanillaRNNEmbedding(vocab, embedding_size=16, hidden_size=16,
                                num_layers=1, seed=0)
    model.history = model.fit(trips[:30], epochs=2, batch_size=16)
    return model


def test_fit_reduces_loss(vrnn):
    assert vrnn.history[-1] < vrnn.history[0]


def test_encode_shape(vrnn, trips):
    vec = vrnn.encode(trips[0])
    assert vec.shape == (16,)


def test_encode_many_matches_encode(vrnn, trips):
    batch = vrnn.encode_many(trips[:4])
    singles = np.stack([vrnn.encode(t) for t in trips[:4]])
    np.testing.assert_allclose(batch, singles, atol=1e-6)


def test_distance_interface(vrnn, trips):
    d = vrnn.distance(trips[0], trips[1])
    assert d >= 0
    many = vrnn.distance_to_many(trips[0], trips[:3])
    assert many[0] == pytest.approx(0.0, abs=1e-6)
    assert many[1] == pytest.approx(d, rel=1e-5)


def test_cache_content_keyed(vrnn, trips):
    clone = trips[0].with_points(trips[0].points.copy())
    np.testing.assert_array_equal(vrnn.encode(trips[0]), vrnn.encode(clone))


def test_fit_rejects_degenerate_input(vocab):
    model = VanillaRNNEmbedding(vocab)
    with pytest.raises(ValueError):
        model.fit([])
