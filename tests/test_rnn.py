"""GRU cell and stack: gradient checks, masking semantics, shapes."""

import numpy as np
import pytest

from repro.nn import GRU, GRUCell, Tensor

from .test_tensor import check_gradients


@pytest.mark.usefixtures("float64_tensors")
def test_grucell_gradients_numerically_correct():
    rng = np.random.default_rng(7)
    x = rng.standard_normal((2, 3))
    h = rng.standard_normal((2, 4))

    def build(xt, ht):
        cell = GRUCell(3, 4, rng=np.random.default_rng(0))
        return (cell(xt, ht) ** 2).sum()

    check_gradients(build, x, h, tol=1e-6)


def test_grucell_output_shape_and_range():
    cell = GRUCell(3, 5, rng=np.random.default_rng(0))
    out = cell(Tensor(np.random.default_rng(1).standard_normal((4, 3))),
               Tensor(np.zeros((4, 5))))
    assert out.shape == (4, 5)
    # h' is a convex combination of tanh candidate and previous h=0.
    assert np.abs(out.numpy()).max() < 1.0


def test_gru_runs_multi_layer_and_returns_all_steps():
    gru = GRU(3, 4, num_layers=3, rng=np.random.default_rng(0))
    steps = [Tensor(np.ones((2, 3))) for _ in range(5)]
    outputs, state = gru(steps)
    assert len(outputs) == 5
    assert len(state) == 3
    assert outputs[0].shape == (2, 4)
    assert state[-1].shape == (2, 4)


def test_gru_mask_freezes_padded_sequences():
    gru = GRU(3, 4, num_layers=2, rng=np.random.default_rng(0))
    rng = np.random.default_rng(1)
    steps = [Tensor(rng.standard_normal((2, 3))) for _ in range(4)]
    # Sequence 0 has length 4; sequence 1 has length 2.
    mask = np.array([[1, 1], [1, 1], [1, 0], [1, 0]], dtype=float)
    _, state = gru(steps, mask=mask)

    # Running only the first 2 steps for sequence 1 must match its final state.
    short_steps = [Tensor(s.numpy()[1:2]) for s in steps[:2]]
    _, short_state = gru(short_steps)
    np.testing.assert_allclose(state[-1].numpy()[1], short_state[-1].numpy()[0],
                               rtol=1e-5, atol=1e-6)


def test_gru_initial_state_is_zero():
    gru = GRU(2, 3, rng=np.random.default_rng(0))
    state = gru.initial_state(4)
    assert len(state) == 1
    np.testing.assert_array_equal(state[0].numpy(), np.zeros((4, 3)))


def test_gru_rejects_empty_input_and_bad_state():
    gru = GRU(2, 3, num_layers=2, rng=np.random.default_rng(0))
    with pytest.raises(ValueError):
        gru([])
    with pytest.raises(ValueError):
        gru([Tensor(np.zeros((1, 2)))], h0=[Tensor(np.zeros((1, 3)))])


def test_gru_rejects_zero_layers():
    with pytest.raises(ValueError):
        GRU(2, 3, num_layers=0)


def test_gru_gradients_flow_through_time():
    gru = GRU(2, 3, num_layers=1, rng=np.random.default_rng(0))
    first = Tensor(np.ones((1, 2)), requires_grad=True)
    steps = [first] + [Tensor(np.ones((1, 2))) for _ in range(3)]
    outputs, _ = gru(steps)
    outputs[-1].sum().backward()
    assert first.grad is not None
    assert np.abs(first.grad).sum() > 0  # BPTT reaches the first step


def test_gru_deterministic_given_seed():
    a = GRU(3, 4, num_layers=2, rng=np.random.default_rng(5))
    b = GRU(3, 4, num_layers=2, rng=np.random.default_rng(5))
    x = [Tensor(np.ones((2, 3)))]
    np.testing.assert_array_equal(a(x)[1][-1].numpy(), b(x)[1][-1].numpy())
