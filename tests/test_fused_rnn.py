"""Sequence-fused RNN kernels: parity with step-wise cells, BPTT gradients.

The fused kernels (:func:`gru_layer_forward`, :func:`lstm_layer_forward`)
hand-derive backward-through-time instead of relying on the tape, so these
tests pin them twice over: exact forward/backward parity against the
step-wise reference cells, and central-difference numeric gradients for
every input and parameter.
"""

import numpy as np
import pytest

from repro.core.encoder_decoder import EncoderDecoder, ModelConfig
from repro.nn import GRU, Tensor
from repro.nn.lstm import lstm_layer_forward
from repro.nn.rnn import gru_layer_forward
from repro.spatial.vocab import BOS, EOS

from .test_tensor import check_gradients

T_STEPS, BATCH, IN_SIZE, HIDDEN = 5, 3, 4, 6

#: Ragged lengths 5/3/1 — exercises carried state on padded steps.
MASK = np.array([[1, 1, 1],
                 [1, 1, 0],
                 [1, 1, 0],
                 [1, 0, 0],
                 [1, 0, 0]], dtype=float)


def _params(rng, in_size=IN_SIZE, hidden=HIDDEN, gates=3):
    return (rng.standard_normal((in_size, gates * hidden)) * 0.4,
            rng.standard_normal((hidden, gates * hidden)) * 0.4,
            rng.standard_normal(gates * hidden) * 0.1,
            rng.standard_normal(gates * hidden) * 0.1)


# ---------------------------------------------------------------------------
# Fused layer kernels vs. step-wise cells
# ---------------------------------------------------------------------------

@pytest.mark.usefixtures("float64_tensors")
@pytest.mark.parametrize("mask", [None, MASK], ids=["dense", "ragged"])
@pytest.mark.parametrize("with_h0", [False, True], ids=["zero-h0", "h0"])
def test_gru_fused_matches_stepwise_forward_and_backward(mask, with_h0):
    rng = np.random.default_rng(3)
    x = rng.standard_normal((T_STEPS, BATCH, IN_SIZE))
    h0 = rng.standard_normal((BATCH, HIDDEN)) if with_h0 else None
    arrays = _params(rng)

    def run(layer_kernel):
        params = [Tensor(a.copy(), requires_grad=True) for a in arrays]
        xs = Tensor(x.copy(), requires_grad=True)
        hs = Tensor(h0.copy(), requires_grad=True) if with_h0 else None
        if layer_kernel:
            out_seq, h_last = gru_layer_forward(xs, hs, *params, mask=mask)
            out = out_seq
        else:
            from repro.nn.rnn import gru_cell_forward
            h = hs if hs is not None else Tensor(np.zeros((BATCH, HIDDEN)))
            steps = []
            for t in range(T_STEPS):
                new_h = gru_cell_forward(xs[t], h, *params)
                if mask is not None:
                    m = Tensor(mask[t][:, None])
                    new_h = h + m * (new_h - h)
                h = new_h
                steps.append(h)
            from repro.nn import stack
            out, h_last = stack(steps, axis=0), h
        ((out * out).sum() + (h_last * h_last).sum()).backward()
        grads = [p.grad for p in params] + [xs.grad]
        if hs is not None:
            grads.append(hs.grad)
        return out.numpy(), h_last.numpy(), grads

    fused_out, fused_h, fused_grads = run(True)
    ref_out, ref_h, ref_grads = run(False)
    np.testing.assert_allclose(fused_out, ref_out, atol=1e-12)
    np.testing.assert_allclose(fused_h, ref_h, atol=1e-12)
    for got, want in zip(fused_grads, ref_grads):
        np.testing.assert_allclose(got, want, atol=1e-12)


@pytest.mark.usefixtures("float64_tensors")
@pytest.mark.parametrize("mask", [None, MASK], ids=["dense", "ragged"])
def test_lstm_fused_matches_stepwise_forward_and_backward(mask):
    rng = np.random.default_rng(5)
    x = rng.standard_normal((T_STEPS, BATCH, IN_SIZE))
    h0 = rng.standard_normal((BATCH, HIDDEN))
    c0 = rng.standard_normal((BATCH, HIDDEN))
    arrays = _params(rng, gates=4)

    def run(layer_kernel):
        params = [Tensor(a.copy(), requires_grad=True) for a in arrays]
        xs = Tensor(x.copy(), requires_grad=True)
        hs = Tensor(h0.copy(), requires_grad=True)
        cs = Tensor(c0.copy(), requires_grad=True)
        if layer_kernel:
            out, h_last, c_last = lstm_layer_forward(xs, hs, cs, *params,
                                                     mask=mask)
        else:
            from repro.nn import stack
            from repro.nn.lstm import lstm_cell_forward
            h, c = hs, cs
            steps = []
            for t in range(T_STEPS):
                new_h, new_c = lstm_cell_forward(xs[t], h, c, *params)
                if mask is not None:
                    m = Tensor(mask[t][:, None])
                    new_h = h + m * (new_h - h)
                    new_c = c + m * (new_c - c)
                h, c = new_h, new_c
                steps.append(h)
            out, h_last, c_last = stack(steps, axis=0), h, c
        ((out * out).sum() + (h_last * h_last).sum()
         + (c_last * c_last).sum()).backward()
        grads = [p.grad for p in params] + [xs.grad, hs.grad, cs.grad]
        return out.numpy(), h_last.numpy(), c_last.numpy(), grads

    fused = run(True)
    ref = run(False)
    for got, want in zip(fused[:3], ref[:3]):
        np.testing.assert_allclose(got, want, atol=1e-12)
    for got, want in zip(fused[3], ref[3]):
        np.testing.assert_allclose(got, want, atol=1e-12)


# ---------------------------------------------------------------------------
# Numeric gradients pin the hand-derived BPTT closures
# ---------------------------------------------------------------------------

@pytest.mark.usefixtures("float64_tensors")
def test_gru_layer_gradients_numerically_correct():
    rng = np.random.default_rng(11)
    x = rng.standard_normal((4, 2, 3)) * 0.5
    h0 = rng.standard_normal((2, 5)) * 0.5
    arrays = _params(rng, in_size=3, hidden=5)
    mask = np.array([[1, 1], [1, 1], [1, 0], [1, 0]], dtype=float)

    def build(xs, hs, *params):
        out_seq, h_last = gru_layer_forward(xs, hs, *params, mask=mask)
        return (out_seq * out_seq).sum() + (h_last * h_last).sum()

    check_gradients(build, x, h0, *arrays, tol=1e-6)


@pytest.mark.usefixtures("float64_tensors")
def test_lstm_layer_gradients_numerically_correct():
    rng = np.random.default_rng(13)
    x = rng.standard_normal((4, 2, 3)) * 0.5
    h0 = rng.standard_normal((2, 5)) * 0.5
    c0 = rng.standard_normal((2, 5)) * 0.5
    arrays = _params(rng, in_size=3, hidden=5, gates=4)
    mask = np.array([[1, 1], [1, 1], [1, 0], [1, 0]], dtype=float)

    def build(xs, hs, cs, *params):
        out_seq, h_last, c_last = lstm_layer_forward(xs, hs, cs, *params,
                                                     mask=mask)
        return ((out_seq * out_seq).sum() + (h_last * h_last).sum()
                + (c_last * c_last).sum())

    check_gradients(build, x, h0, c0, *arrays, tol=1e-6)


@pytest.mark.usefixtures("float64_tensors")
def test_lstm_c_last_only_gradient():
    """The staged c_last grad must flow even when out_seq is unused."""
    rng = np.random.default_rng(17)
    x = rng.standard_normal((3, 2, 3)) * 0.5
    c0 = rng.standard_normal((2, 4)) * 0.5
    arrays = _params(rng, in_size=3, hidden=4, gates=4)

    def build(xs, cs, *params):
        _, _, c_last = lstm_layer_forward(
            xs, Tensor(np.zeros((2, 4))), cs, *params)
        return (c_last * c_last).sum()

    check_gradients(build, x, c0, *arrays, tol=1e-6)


@pytest.mark.usefixtures("float64_tensors")
def test_fused_stack_gradients_with_dropout():
    """Multi-layer forward_sequence (dropout active) against numeric grads.

    Rebuilding the module with a fixed seed inside ``build`` makes the
    dropout masks identical across numeric-gradient evaluations.
    """
    rng = np.random.default_rng(19)
    x = rng.standard_normal((3, 2, 3)) * 0.5

    def build(xs):
        gru = GRU(3, 4, num_layers=2, dropout=0.3,
                  rng=np.random.default_rng(0))
        gru.dropout._rng = np.random.default_rng(99)
        out_seq, state = gru.forward_sequence(xs)
        return (out_seq * out_seq).sum() + (state[-1] * state[-1]).sum()

    check_gradients(build, x, tol=1e-6)


# ---------------------------------------------------------------------------
# Fused (T, B) embedding gather
# ---------------------------------------------------------------------------

@pytest.mark.usefixtures("float64_tensors")
def test_fused_embedding_gather_accumulates_repeated_tokens():
    from repro.nn.layers import Embedding
    emb = Embedding(6, 3, rng=np.random.default_rng(0))
    tokens = np.array([[1, 4, 1], [1, 2, 2]])  # token 1 appears 3x

    out = emb(tokens)
    assert out.shape == (2, 3, 3)
    upstream = np.arange(out.data.size, dtype=float).reshape(out.shape)
    out.backward(upstream)

    expected = np.zeros((6, 3))
    np.add.at(expected, tokens.reshape(-1), upstream.reshape(-1, 3))
    np.testing.assert_allclose(emb.weight.grad, expected, atol=1e-12)


# ---------------------------------------------------------------------------
# EncoderDecoder: fused path vs. step-wise path, vectorized greedy decode
# ---------------------------------------------------------------------------

def _toy_model(rnn_type, vocab=12):
    return EncoderDecoder(ModelConfig(
        vocab_size=vocab, embedding_size=5, hidden_size=6, num_layers=2,
        dropout=0.1, rnn_type=rnn_type, seed=2))


def _toy_batch(rng, vocab=12, t_steps=6, batch=3):
    lengths = [t_steps, t_steps - 2, t_steps - 4]
    src = np.zeros((t_steps, batch), dtype=np.int64)
    mask = np.zeros((t_steps, batch))
    for b, length in enumerate(lengths):
        src[:length, b] = rng.integers(4, vocab, size=length)
        mask[:length, b] = 1.0
    return src, mask


@pytest.mark.usefixtures("float64_tensors")
@pytest.mark.parametrize("rnn_type", ["gru", "lstm"])
def test_encoder_decoder_fused_matches_stepwise(rnn_type):
    model = _toy_model(rnn_type)
    model.eval()  # dropout draws differ between paths; parity is eval-mode
    rng = np.random.default_rng(23)
    src, src_mask = _toy_batch(rng)

    outputs = {}
    for fused in (True, False):
        model.fused = fused
        v, state = model.encode(src, src_mask)
        hidden = model.decode(src, state, src_mask)
        outputs[fused] = (v.numpy().copy(), hidden.numpy().copy())
    np.testing.assert_allclose(outputs[True][0], outputs[False][0], atol=1e-12)
    np.testing.assert_allclose(outputs[True][1], outputs[False][1], atol=1e-12)


@pytest.mark.usefixtures("float64_tensors")
@pytest.mark.parametrize("rnn_type", ["gru", "lstm"])
def test_vectorized_greedy_decode_matches_per_column_loop(rnn_type):
    model = _toy_model(rnn_type)
    rng = np.random.default_rng(29)
    src, src_mask = _toy_batch(rng)

    got = model.greedy_decode(src, src_mask, max_len=8)

    # Reference: decode one batch column at a time with the step-wise
    # cells and an explicit Python loop (the pre-vectorization algorithm).
    model.eval()
    model.fused = False
    expected = []
    _, state = model.encode(src, src_mask)
    for b in range(src.shape[1]):
        column = model._select_column(state, b)
        tokens, token = [], BOS
        for _ in range(8):
            step = model.embedding(np.array([token]))
            _, column = model.decoder([step], h0=column)
            scores = model.logits(model._top_hidden(column)).numpy()[0]
            scores[BOS] = -np.inf
            token = int(scores.argmax())
            if token == EOS:
                break
            tokens.append(token)
        expected.append(np.array(tokens, dtype=np.int64))

    assert len(got) == len(expected)
    for got_seq, want_seq in zip(got, expected):
        np.testing.assert_array_equal(got_seq, want_seq)


@pytest.mark.parametrize("rnn_type", ["gru", "lstm"])
def test_fused_training_step_runs_with_dropout(rnn_type):
    """Smoke: the default (fused) path trains with dropout active."""
    from repro.core.losses import LossSpec, sequence_loss
    model = _toy_model(rnn_type)
    model.train()
    rng = np.random.default_rng(31)
    src, src_mask = _toy_batch(rng)
    loss = None
    _, state = model.encode(src, src_mask)
    hidden = model.decode(src, state, src_mask)
    loss = sequence_loss(model, hidden, src, src_mask, None, LossSpec(kind="L1"))
    loss.backward()
    for p in model.parameters():
        assert p.grad is not None
        assert np.isfinite(p.grad).all()
