"""Trainer: optimization progress, early stopping, best-weight restore."""

import numpy as np
import pytest

from repro.core import (EncoderDecoder, LossSpec, ModelConfig, Trainer,
                        TrainingConfig)
from repro.data import PairDataset, build_training_pairs


@pytest.fixture(scope="module")
def datasets(vocab, trips):
    rng = np.random.default_rng(0)
    train_pairs = build_training_pairs(trips[:12], dropping_rates=(0.0, 0.4),
                                       distorting_rates=(0.0,), rng=rng)
    val_pairs = build_training_pairs(trips[12:16], dropping_rates=(0.0,),
                                     distorting_rates=(0.0,), rng=rng)
    return PairDataset(train_pairs, vocab), PairDataset(val_pairs, vocab)


def make_model(vocab, seed=0):
    return EncoderDecoder(ModelConfig(vocab.size, 16, 16, num_layers=1,
                                      dropout=0.0, seed=seed))


def test_training_reduces_loss(vocab, datasets):
    train, val = datasets
    model = make_model(vocab)
    trainer = Trainer(model, vocab, LossSpec(kind="L3", k_nearest=6, noise=16),
                      TrainingConfig(batch_size=16, max_epochs=4, patience=10))
    result = trainer.fit(train, validation=val)
    assert result.epochs_run == 4
    assert result.train_losses[-1] < result.train_losses[0]
    assert result.steps == 4 * len(list(train.batches(16)))


def test_validation_tracked_and_best_loss_recorded(vocab, datasets):
    train, val = datasets
    model = make_model(vocab)
    trainer = Trainer(model, vocab, LossSpec(kind="L1"),
                      TrainingConfig(batch_size=16, max_epochs=3, patience=10))
    result = trainer.fit(train, validation=val)
    assert len(result.val_losses) == 3
    assert result.best_val_loss == pytest.approx(min(result.val_losses))


def test_early_stopping_with_zero_patience_stops_on_first_plateau(vocab, datasets):
    train, val = datasets
    model = make_model(vocab)
    # patience=1: stop as soon as validation fails to improve once.
    trainer = Trainer(model, vocab, LossSpec(kind="L1"),
                      TrainingConfig(batch_size=16, max_epochs=50, patience=1,
                                     lr=10.0))  # huge lr forces divergence
    result = trainer.fit(train, validation=val)
    assert result.stopped_early
    assert result.epochs_run < 50


def test_best_weights_restored_after_divergence(vocab, datasets):
    train, val = datasets
    model = make_model(vocab)
    trainer = Trainer(model, vocab, LossSpec(kind="L1"),
                      TrainingConfig(batch_size=16, max_epochs=6, patience=2,
                                     lr=5.0))
    result = trainer.fit(train, validation=val)
    # After restore, evaluating again reproduces (close to) the best loss.
    final_loss = trainer.evaluate(val)
    assert final_loss == pytest.approx(result.best_val_loss, rel=0.05)


def test_fit_without_validation_runs_all_epochs(vocab, datasets):
    train, _ = datasets
    model = make_model(vocab)
    trainer = Trainer(model, vocab, LossSpec(kind="L1"),
                      TrainingConfig(batch_size=16, max_epochs=2))
    result = trainer.fit(train, validation=None)
    assert result.epochs_run == 2
    assert result.val_losses == []
    assert not result.stopped_early


def test_train_step_returns_finite_loss(vocab, datasets):
    train, _ = datasets
    model = make_model(vocab)
    trainer = Trainer(model, vocab, LossSpec(kind="L3", k_nearest=6, noise=16),
                      TrainingConfig(batch_size=8))
    batch = next(train.batches(8, np.random.default_rng(0)))
    loss = trainer.train_step(batch)
    assert np.isfinite(loss)


def test_gradient_clipping_applied(vocab, datasets):
    """With clip_norm tiny, parameters barely move even at high lr."""
    train, _ = datasets
    batch = next(train.batches(16, np.random.default_rng(0)))

    def weight_change(clip):
        model = make_model(vocab, seed=1)
        before = model.proj_weight.data.copy()
        trainer = Trainer(model, vocab, LossSpec(kind="L1"),
                          TrainingConfig(batch_size=16, lr=1e-3,
                                         clip_norm=clip))
        for _ in range(3):
            trainer.train_step(batch)
        return np.abs(model.proj_weight.data - before).sum()

    assert weight_change(1e-6) < weight_change(5.0)
