"""Linear, Embedding, and Dropout behaviour."""

import numpy as np
import pytest

from repro.nn import Dropout, Embedding, Linear, Tensor


def test_linear_affine_map():
    rng = np.random.default_rng(0)
    layer = Linear(3, 2, rng=rng)
    x = rng.standard_normal((5, 3))
    out = layer(Tensor(x)).numpy()
    expected = x @ layer.weight.numpy() + layer.bias.numpy()
    np.testing.assert_allclose(out, expected, rtol=1e-6)


def test_linear_without_bias():
    layer = Linear(3, 2, bias=False, rng=np.random.default_rng(0))
    assert layer.bias is None
    out = layer(Tensor(np.zeros((1, 3)))).numpy()
    np.testing.assert_array_equal(out, np.zeros((1, 2)))


def test_linear_higher_rank_input():
    layer = Linear(3, 4, rng=np.random.default_rng(0))
    out = layer(Tensor(np.ones((2, 5, 3))))
    assert out.shape == (2, 5, 4)


def test_embedding_lookup_matches_table():
    emb = Embedding(6, 3, rng=np.random.default_rng(0))
    tokens = np.array([[0, 5], [2, 2]])
    out = emb(tokens).numpy()
    np.testing.assert_array_equal(out, emb.weight.numpy()[tokens])


def test_embedding_rejects_out_of_range():
    emb = Embedding(4, 2)
    with pytest.raises(IndexError):
        emb(np.array([4]))
    with pytest.raises(IndexError):
        emb(np.array([-1]))


def test_embedding_gradient_accumulates_for_repeated_tokens():
    emb = Embedding(5, 2, rng=np.random.default_rng(0))
    out = emb(np.array([1, 1, 1])).sum()
    out.backward()
    np.testing.assert_allclose(emb.weight.grad[1], [3.0, 3.0])
    np.testing.assert_allclose(emb.weight.grad[0], [0.0, 0.0])


def test_embedding_load_pretrained():
    emb = Embedding(4, 3)
    table = np.arange(12, dtype=float).reshape(4, 3)
    emb.load_pretrained(table)
    np.testing.assert_allclose(emb.weight.numpy(), table)
    with pytest.raises(ValueError):
        emb.load_pretrained(np.zeros((2, 2)))


def test_embedding_load_pretrained_freeze():
    emb = Embedding(4, 3)
    emb.load_pretrained(np.zeros((4, 3)), freeze=True)
    assert not emb.weight.requires_grad


def test_dropout_identity_in_eval_mode():
    drop = Dropout(0.9, rng=np.random.default_rng(0))
    drop.eval()
    x = np.ones((100,))
    np.testing.assert_array_equal(drop(Tensor(x)).numpy(), x)


def test_dropout_scales_surviving_activations():
    drop = Dropout(0.5, rng=np.random.default_rng(0))
    x = np.ones((10000,))
    out = drop(Tensor(x)).numpy()
    survivors = out[out > 0]
    np.testing.assert_allclose(survivors, 2.0)  # inverted dropout scaling
    assert 0.4 < (out > 0).mean() < 0.6  # about half survive
    # expectation preserved
    assert out.mean() == pytest.approx(1.0, abs=0.05)


def test_dropout_rejects_bad_probability():
    with pytest.raises(ValueError):
        Dropout(1.0)
    with pytest.raises(ValueError):
        Dropout(-0.1)
