"""k-means and cluster-quality metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tasks import (KMeans, cluster_purity, cluster_trajectories,
                         normalized_mutual_information)


def blobs(rng, centers, per_cluster=30, spread=0.3):
    points, labels = [], []
    for i, center in enumerate(centers):
        points.append(center + spread * rng.standard_normal((per_cluster, 2)))
        labels += [i] * per_cluster
    return np.concatenate(points), np.array(labels)


class TestKMeans:
    def test_recovers_well_separated_blobs(self):
        rng = np.random.default_rng(0)
        vectors, truth = blobs(rng, [np.zeros(2), np.array([10.0, 0]),
                                     np.array([0, 10.0])])
        labels = KMeans(3, seed=1).fit_predict(vectors)
        assert cluster_purity(labels, truth) > 0.95

    def test_inertia_decreases_with_more_clusters(self):
        rng = np.random.default_rng(1)
        vectors, _ = blobs(rng, [np.zeros(2), np.array([5.0, 5.0])])
        km2 = KMeans(2, seed=0).fit(vectors)
        km4 = KMeans(4, seed=0).fit(vectors)
        assert km4.inertia < km2.inertia

    def test_predict_matches_fit_assignment(self):
        rng = np.random.default_rng(2)
        vectors, _ = blobs(rng, [np.zeros(2), np.array([8.0, 0])])
        km = KMeans(2, seed=0).fit(vectors)
        np.testing.assert_array_equal(km.predict(vectors),
                                      km.fit_predict(vectors))

    def test_converges_and_reports_iterations(self):
        rng = np.random.default_rng(3)
        vectors, _ = blobs(rng, [np.zeros(2), np.array([20.0, 0])])
        km = KMeans(2, max_iters=50, seed=0).fit(vectors)
        assert 1 <= km.iterations_run <= 50

    def test_handles_duplicate_points(self):
        vectors = np.zeros((10, 3))
        km = KMeans(2, seed=0).fit(vectors)
        assert km.inertia == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            KMeans(0)
        with pytest.raises(ValueError):
            KMeans(5).fit(np.zeros((3, 2)))
        with pytest.raises(ValueError):
            KMeans(2).fit(np.zeros(5))
        with pytest.raises(RuntimeError):
            KMeans(2).predict(np.zeros((3, 2)))


class TestMetrics:
    def test_perfect_clustering(self):
        truth = [0, 0, 1, 1, 2, 2]
        assert cluster_purity(truth, truth) == 1.0
        assert normalized_mutual_information(truth, truth) == pytest.approx(1.0)

    def test_label_permutation_invariance(self):
        truth = np.array([0, 0, 1, 1, 2, 2])
        permuted = np.array([2, 2, 0, 0, 1, 1])
        assert cluster_purity(permuted, truth) == 1.0
        assert normalized_mutual_information(permuted, truth) == pytest.approx(1.0)

    def test_single_cluster_purity_is_dominant_share(self):
        labels = np.zeros(10, dtype=int)
        truth = np.array([0] * 7 + [1] * 3)
        assert cluster_purity(labels, truth) == pytest.approx(0.7)

    def test_independent_labels_low_nmi(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 4, 4000)
        truth = rng.integers(0, 4, 4000)
        assert normalized_mutual_information(labels, truth) < 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            cluster_purity([0, 1], [0])
        with pytest.raises(ValueError):
            normalized_mutual_information([], [])


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(0, 3), min_size=2, max_size=40))
def test_nmi_bounds_property(truth):
    labels = list(range(len(truth)))  # singleton clusters
    value = normalized_mutual_information(labels, truth)
    assert -1e-9 <= value <= 1.0 + 1e-9


def test_cluster_trajectories_uses_encoder(trips):
    class FakeEncoder:
        def encode_many(self, trajectories):
            # Embed by route id so clustering is trivial.
            return np.array([[t.route_id, 0.0] for t in trajectories])

    subset = trips[:30]
    n = min(5, len({t.route_id for t in subset}))
    labels = cluster_trajectories(FakeEncoder(), subset, n_clusters=n)
    assert len(labels) == len(subset)
