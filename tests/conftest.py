"""Shared fixtures: a small synthetic city, vocabulary, and a tiny model.

Everything here is deliberately small so the full suite runs in a couple
of minutes on CPU; the benchmarks exercise realistic scales.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import CityConfig, SyntheticCity
from repro.spatial import CellVocabulary, Grid


@pytest.fixture(scope="session")
def city() -> SyntheticCity:
    return SyntheticCity(CityConfig(
        name="test-city", grid_cols=8, grid_rows=8, spacing=200.0,
        num_routes=40, min_route_nodes=8, min_points=16, seed=123,
    ))


@pytest.fixture(scope="session")
def trips(city):
    return city.generate(80)


@pytest.fixture(scope="session")
def grid(city, trips) -> Grid:
    return Grid.covering(city.all_points(trips), 100.0)


@pytest.fixture(scope="session")
def vocab(grid, city, trips) -> CellVocabulary:
    return CellVocabulary.build(grid, city.all_points(trips), min_hits=3)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture
def float64_tensors():
    """Switch the autograd engine to float64 for numeric gradient checks."""
    from repro.nn import get_default_dtype, set_default_dtype
    previous = get_default_dtype()
    set_default_dtype(np.float64)
    yield
    set_default_dtype(previous)
