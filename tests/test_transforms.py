"""Degradation transforms: downsampling (r1), distortion (r2), splitting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (Trajectory, alternating_split, degrade, distort,
                        downsample)


@pytest.fixture
def line_trajectory():
    n = 50
    pts = np.stack([np.linspace(0, 1000, n), np.zeros(n)], axis=1)
    return Trajectory(points=pts, timestamps=np.arange(n) * 15.0)


class TestDownsample:
    def test_rate_zero_is_identity(self, line_trajectory, rng):
        out = downsample(line_trajectory, 0.0, rng)
        assert out is line_trajectory

    def test_endpoints_always_preserved(self, line_trajectory, rng):
        out = downsample(line_trajectory, 0.9, rng)
        np.testing.assert_array_equal(out.start, line_trajectory.start)
        np.testing.assert_array_equal(out.end, line_trajectory.end)

    def test_expected_point_count(self, line_trajectory):
        rng = np.random.default_rng(0)
        sizes = [len(downsample(line_trajectory, 0.5, rng)) for _ in range(50)]
        # ~half the interior survives, plus the protected endpoints.
        assert 0.35 * 50 < np.mean(sizes) < 0.65 * 50

    def test_order_preserved(self, line_trajectory, rng):
        out = downsample(line_trajectory, 0.6, rng)
        assert (np.diff(out.points[:, 0]) > 0).all()

    def test_invalid_rate(self, line_trajectory, rng):
        with pytest.raises(ValueError):
            downsample(line_trajectory, 1.0, rng)
        with pytest.raises(ValueError):
            downsample(line_trajectory, -0.2, rng)

    def test_two_point_trajectory_unchanged(self, rng):
        t = Trajectory(points=np.array([[0.0, 0.0], [1.0, 1.0]]))
        assert downsample(t, 0.9, rng) is t


class TestDistort:
    def test_rate_zero_is_identity(self, line_trajectory, rng):
        assert distort(line_trajectory, 0.0, rng) is line_trajectory

    def test_point_count_unchanged(self, line_trajectory, rng):
        out = distort(line_trajectory, 0.5, rng)
        assert len(out) == len(line_trajectory)

    def test_expected_fraction_moved(self, line_trajectory):
        rng = np.random.default_rng(1)
        out = distort(line_trajectory, 0.4, rng)
        moved = (out.points != line_trajectory.points).any(axis=1)
        assert 0.2 < moved.mean() < 0.6

    def test_noise_scale_is_paper_radius(self, line_trajectory):
        rng = np.random.default_rng(2)
        out = distort(line_trajectory, 1.0, rng, radius=30.0)
        displacement = np.linalg.norm(out.points - line_trajectory.points, axis=1)
        # Gaussian with 30 m per axis: mean displacement ~ 30 * sqrt(pi/2).
        assert 20.0 < displacement.mean() < 55.0

    def test_original_not_mutated(self, line_trajectory, rng):
        before = line_trajectory.points.copy()
        distort(line_trajectory, 1.0, rng)
        np.testing.assert_array_equal(line_trajectory.points, before)

    def test_invalid_rate(self, line_trajectory, rng):
        with pytest.raises(ValueError):
            distort(line_trajectory, 1.5, rng)


class TestAlternatingSplit:
    def test_partitions_points(self, line_trajectory):
        odd, even = alternating_split(line_trajectory)
        assert len(odd) + len(even) == len(line_trajectory)
        np.testing.assert_array_equal(odd.points, line_trajectory.points[0::2])
        np.testing.assert_array_equal(even.points, line_trajectory.points[1::2])

    def test_too_short_raises(self):
        t = Trajectory(points=np.zeros((3, 2)) + np.arange(3)[:, None])
        with pytest.raises(ValueError):
            alternating_split(t)

    def test_metadata_kept(self):
        pts = np.arange(16, dtype=float).reshape(8, 2)
        t = Trajectory(points=pts, traj_id=4, route_id=2)
        odd, even = alternating_split(t)
        assert odd.traj_id == even.traj_id == 4
        assert odd.route_id == even.route_id == 2


def test_degrade_composes_both(line_trajectory):
    rng = np.random.default_rng(5)
    out = degrade(line_trajectory, 0.5, 0.5, rng)
    assert len(out) < len(line_trajectory)          # downsampled
    np.testing.assert_array_equal(out.start[1] != 0.0 or True, True)


@settings(max_examples=30, deadline=None)
@given(rate=st.floats(0.0, 0.9), seed=st.integers(0, 1000), n=st.integers(4, 60))
def test_downsample_properties(rate, seed, n):
    pts = np.stack([np.arange(n, dtype=float), np.arange(n, dtype=float)], axis=1)
    t = Trajectory(points=pts)
    out = downsample(t, rate, np.random.default_rng(seed))
    assert 2 <= len(out) <= n
    np.testing.assert_array_equal(out.start, t.start)
    np.testing.assert_array_equal(out.end, t.end)
    # Surviving points are a subsequence of the original.
    original_rows = {tuple(p) for p in pts}
    assert all(tuple(p) in original_rows for p in out.points)
