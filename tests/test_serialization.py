"""Checkpoint persistence round trips."""

import numpy as np
import pytest

from repro.nn import load_checkpoint, save_checkpoint


def test_round_trip_arrays_and_meta(tmp_path):
    state = {"layer.weight": np.arange(6.0).reshape(2, 3),
             "layer.bias": np.zeros(3)}
    meta = {"hidden": 64, "loss": {"kind": "L3", "theta": 100.0}}
    path = tmp_path / "model.npz"
    save_checkpoint(path, state, meta)
    loaded_state, loaded_meta = load_checkpoint(path)
    assert set(loaded_state) == set(state)
    for key in state:
        np.testing.assert_array_equal(loaded_state[key], state[key])
    assert loaded_meta == meta


def test_round_trip_without_meta(tmp_path):
    path = tmp_path / "weights.npz"
    save_checkpoint(path, {"w": np.ones(4)})
    state, meta = load_checkpoint(path)
    assert meta is None
    np.testing.assert_array_equal(state["w"], np.ones(4))


def test_missing_npz_suffix_resolved(tmp_path):
    # np.savez appends .npz when missing; load_checkpoint must find it.
    path = tmp_path / "ckpt"
    save_checkpoint(path, {"w": np.ones(2)})
    state, _ = load_checkpoint(path)
    np.testing.assert_array_equal(state["w"], np.ones(2))


def test_reserved_key_rejected(tmp_path):
    with pytest.raises(ValueError):
        save_checkpoint(tmp_path / "x.npz", {"__meta_json__": np.ones(1)})


def test_parent_directories_created(tmp_path):
    path = tmp_path / "deep" / "nested" / "model.npz"
    save_checkpoint(path, {"w": np.ones(1)})
    assert path.exists()


def test_dtype_preserved(tmp_path):
    path = tmp_path / "dtypes.npz"
    save_checkpoint(path, {"f32": np.ones(2, dtype=np.float32),
                           "i64": np.arange(3)})
    state, _ = load_checkpoint(path)
    assert state["f32"].dtype == np.float32
    assert state["i64"].dtype == np.int64
