"""Optimizers: convergence on a quadratic, clipping, bookkeeping."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, Parameter, Tensor, clip_grad_norm


def quadratic_problem():
    """min ||x - target||^2 from a fixed start."""
    target = np.array([1.0, -2.0, 3.0])
    param = Parameter(np.zeros(3))

    def loss_and_grad():
        loss = ((param - Tensor(target)) ** 2).sum()
        param.grad = None
        loss.backward()
        return loss.item()

    return param, target, loss_and_grad


def test_sgd_converges_on_quadratic():
    param, target, step_loss = quadratic_problem()
    opt = SGD([param], lr=0.1)
    for _ in range(200):
        step_loss()
        opt.step()
    np.testing.assert_allclose(param.data, target, atol=1e-4)


def test_sgd_momentum_converges():
    param, target, step_loss = quadratic_problem()
    opt = SGD([param], lr=0.05, momentum=0.9)
    for _ in range(200):
        step_loss()
        opt.step()
    np.testing.assert_allclose(param.data, target, atol=1e-3)


def test_adam_converges_on_quadratic():
    param, target, step_loss = quadratic_problem()
    opt = Adam([param], lr=0.1)
    for _ in range(400):
        step_loss()
        opt.step()
    np.testing.assert_allclose(param.data, target, atol=1e-3)


def test_adam_first_step_scale():
    # With bias correction, the very first Adam step is about lr * sign(grad).
    param = Parameter(np.zeros(2))
    param.grad = np.array([1.0, -4.0])
    opt = Adam([param], lr=0.01)
    opt.step()
    np.testing.assert_allclose(param.data, [-0.01, 0.01], atol=1e-6)


def test_optimizer_skips_parameters_without_grad():
    a, b = Parameter(np.ones(2)), Parameter(np.ones(2))
    a.grad = np.ones(2)
    opt = SGD([a, b], lr=0.5)
    opt.step()
    np.testing.assert_allclose(b.data, np.ones(2))
    np.testing.assert_allclose(a.data, 0.5 * np.ones(2))


def test_zero_grad_clears_all():
    a = Parameter(np.ones(2))
    a.grad = np.ones(2)
    opt = SGD([a], lr=0.1)
    opt.zero_grad()
    assert a.grad is None


def test_empty_parameter_list_rejected():
    with pytest.raises(ValueError):
        SGD([], lr=0.1)
    with pytest.raises(ValueError):
        Adam([], lr=0.1)


def test_bad_learning_rate_rejected():
    with pytest.raises(ValueError):
        SGD([Parameter(np.ones(1))], lr=0.0)
    with pytest.raises(ValueError):
        Adam([Parameter(np.ones(1))], lr=-1.0)


class TestClipGradNorm:
    def test_scales_when_above_threshold(self):
        p = Parameter(np.zeros(4))
        p.grad = np.array([3.0, 4.0, 0.0, 0.0])  # norm 5
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(5.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)
        np.testing.assert_allclose(p.grad, [0.6, 0.8, 0.0, 0.0])

    def test_untouched_when_below_threshold(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([0.3, 0.4])
        norm = clip_grad_norm([p], max_norm=5.0)
        assert norm == pytest.approx(0.5)
        np.testing.assert_allclose(p.grad, [0.3, 0.4])

    def test_global_norm_across_parameters(self):
        a, b = Parameter(np.zeros(1)), Parameter(np.zeros(1))
        a.grad, b.grad = np.array([3.0]), np.array([4.0])
        norm = clip_grad_norm([a, b], max_norm=2.5)
        assert norm == pytest.approx(5.0)
        total = np.sqrt(a.grad[0] ** 2 + b.grad[0] ** 2)
        assert total == pytest.approx(2.5)

    def test_no_grads_returns_zero(self):
        assert clip_grad_norm([Parameter(np.zeros(2))], 1.0) == 0.0
