"""Tokenization and mini-batch assembly."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import PairDataset, build_training_pairs, pad_batch, tokenize
from repro.data.dataset import Batch
from repro.spatial import BOS, EOS, PAD


def test_tokenize_length_matches_points(trips, vocab):
    tokens = tokenize(trips[0], vocab)
    assert len(tokens) == len(trips[0])
    assert tokens.min() >= 4


def test_tokenize_dedup_consecutive(trips, vocab):
    tokens = tokenize(trips[0], vocab, dedup_consecutive=True)
    assert (np.diff(tokens) != 0).all()
    assert len(tokens) <= len(trips[0])


def test_pad_batch_shapes_and_mask():
    seqs = [np.array([5, 6, 7]), np.array([8])]
    batch, mask = pad_batch(seqs)
    assert batch.shape == (3, 2)
    np.testing.assert_array_equal(batch[:, 0], [5, 6, 7])
    np.testing.assert_array_equal(batch[:, 1], [8, PAD, PAD])
    np.testing.assert_array_equal(mask, [[1, 1], [1, 0], [1, 0]])


def test_pad_batch_mask_follows_default_dtype():
    from repro.nn import get_default_dtype, set_default_dtype
    previous = get_default_dtype()
    try:
        for dtype in (np.float32, np.float64):
            set_default_dtype(dtype)
            _, mask = pad_batch([np.array([5, 6]), np.array([7])])
            assert mask.dtype == dtype
    finally:
        set_default_dtype(previous)


def test_pad_batch_empty_raises():
    with pytest.raises(ValueError):
        pad_batch([])


def test_pair_dataset_batches_cover_everything(trips, vocab, rng):
    pairs = build_training_pairs(trips[:4], dropping_rates=(0.0, 0.4),
                                 distorting_rates=(0.0,), rng=rng)
    dataset = PairDataset(pairs, vocab)
    assert len(dataset) == 8
    batches = list(dataset.batches(3, rng))
    assert sum(b.size for b in batches) == 8


def test_batch_decoder_framing(trips, vocab, rng):
    pairs = build_training_pairs(trips[:2], dropping_rates=(0.0,),
                                 distorting_rates=(0.0,), rng=rng)
    dataset = PairDataset(pairs, vocab)
    batch = next(dataset.batches(2, rng, shuffle=False))
    assert isinstance(batch, Batch)
    # Decoder input starts with BOS; decoder target ends with EOS.
    assert (batch.tgt_in[0] == BOS).all()
    for col in range(batch.size):
        length = int(batch.tgt_mask[:, col].sum())
        assert batch.tgt_out[length - 1, col] == EOS
        # tgt_in is tgt_out shifted right by one position.
        np.testing.assert_array_equal(batch.tgt_in[1:length, col],
                                      batch.tgt_out[:length - 1, col])


def test_batches_group_similar_lengths(trips, vocab, rng):
    pairs = build_training_pairs(trips[:8], dropping_rates=(0.0, 0.6),
                                 distorting_rates=(0.0,), rng=rng)
    dataset = PairDataset(pairs, vocab)
    for batch in dataset.batches(4, rng):
        lengths = batch.src_mask.sum(axis=0)
        assert lengths.max() - lengths.min() <= lengths.max()  # sane

    # Sorted batching wastes less padding than the worst case.
    total_cells = sum(b.src.size for b in dataset.batches(4, rng))
    total_tokens = sum(len(s) for s in dataset.sources)
    assert total_cells < 2.0 * total_tokens


def test_invalid_batch_size(trips, vocab, rng):
    pairs = build_training_pairs(trips[:1], rng=rng)
    dataset = PairDataset(pairs, vocab)
    with pytest.raises(ValueError):
        next(dataset.batches(0, rng))


@settings(max_examples=20, deadline=None)
@given(lengths=st.lists(st.integers(1, 12), min_size=1, max_size=6))
def test_pad_batch_round_trip_property(lengths):
    rng = np.random.default_rng(0)
    seqs = [rng.integers(4, 50, size=n) for n in lengths]
    batch, mask = pad_batch(seqs)
    assert batch.shape == (max(lengths), len(lengths))
    for j, seq in enumerate(seqs):
        recovered = batch[mask[:, j] > 0, j]
        np.testing.assert_array_equal(recovered, seq)
