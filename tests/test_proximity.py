"""ProximityVocabulary base class on arbitrary-dimension centroids."""

import numpy as np
import pytest

from repro.spatial import NUM_SPECIALS, ProximityVocabulary


@pytest.fixture
def line_vocab():
    """Five 1-D tokens at x = 0, 1, 2, 3, 10."""
    return ProximityVocabulary(np.array([[0.0], [1.0], [2.0], [3.0], [10.0]]))


def test_sizes(line_vocab):
    assert line_vocab.num_hot_cells == 5
    assert line_vocab.size == 9


def test_tokenize_nearest(line_vocab):
    tokens = line_vocab.tokenize_points(np.array([[0.4], [2.6], [100.0]]))
    np.testing.assert_array_equal(tokens, [4, 7, 8])


def test_knn_table_orders_by_distance(line_vocab):
    tokens, dists = line_vocab.knn_table(3)
    # Token at x=0: nearest neighbours are x=1 then x=2.
    np.testing.assert_array_equal(tokens[0], [4, 5, 6])
    np.testing.assert_allclose(dists[0], [0.0, 1.0, 2.0])
    # The isolated token at x=10 reaches back to x=3 then x=2.
    np.testing.assert_array_equal(tokens[4], [8, 7, 6])


def test_proximity_weights_decay(line_vocab):
    cand, weights = line_vocab.proximity_candidates(np.array([4]), k=3,
                                                    theta=1.0)
    # exp(0) : exp(-1) : exp(-2), normalized.
    expected = np.exp([0.0, -1.0, -2.0])
    expected /= expected.sum()
    np.testing.assert_allclose(weights[0], expected, rtol=1e-9)


def test_full_weights_match_manual_kernel(line_vocab):
    weights = line_vocab.full_weights(np.array([5]), theta=2.0)
    centers = np.array([0.0, 1.0, 2.0, 3.0, 10.0])
    kernel = np.exp(-np.abs(centers - 1.0) / 2.0)
    kernel /= kernel.sum()
    np.testing.assert_allclose(weights[0, NUM_SPECIALS:], kernel, rtol=1e-9)
    np.testing.assert_allclose(weights[0, :NUM_SPECIALS], 0.0)


def test_token_distance_euclidean(line_vocab):
    d = line_vocab.token_distance(np.array([4]), np.array([8]))
    assert d[0] == pytest.approx(10.0)


def test_sample_noise_bounds(line_vocab):
    rng = np.random.default_rng(0)
    noise = line_vocab.sample_noise(rng, batch=4, count=7)
    assert noise.shape == (4, 7)
    assert noise.min() >= NUM_SPECIALS and noise.max() < line_vocab.size


def test_invalid_centroids_rejected():
    with pytest.raises(ValueError):
        ProximityVocabulary(np.empty((0, 2)))
    with pytest.raises(ValueError):
        ProximityVocabulary(np.zeros(5))


def test_three_dimensional_centroids_supported():
    """The kernels are dimension-agnostic (e.g. lon/lat/time tokens)."""
    rng = np.random.default_rng(0)
    vocab = ProximityVocabulary(rng.standard_normal((20, 3)))
    cand, weights = vocab.proximity_candidates(
        np.arange(NUM_SPECIALS, NUM_SPECIALS + 5), k=4, theta=1.0)
    assert cand.shape == (5, 4)
    np.testing.assert_allclose(weights.sum(axis=1), 1.0)
