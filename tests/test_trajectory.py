"""Trajectory value type: validation, slicing, metadata."""

import numpy as np
import pytest

from repro.data import Trajectory


def make(points, **kwargs):
    return Trajectory(points=np.asarray(points, dtype=float), **kwargs)


def test_basic_construction():
    t = make([[0, 0], [1, 1], [2, 2]], timestamps=np.array([0.0, 15.0, 30.0]),
             traj_id=7, route_id=3)
    assert len(t) == 3
    np.testing.assert_array_equal(t.start, [0, 0])
    np.testing.assert_array_equal(t.end, [2, 2])
    assert t.traj_id == 7
    assert t.route_id == 3


def test_rejects_wrong_shapes():
    with pytest.raises(ValueError):
        make([[0, 0, 0], [1, 1, 1]])
    with pytest.raises(ValueError):
        make([[0, 0]])
    with pytest.raises(ValueError):
        make([[0, 0], [1, 1]], timestamps=np.array([0.0]))


def test_rejects_decreasing_timestamps():
    with pytest.raises(ValueError):
        make([[0, 0], [1, 1]], timestamps=np.array([10.0, 5.0]))


def test_length_meters():
    t = make([[0, 0], [3, 4], [3, 4]])
    assert t.length_meters() == pytest.approx(5.0)


def test_subsequence_preserves_metadata():
    t = make([[0, 0], [1, 0], [2, 0], [3, 0]],
             timestamps=np.array([0.0, 1.0, 2.0, 3.0]), traj_id=9)
    sub = t.subsequence(np.array([0, 2, 3]))
    assert len(sub) == 3
    assert sub.traj_id == 9
    np.testing.assert_array_equal(sub.timestamps, [0.0, 2.0, 3.0])


def test_subsequence_validation():
    t = make([[0, 0], [1, 0], [2, 0]])
    with pytest.raises(ValueError):
        t.subsequence(np.array([1]))
    with pytest.raises(ValueError):
        t.subsequence(np.array([2, 0]))  # not increasing


def test_with_points_drops_stale_timestamps():
    t = make([[0, 0], [1, 0], [2, 0]], timestamps=np.array([0.0, 1.0, 2.0]))
    replaced = t.with_points(np.array([[0.0, 0.0], [5.0, 5.0]]))
    assert replaced.timestamps is None
    same_count = t.with_points(t.points + 1.0)
    np.testing.assert_array_equal(same_count.timestamps, t.timestamps)


def test_cache_key_content_based():
    a = make([[0, 0], [1, 1]])
    b = make([[0, 0], [1, 1]])
    c = make([[0, 0], [2, 2]])
    assert a.cache_key() == b.cache_key()  # same content, different objects
    assert a.cache_key() != c.cache_key()


def test_points_converted_to_float():
    t = Trajectory(points=np.array([[0, 0], [1, 1]], dtype=int))
    assert t.points.dtype == np.float64
