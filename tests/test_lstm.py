"""LSTM cell/stack and the GRU-vs-LSTM model option."""

import numpy as np
import pytest

from repro.core import EncoderDecoder, ModelConfig
from repro.nn import Tensor
from repro.nn.lstm import LSTM, LSTMCell

from .test_tensor import check_gradients


@pytest.mark.usefixtures("float64_tensors")
def test_lstmcell_gradients_h_path():
    rng = np.random.default_rng(7)
    x = rng.standard_normal((2, 3))
    h = rng.standard_normal((2, 4))
    c = rng.standard_normal((2, 4))

    def build(xt, ht, ct):
        cell = LSTMCell(3, 4, rng=np.random.default_rng(0))
        new_h, _ = cell(xt, ht, ct)
        return (new_h ** 2).sum()

    check_gradients(build, x, h, c, tol=1e-6)


@pytest.mark.usefixtures("float64_tensors")
def test_lstmcell_gradients_joint_h_and_c_path():
    """Both outputs used: the shared backward must sum contributions."""
    rng = np.random.default_rng(8)
    x = rng.standard_normal((2, 3))
    h = rng.standard_normal((2, 4))
    c = rng.standard_normal((2, 4))

    def build(xt, ht, ct):
        cell = LSTMCell(3, 4, rng=np.random.default_rng(0))
        new_h, new_c = cell(xt, ht, ct)
        return (new_h ** 2).sum() + (new_c ** 3).sum()

    check_gradients(build, x, h, c, tol=1e-6)


def test_forget_gate_bias_initialized_to_one():
    cell = LSTMCell(2, 3, rng=np.random.default_rng(0))
    np.testing.assert_allclose(cell.b_ih.numpy()[3:6], 1.0)


def test_lstm_stack_shapes():
    lstm = LSTM(3, 5, num_layers=2, rng=np.random.default_rng(0))
    steps = [Tensor(np.ones((4, 3))) for _ in range(6)]
    outputs, state = lstm(steps)
    assert len(outputs) == 6
    assert outputs[0].shape == (4, 5)
    assert len(state) == 2
    h, c = state[-1]
    assert h.shape == (4, 5) and c.shape == (4, 5)
    assert len(LSTM.hidden_of(state)) == 2


def test_lstm_masking_freezes_short_sequences():
    lstm = LSTM(3, 4, num_layers=1, rng=np.random.default_rng(0))
    rng = np.random.default_rng(1)
    steps = [Tensor(rng.standard_normal((2, 3))) for _ in range(4)]
    mask = np.array([[1, 1], [1, 1], [1, 0], [1, 0]], dtype=float)
    _, state = lstm(steps, mask=mask)
    short_steps = [Tensor(s.numpy()[1:2]) for s in steps[:2]]
    _, short_state = lstm(short_steps)
    np.testing.assert_allclose(state[-1][0].numpy()[1],
                               short_state[-1][0].numpy()[0],
                               rtol=1e-5, atol=1e-6)


def test_lstm_validation():
    with pytest.raises(ValueError):
        LSTM(2, 3, num_layers=0)
    lstm = LSTM(2, 3, rng=np.random.default_rng(0))
    with pytest.raises(ValueError):
        lstm([])


def test_encoder_decoder_lstm_option(vocab):
    model = EncoderDecoder(ModelConfig(vocab.size, 12, 12, num_layers=1,
                                       dropout=0.0, rnn_type="lstm", seed=0))
    src = np.array([[5, 6], [7, 8], [9, 4]])
    mask = np.ones((3, 2))
    v, state = model.encode(src, mask)
    assert v.shape == (2, 12)
    decoded = model.greedy_decode(src, mask, max_len=5)
    assert len(decoded) == 2


def test_invalid_rnn_type_rejected(vocab):
    with pytest.raises(ValueError):
        ModelConfig(vocab.size, rnn_type="transformer")


def test_lstm_trains_on_tiny_task(vocab, trips):
    """End-to-end: an LSTM seq2seq step reduces the loss like the GRU."""
    from repro.core import LossSpec, Trainer, TrainingConfig
    from repro.data import PairDataset, build_training_pairs
    rng = np.random.default_rng(0)
    pairs = build_training_pairs(trips[:6], dropping_rates=(0.0,),
                                 distorting_rates=(0.0,), rng=rng)
    dataset = PairDataset(pairs, vocab)
    model = EncoderDecoder(ModelConfig(vocab.size, 12, 12, num_layers=1,
                                       dropout=0.0, rnn_type="lstm", seed=0))
    trainer = Trainer(model, vocab, LossSpec(kind="L1"),
                      TrainingConfig(batch_size=6, max_epochs=3))
    result = trainer.fit(dataset)
    assert result.train_losses[-1] < result.train_losses[0]
