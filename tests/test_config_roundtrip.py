"""Config serialization: to_dict/from_dict equality and checkpoint fidelity."""

import dataclasses
import json

import pytest

from repro import LossSpec, T2Vec, T2VecConfig, TrainingConfig


def custom_config() -> T2VecConfig:
    """A config where every field differs from its default."""
    return T2VecConfig(
        cell_size=77.0, min_hits=9, embedding_size=12, hidden_size=12,
        num_layers=3, dropout=0.25, rnn_type="lstm",
        loss=LossSpec(kind="L2", k_nearest=4, theta=55.0, noise=8),
        pretrain_cells=False, cell_epochs=7,
        dropping_rates=(0.1, 0.2), distorting_rates=(0.3,),
        training=TrainingConfig(batch_size=11, max_epochs=21, lr=2e-3,
                                clip_norm=3.0, patience=2, eval_batches=4,
                                seed=13),
        val_fraction=0.33, encode_cache_size=123, seed=42,
    )


def test_loss_spec_roundtrip():
    spec = LossSpec(kind="L2", k_nearest=7, theta=42.0, noise=5)
    assert LossSpec.from_dict(spec.to_dict()) == spec


def test_training_config_roundtrip():
    config = TrainingConfig(batch_size=3, max_epochs=5, lr=0.5,
                            clip_norm=1.0, patience=9, eval_batches=2, seed=4)
    assert TrainingConfig.from_dict(config.to_dict()) == config


def test_t2vec_config_roundtrip_including_nested():
    config = custom_config()
    data = config.to_dict()
    assert T2VecConfig.from_dict(data) == config
    # Every declared field appears in the dict.
    assert set(data) == {f.name for f in dataclasses.fields(T2VecConfig)}


def test_t2vec_config_dict_is_json_safe():
    config = custom_config()
    through_json = json.loads(json.dumps(config.to_dict()))
    assert T2VecConfig.from_dict(through_json) == config


def test_from_dict_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown T2VecConfig"):
        T2VecConfig.from_dict({"cell_sizes": 100.0})
    with pytest.raises(ValueError, match="unknown TrainingConfig"):
        TrainingConfig.from_dict({"batch": 32})
    with pytest.raises(ValueError, match="unknown LossSpec"):
        LossSpec.from_dict({"kind": "L1", "K": 20})


def test_from_dict_defaults_missing_keys():
    """Old checkpoints carry partial configs; missing fields use defaults."""
    config = T2VecConfig.from_dict({
        "cell_size": 50.0, "min_hits": 2,
        "loss": {"kind": "L1", "k_nearest": 3, "theta": 10.0, "noise": 2},
        "seed": 5,
    })
    assert config.cell_size == 50.0
    assert config.loss.kind == "L1"
    assert config.training == TrainingConfig()      # default preserved
    assert config.pretrain_cells is True
    assert config.val_fraction == 0.1


def test_save_load_preserves_every_config_field(trips, tmp_path):
    """The checkpoint roundtrip keeps the full config, so a loaded model
    could be re-fit identically (the old path dropped pretrain_cells,
    rates, val_fraction, and the whole TrainingConfig)."""
    config = T2VecConfig(
        min_hits=3, embedding_size=8, hidden_size=8, num_layers=1,
        dropout=0.0, loss=LossSpec(kind="L1"),
        pretrain_cells=False, cell_epochs=5,
        dropping_rates=(0.0, 0.25), distorting_rates=(0.0, 0.5),
        training=TrainingConfig(batch_size=16, max_epochs=1, lr=5e-4,
                                patience=3, eval_batches=2, seed=11),
        val_fraction=0.2, encode_cache_size=50, seed=3,
    )
    model = T2Vec(config)
    model.fit(trips[:12])
    path = tmp_path / "model.npz"
    model.save(path)
    restored = T2Vec.load(path)
    assert restored.config == config
    assert restored.config.to_dict() == config.to_dict()


def test_load_old_style_partial_checkpoint_meta(trips, tmp_path):
    """Checkpoints written before full-config metadata still load."""
    from repro.nn.serialization import load_checkpoint, save_checkpoint

    config = T2VecConfig(min_hits=3, embedding_size=8, hidden_size=8,
                         num_layers=1, dropout=0.0, loss=LossSpec(kind="L1"),
                         pretrain_cells=False, val_fraction=0.0,
                         training=TrainingConfig(batch_size=16, max_epochs=1))
    model = T2Vec(config)
    model.fit(trips[:12])
    path = tmp_path / "old.npz"
    model.save(path)

    # Rewrite metadata in the pre-redesign shape (hand-rolled subset).
    state, meta = load_checkpoint(path)
    meta["config"] = {
        "cell_size": config.cell_size, "min_hits": config.min_hits,
        "embedding_size": 8, "hidden_size": 8, "num_layers": 1,
        "dropout": 0.0, "rnn_type": "gru",
        "loss": {"kind": "L1", "k_nearest": 10, "theta": 100.0, "noise": 64},
        "seed": 0,
    }
    save_checkpoint(path, state, meta)

    restored = T2Vec.load(path)
    assert restored.config.hidden_size == 8
    assert restored.config.training == TrainingConfig()  # defaulted
    assert restored.vocab.size == model.vocab.size
