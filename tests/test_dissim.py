"""DISSIM: integral-of-distance measure."""

import numpy as np
import pytest

from repro.baselines import DISSIM
from repro.data import Trajectory


def moving_point(xs, ts=None):
    pts = np.stack([np.asarray(xs, dtype=float),
                    np.zeros(len(xs))], axis=1)
    return Trajectory(points=pts, timestamps=ts)


def test_identical_trajectories_zero():
    t = moving_point([0, 10, 20], np.array([0.0, 1.0, 2.0]))
    assert DISSIM("absolute").distance(t, t) == pytest.approx(0.0)


def test_parallel_offset_integrates_constant_distance():
    a = moving_point([0, 10, 20], np.array([0.0, 1.0, 2.0]))
    b = Trajectory(points=a.points + np.array([0.0, 5.0]),
                   timestamps=a.timestamps)
    # constant 5 m gap over 2 s -> integral 10.
    assert DISSIM("absolute").distance(a, b) == pytest.approx(10.0)


def test_rescale_mode_averages_over_unit_domain():
    a = moving_point([0, 10, 20], np.array([0.0, 1.0, 2.0]))
    b = Trajectory(points=a.points + np.array([0.0, 5.0]),
                   timestamps=np.array([0.0, 50.0, 100.0]))  # much slower
    # Rescaled to [0, 1] both traverse the same path: constant 5 m gap.
    assert DISSIM("rescale").distance(a, b) == pytest.approx(5.0)


def test_rescale_works_without_timestamps():
    a = moving_point([0, 10, 20])
    b = moving_point([0, 5, 10, 15, 20])
    assert DISSIM("rescale").distance(a, b) == pytest.approx(0.0, abs=1e-9)


def test_absolute_requires_timestamps():
    a = moving_point([0, 10])
    b = moving_point([0, 10], np.array([0.0, 1.0]))
    with pytest.raises(ValueError):
        DISSIM("absolute").distance(a, b)


def test_absolute_rejects_disjoint_windows():
    a = moving_point([0, 10], np.array([0.0, 1.0]))
    b = moving_point([0, 10], np.array([5.0, 6.0]))
    with pytest.raises(ValueError):
        DISSIM("absolute").distance(a, b)


def test_symmetry(trips):
    d = DISSIM("rescale")
    assert d.distance(trips[0], trips[1]) == pytest.approx(
        d.distance(trips[1], trips[0]), rel=1e-9)


def test_distance_to_many_matches_loop(trips):
    d = DISSIM("rescale")
    batched = d.distance_to_many(trips[0], trips[1:5])
    singles = [d.distance(trips[0], t) for t in trips[1:5]]
    np.testing.assert_allclose(batched, singles)


def test_invalid_align_mode():
    with pytest.raises(ValueError):
        DISSIM("fuzzy")


def test_denser_sampling_converges():
    """Refining one trajectory's sampling leaves the integral stable."""
    ts = np.linspace(0, 2, 5)
    a = moving_point(np.linspace(0, 20, 5), ts)
    fine_ts = np.linspace(0, 2, 41)
    b = Trajectory(points=np.stack([np.linspace(0, 20, 41),
                                    np.full(41, 3.0)], axis=1),
                   timestamps=fine_ts)
    coarse = DISSIM("absolute").distance(a, b)
    assert coarse == pytest.approx(6.0, rel=1e-6)  # 3 m gap over 2 s
