"""Trajectory archive persistence."""

import numpy as np
import pytest

from repro.data import Trajectory
from repro.data.archive import load_archive, save_archive


def test_round_trip_preserves_everything(tmp_path, trips):
    path = tmp_path / "archive.npz"
    save_archive(path, trips[:10])
    loaded = load_archive(path)
    assert len(loaded) == 10
    for original, restored in zip(trips[:10], loaded):
        np.testing.assert_array_equal(restored.points, original.points)
        np.testing.assert_array_equal(restored.timestamps, original.timestamps)
        assert restored.traj_id == original.traj_id
        assert restored.route_id == original.route_id


def test_round_trip_without_optional_fields(tmp_path):
    t = Trajectory(points=np.array([[0.0, 0.0], [1.0, 1.0]]))
    path = tmp_path / "bare.npz"
    save_archive(path, [t])
    loaded = load_archive(path)[0]
    assert loaded.timestamps is None
    assert loaded.traj_id is None
    assert loaded.route_id is None


def test_mixed_timestamp_presence(tmp_path):
    with_ts = Trajectory(points=np.zeros((3, 2)) + np.arange(3)[:, None],
                         timestamps=np.array([0.0, 1.0, 2.0]))
    without = Trajectory(points=np.ones((2, 2)))
    path = tmp_path / "mixed.npz"
    save_archive(path, [with_ts, without])
    loaded = load_archive(path)
    assert loaded[0].timestamps is not None
    assert loaded[1].timestamps is None


def test_empty_archive_rejected(tmp_path):
    with pytest.raises(ValueError):
        save_archive(tmp_path / "empty.npz", [])


def test_missing_suffix_resolved(tmp_path, trips):
    path = tmp_path / "archive"
    save_archive(path, trips[:2])
    assert len(load_archive(path)) == 2


def test_version_check(tmp_path, trips):
    path = tmp_path / "archive.npz"
    save_archive(path, trips[:1])
    with np.load(path) as archive:
        payload = {k: archive[k] for k in archive.files}
    payload["version"] = np.int64(999)
    np.savez(path, **payload)
    with pytest.raises(ValueError):
        load_archive(path)


def test_parent_directories_created(tmp_path, trips):
    path = tmp_path / "a" / "b" / "archive.npz"
    save_archive(path, trips[:1])
    assert path.exists()
