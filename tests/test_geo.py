"""Projections and geodesic distances."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial import Projection, bounding_box, euclidean, haversine


PORTO = (-8.61, 41.15)  # lon, lat


def test_projection_round_trip():
    proj = Projection(*PORTO)
    pts = np.array([[-8.60, 41.16], [-8.62, 41.14], [-8.61, 41.15]])
    back = proj.to_lonlat(proj.to_xy(pts))
    np.testing.assert_allclose(back, pts, atol=1e-12)


def test_projection_anchor_maps_to_origin():
    proj = Projection(*PORTO)
    np.testing.assert_allclose(proj.to_xy(np.array(PORTO)), [0.0, 0.0])


def test_projection_agrees_with_haversine_at_city_scale():
    proj = Projection(*PORTO)
    a = np.array([-8.61, 41.15])
    b = np.array([-8.60, 41.16])  # ~1.4 km away
    d_proj = euclidean(proj.to_xy(a), proj.to_xy(b))
    d_hav = haversine(a, b)
    assert d_proj == pytest.approx(d_hav, rel=1e-3)


def test_projection_for_points_uses_centroid():
    pts = np.array([[0.0, 10.0], [2.0, 20.0]])
    proj = Projection.for_points(pts)
    assert proj.lon0 == pytest.approx(1.0)
    assert proj.lat0 == pytest.approx(15.0)


def test_projection_for_points_empty_raises():
    with pytest.raises(ValueError):
        Projection.for_points(np.empty((0, 2)))


def test_haversine_zero_for_identical_points():
    p = np.array([12.5, 55.7])
    assert haversine(p, p) == pytest.approx(0.0, abs=1e-9)


def test_haversine_known_distance():
    # One degree of latitude is ~111.2 km.
    a = np.array([0.0, 0.0])
    b = np.array([0.0, 1.0])
    assert haversine(a, b) == pytest.approx(111_195, rel=1e-3)


def test_haversine_broadcasts():
    a = np.array([[0.0, 0.0], [0.0, 1.0]])
    b = np.array([0.0, 0.0])
    out = haversine(a, b)
    assert out.shape == (2,)
    assert out[0] == pytest.approx(0.0, abs=1e-9)


def test_bounding_box_with_margin():
    pts = np.array([[0.0, 1.0], [4.0, -1.0]])
    assert bounding_box(pts, margin=0.5) == (-0.5, -1.5, 4.5, 1.5)


def test_bounding_box_empty_raises():
    with pytest.raises(ValueError):
        bounding_box(np.empty((0, 2)))


@settings(max_examples=30, deadline=None)
@given(
    lon=st.floats(-170, 170), lat=st.floats(-80, 80),
    dlon=st.floats(-0.05, 0.05), dlat=st.floats(-0.05, 0.05),
)
def test_projection_round_trip_property(lon, lat, dlon, dlat):
    proj = Projection(lon, lat)
    point = np.array([lon + dlon, lat + dlat])
    back = proj.to_lonlat(proj.to_xy(point))
    np.testing.assert_allclose(back, point, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(
    lon=st.floats(-170, 170), lat=st.floats(-60, 60),
    dlon=st.floats(0.001, 0.02), dlat=st.floats(0.001, 0.02),
)
def test_projection_distance_close_to_haversine(lon, lat, dlon, dlat):
    """At city scale the local projection is metrically faithful (<1%)."""
    proj = Projection(lon, lat)
    a = np.array([lon, lat])
    b = np.array([lon + dlon, lat + dlat])
    d_proj = euclidean(proj.to_xy(a), proj.to_xy(b))
    d_hav = haversine(a, b)
    assert d_proj == pytest.approx(d_hav, rel=0.01)
