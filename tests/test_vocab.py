"""Hot-cell vocabulary: thresholds, tokenization, proximity kernels."""

import numpy as np
import pytest

from repro.spatial import BOS, EOS, NUM_SPECIALS, PAD, UNK, CellVocabulary, Grid


@pytest.fixture
def toy_grid():
    return Grid(0.0, 0.0, 500.0, 500.0, cell_size=100.0)


@pytest.fixture
def toy_vocab(toy_grid):
    rng = np.random.default_rng(0)
    # Dense cluster bottom-left, sparse stray points top-right.
    dense = rng.uniform(0, 200, size=(200, 2))
    strays = np.array([[450.0, 450.0]])
    return CellVocabulary.build(toy_grid, np.concatenate([dense, strays]),
                                min_hits=5)


def test_special_tokens_layout():
    assert (PAD, BOS, EOS, UNK) == (0, 1, 2, 3)
    assert NUM_SPECIALS == 4


def test_hot_cell_threshold_filters_strays(toy_grid, toy_vocab):
    stray_cell = toy_grid.cell_of(np.array([450.0, 450.0]))
    assert toy_vocab.token_of_cell(stray_cell) is None
    assert toy_vocab.num_hot_cells <= 4  # only the dense 2x2 block survives
    assert toy_vocab.size == toy_vocab.num_hot_cells + NUM_SPECIALS


def test_hot_cells_sorted_by_density(toy_vocab):
    counts = toy_vocab.hit_counts
    assert (np.diff(counts) <= 0).all()


def test_min_hits_too_high_raises(toy_grid):
    with pytest.raises(ValueError):
        CellVocabulary.build(toy_grid, np.zeros((3, 2)), min_hits=10)


def test_tokenize_points_maps_to_nearest_hot_cell(toy_vocab):
    # A stray point far from hot cells still gets its nearest hot token.
    tokens = toy_vocab.tokenize_points(np.array([[450.0, 450.0]]))
    assert tokens[0] >= NUM_SPECIALS
    assert tokens[0] < toy_vocab.size


def test_tokenize_points_exact_centroids(toy_vocab):
    centroids = toy_vocab.centroids
    tokens = toy_vocab.tokenize_points(centroids)
    np.testing.assert_array_equal(
        tokens, np.arange(toy_vocab.num_hot_cells) + NUM_SPECIALS)


def test_centroid_of_tokens_round_trip(toy_vocab):
    tokens = np.arange(toy_vocab.num_hot_cells) + NUM_SPECIALS
    xy = toy_vocab.centroid_of_tokens(tokens)
    np.testing.assert_array_equal(xy, toy_vocab.centroids)


def test_centroid_of_special_token_raises(toy_vocab):
    with pytest.raises(ValueError):
        toy_vocab.centroid_of_tokens(np.array([PAD]))


def test_token_distance_zero_for_same_token(toy_vocab):
    t = np.array([NUM_SPECIALS])
    assert toy_vocab.token_distance(t, t)[0] == 0.0


def test_knn_table_self_first(vocab):
    tokens, dists = vocab.knn_table(5)
    assert tokens.shape == (vocab.num_hot_cells, 5)
    np.testing.assert_array_equal(
        tokens[:, 0], np.arange(vocab.num_hot_cells) + NUM_SPECIALS)
    np.testing.assert_allclose(dists[:, 0], 0.0)
    assert (np.diff(dists, axis=1) >= 0).all()


def test_knn_table_k_clamped(toy_vocab):
    tokens, _ = toy_vocab.knn_table(100)
    assert tokens.shape[1] == toy_vocab.num_hot_cells


def test_proximity_candidates_weights_sum_to_one(vocab):
    targets = np.arange(NUM_SPECIALS, NUM_SPECIALS + 10)
    cand, weights = vocab.proximity_candidates(targets, k=5, theta=100.0)
    np.testing.assert_allclose(weights.sum(axis=1), 1.0)
    # The target itself carries the largest weight.
    np.testing.assert_array_equal(cand[:, 0], targets)
    assert (weights[:, 0] >= weights.max(axis=1) - 1e-12).all()


def test_proximity_candidates_special_targets_one_hot(vocab):
    cand, weights = vocab.proximity_candidates(np.array([EOS]), k=5, theta=100.0)
    assert cand[0, 0] == EOS
    np.testing.assert_allclose(weights[0], [1.0, 0, 0, 0, 0])


def test_proximity_weights_decay_with_theta(vocab):
    targets = np.array([NUM_SPECIALS])
    _, sharp = vocab.proximity_candidates(targets, k=5, theta=10.0)
    _, smooth = vocab.proximity_candidates(targets, k=5, theta=1000.0)
    # Small theta concentrates mass on the target cell (approaches NLL).
    assert sharp[0, 0] > smooth[0, 0]


def test_full_weights_rows_normalized(vocab):
    targets = np.array([NUM_SPECIALS, NUM_SPECIALS + 3, EOS])
    weights = vocab.full_weights(targets, theta=100.0)
    assert weights.shape == (3, vocab.size)
    np.testing.assert_allclose(weights.sum(axis=1), 1.0)
    # Specials get zero weight for hot targets; EOS target is one-hot.
    assert weights[0, :NUM_SPECIALS].sum() == 0.0
    assert weights[2, EOS] == 1.0


def test_invalid_theta_raises(vocab):
    with pytest.raises(ValueError):
        vocab.proximity_candidates(np.array([4]), k=5, theta=0.0)
    with pytest.raises(ValueError):
        vocab.full_weights(np.array([4]), theta=-1.0)
    with pytest.raises(ValueError):
        vocab.context_distribution(5, theta=0.0)


def test_sample_noise_range_and_exclusion(vocab, rng):
    exclude = np.tile(np.arange(NUM_SPECIALS, NUM_SPECIALS + 5), (8, 1))
    noise = vocab.sample_noise(rng, batch=8, count=16, exclude=exclude)
    assert noise.shape == (8, 16)
    assert noise.min() >= NUM_SPECIALS
    assert noise.max() < vocab.size


def test_context_distribution_rows_normalized(vocab):
    neighbours, probs = vocab.context_distribution(6, theta=100.0)
    assert neighbours.shape == probs.shape
    np.testing.assert_allclose(probs.sum(axis=1), 1.0)
    # Nearer cells are more probable.
    assert (np.diff(probs, axis=1) <= 1e-12).all()


def test_duplicate_hot_cells_rejected(toy_grid):
    with pytest.raises(ValueError):
        CellVocabulary(toy_grid, np.array([3, 3]))


def test_empty_vocabulary_rejected(toy_grid):
    with pytest.raises(ValueError):
        CellVocabulary(toy_grid, np.array([], dtype=int))
