"""Real Porto CSV loader (exercised on a synthetic fixture file)."""

import json

import numpy as np
import pytest

from repro.data import load_porto
from repro.data.porto import iter_porto_polylines


def porto_polyline(n, lon0=-8.61, lat0=41.15):
    lons = lon0 + np.linspace(0, 0.01, n)
    lats = lat0 + np.linspace(0, 0.008, n)
    return [[float(a), float(b)] for a, b in zip(lons, lats)]


@pytest.fixture
def porto_csv(tmp_path):
    rows = [
        porto_polyline(40),                         # valid long trip
        porto_polyline(5),                          # too short
        porto_polyline(35, lon0=-9.5),              # outside the bbox
        porto_polyline(60),                         # valid long trip
    ]
    path = tmp_path / "train.csv"
    with open(path, "w") as handle:
        handle.write('"TRIP_ID","POLYLINE"\n')
        for i, polyline in enumerate(rows):
            encoded = json.dumps(polyline).replace('"', '""')
            handle.write(f'"{i}","{encoded}"\n')
    return path


def test_iter_polylines_yields_all_rows(porto_csv):
    polylines = list(iter_porto_polylines(porto_csv))
    assert len(polylines) == 4
    assert polylines[0].shape == (40, 2)


def test_load_porto_filters_short_and_out_of_bbox(porto_csv):
    trips = load_porto(porto_csv, min_length=30)
    assert len(trips) == 2
    assert all(len(t) >= 30 for t in trips)


def test_load_porto_projects_to_meters(porto_csv):
    trips = load_porto(porto_csv, min_length=30)
    # ~0.01 degrees of longitude in Porto is under a kilometre.
    span = trips[0].points[:, 0].max() - trips[0].points[:, 0].min()
    assert 500 < span < 1500


def test_load_porto_timestamps_follow_15s_sampling(porto_csv):
    trips = load_porto(porto_csv, min_length=30)
    np.testing.assert_allclose(np.diff(trips[0].timestamps), 15.0)


def test_load_porto_max_trips(porto_csv):
    trips = load_porto(porto_csv, min_length=30, max_trips=1)
    assert len(trips) == 1


def test_load_porto_no_bbox_keeps_out_of_town(porto_csv):
    trips = load_porto(porto_csv, min_length=30, bbox=None)
    assert len(trips) == 3


def test_missing_polyline_column_raises(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text('"A","B"\n"1","2"\n')
    with pytest.raises(ValueError):
        list(iter_porto_polylines(path))
