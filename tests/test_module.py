"""Module system: parameter discovery, state dicts, train/eval modes."""

import numpy as np
import pytest

from repro.nn import GRU, Embedding, Linear, Module, Parameter


class ToyModel(Module):
    def __init__(self):
        super().__init__()
        rng = np.random.default_rng(0)
        self.linear = Linear(4, 3, rng=rng)
        self.embedding = Embedding(7, 4, rng=rng)
        self.blocks = [Linear(3, 3, rng=rng), Linear(3, 2, rng=rng)]
        self.scale = Parameter(np.ones(1))

    def forward(self, tokens):
        return self.linear(self.embedding(tokens))


def test_named_parameters_cover_nested_modules_and_lists():
    model = ToyModel()
    names = {name for name, _ in model.named_parameters()}
    assert "linear.weight" in names
    assert "linear.bias" in names
    assert "embedding.weight" in names
    assert "blocks.0.weight" in names
    assert "blocks.1.bias" in names
    assert "scale" in names


def test_num_parameters_counts_every_element():
    model = ToyModel()
    expected = sum(p.size for p in model.parameters())
    assert model.num_parameters() == expected
    assert expected > 0


def test_state_dict_round_trip():
    model = ToyModel()
    state = model.state_dict()
    # mutate, then restore
    for p in model.parameters():
        p.data += 1.0
    model.load_state_dict(state)
    for name, p in model.named_parameters():
        np.testing.assert_array_equal(p.data, state[name])


def test_state_dict_is_a_copy():
    model = ToyModel()
    state = model.state_dict()
    model.linear.weight.data += 5.0
    assert not np.allclose(state["linear.weight"], model.linear.weight.data)


def test_load_state_dict_rejects_missing_keys():
    model = ToyModel()
    state = model.state_dict()
    del state["scale"]
    with pytest.raises(KeyError):
        model.load_state_dict(state)


def test_load_state_dict_rejects_unexpected_keys():
    model = ToyModel()
    state = model.state_dict()
    state["ghost"] = np.zeros(2)
    with pytest.raises(KeyError):
        model.load_state_dict(state)


def test_load_state_dict_rejects_shape_mismatch():
    model = ToyModel()
    state = model.state_dict()
    state["scale"] = np.zeros(9)
    with pytest.raises(ValueError):
        model.load_state_dict(state)


def test_train_eval_propagates_to_submodules():
    model = ToyModel()
    model.eval()
    assert not model.linear.training
    assert not model.blocks[1].training
    model.train()
    assert model.blocks[0].training


def test_zero_grad_clears_gradients():
    model = ToyModel()
    out = model(np.array([1, 2])).sum()
    out.backward()
    assert model.linear.weight.grad is not None
    model.zero_grad()
    assert all(p.grad is None for p in model.parameters())


def test_gru_parameters_discovered_through_cells_list():
    gru = GRU(4, 5, num_layers=2, rng=np.random.default_rng(0))
    names = {name for name, _ in gru.named_parameters()}
    assert "cells.0.w_ih" in names
    assert "cells.1.w_hh" in names
