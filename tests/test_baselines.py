"""Baseline distance measures: semantics, batched/single consistency."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import CMS, DTW, EDR, ERP, LCSS, EDwP, suggest_epsilon
from repro.data import Trajectory, alternating_split


def line(n, x0=0.0, y0=0.0, step=10.0, axis=0):
    pts = np.zeros((n, 2))
    pts[:, axis] = x0 + np.arange(n) * step
    pts[:, 1 - axis] += y0
    return Trajectory(points=pts)


@pytest.fixture(scope="module")
def dp_measures():
    return [DTW(), EDR(100.0), LCSS(100.0), ERP(), EDwP()]


# ----------------------------------------------------------------------
# Batched vs single-pair consistency (the core contract)
# ----------------------------------------------------------------------
def test_batched_matches_reference(dp_measures, trips):
    """The wavefront kernel agrees with the plain-loop DP oracle."""
    query = trips[0]
    candidates = trips[1:15]
    for measure in dp_measures:
        batched = measure.distance_to_many(query, candidates)
        single = np.array([measure.reference_distance(query, c)
                           for c in candidates])
        np.testing.assert_allclose(batched, single, rtol=1e-5, atol=1e-6,
                                   err_msg=measure.name)


def test_single_pair_delegates_to_batched_kernel(dp_measures, trips):
    """`distance` rides the vectorized anti-diagonal kernel, not the loop."""
    for measure in dp_measures:
        batched = measure.distance_to_many(trips[0], [trips[1]])[0]
        assert measure.distance(trips[0], trips[1]) == batched, measure.name


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 500), n=st.integers(3, 15), m=st.integers(3, 15))
def test_batched_matches_reference_property(seed, n, m):
    rng = np.random.default_rng(seed)
    a = Trajectory(points=rng.uniform(0, 500, (n, 2)))
    b = Trajectory(points=rng.uniform(0, 500, (m, 2)))
    c = Trajectory(points=rng.uniform(0, 500, (m + 2, 2)))
    for measure in [DTW(), EDR(80.0), LCSS(80.0), ERP(), EDwP()]:
        batched = measure.distance_to_many(a, [b, c])
        np.testing.assert_allclose(
            batched,
            [measure.reference_distance(a, b), measure.reference_distance(a, c)],
            rtol=1e-5, atol=1e-6, err_msg=measure.name)


# ----------------------------------------------------------------------
# Identity and symmetry
# ----------------------------------------------------------------------
def test_self_distance_is_minimal(dp_measures, trips):
    t = trips[0]
    assert DTW().distance(t, t) == pytest.approx(0.0, abs=1e-9)
    assert EDR(100.0).distance(t, t) == 0.0
    assert LCSS(100.0).distance(t, t) == 0.0
    assert ERP().distance(t, t) == pytest.approx(0.0, abs=1e-6)
    assert EDwP().distance(t, t) == pytest.approx(0.0, abs=1e-6)


def test_symmetry(dp_measures, trips):
    a, b = trips[0], trips[1]
    for measure in dp_measures:
        assert measure.distance(a, b) == pytest.approx(
            measure.distance(b, a), rel=1e-6), measure.name


def test_distances_nonnegative(dp_measures, trips):
    a, b = trips[2], trips[3]
    for measure in dp_measures:
        assert measure.distance(a, b) >= 0.0, measure.name


# ----------------------------------------------------------------------
# Measure-specific semantics
# ----------------------------------------------------------------------
class TestDTW:
    def test_known_small_case(self):
        a = Trajectory(points=np.array([[0.0, 0], [1.0, 0]]))
        b = Trajectory(points=np.array([[0.0, 0], [1.0, 0], [2.0, 0]]))
        # alignment: (0,0) (1,1) (1,2) -> 0 + 0 + 1
        assert DTW().distance(a, b) == pytest.approx(1.0)


class TestEDR:
    def test_counts_edits(self):
        a = line(4)                       # x = 0, 10, 20, 30
        b = line(4, x0=1000.0)            # far away: nothing matches
        assert EDR(50.0).distance(a, b) == 4.0

    def test_identical_within_epsilon_costs_zero(self):
        a = line(5)
        shifted = Trajectory(points=a.points + np.array([3.0, 3.0]))
        assert EDR(10.0).distance(a, shifted) == 0.0

    def test_per_dimension_threshold(self):
        a = Trajectory(points=np.array([[0.0, 0.0], [10.0, 0.0]]))
        b = Trajectory(points=np.array([[0.0, 9.0], [10.0, 9.0]]))
        assert EDR(9.5).distance(a, b) == 0.0   # both dims within eps
        c = Trajectory(points=np.array([[0.0, 11.0], [10.0, 11.0]]))
        assert EDR(9.5).distance(a, c) == 2.0   # y exceeds eps

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            EDR(0.0)

    def test_suggest_epsilon_positive(self, trips):
        eps = suggest_epsilon(trips)
        assert eps > 0


class TestLCSS:
    def test_distance_zero_for_matchable(self):
        a = line(6)
        assert LCSS(20.0).distance(a, a) == 0.0

    def test_distance_one_for_disjoint(self):
        a = line(5)
        b = line(5, x0=10000.0)
        assert LCSS(50.0).distance(a, b) == 1.0

    def test_similarity_counts_common_points(self):
        a = line(6)
        b = Trajectory(points=a.points[1:5])
        assert LCSS(5.0).similarity(a, b) == 4


class TestERP:
    def test_triangle_inequality_samples(self, trips):
        erp = ERP(gap_point=np.zeros(2))
        a, b, c = trips[0], trips[1], trips[2]
        assert erp.distance(a, c) <= (erp.distance(a, b) +
                                      erp.distance(b, c) + 1e-6)

    def test_gap_point_affects_cost(self):
        a = line(4)
        b = line(6)
        near = ERP(gap_point=np.array([0.0, 0.0])).distance(a, b)
        far = ERP(gap_point=np.array([1e6, 1e6])).distance(a, b)
        assert far > near


class TestEDwP:
    def test_rate_invariance_on_shared_curve(self):
        """EDwP's raison d'etre: resampling the same curve costs little."""
        dense = line(40, step=10.0)
        sparse = Trajectory(points=dense.points[::4])
        other = line(40, y0=500.0)
        same = EDwP().distance(dense, sparse)
        different = EDwP().distance(dense, other)
        assert same < 0.05 * different

    def test_handles_two_point_trajectories(self):
        a = Trajectory(points=np.array([[0.0, 0.0], [100.0, 0.0]]))
        b = Trajectory(points=np.array([[0.0, 10.0], [100.0, 10.0]]))
        assert np.isfinite(EDwP().distance(a, b))


class TestCMS:
    def test_identical_cells_zero_distance(self, vocab, trips):
        cms = CMS(vocab)
        assert cms.distance(trips[0], trips[0]) == 0.0

    def test_disjoint_cells_distance_one(self, vocab, trips):
        cms = CMS(vocab)
        # Find two trips with no shared tokens, if any; otherwise skip.
        for a in trips[:10]:
            for b in trips[10:30]:
                if cms.distance(a, b) == 1.0:
                    return
        pytest.skip("no fully disjoint trip pair in fixture data")

    def test_batched_matches_single(self, vocab, trips):
        cms = CMS(vocab)
        batched = cms.distance_to_many(trips[0], trips[1:8])
        single = [cms.distance(trips[0], t) for t in trips[1:8]]
        np.testing.assert_allclose(batched, single)

    def test_order_blindness(self, vocab, trips):
        """CMS ignores sequence order — the paper's motivation for vRNN."""
        cms = CMS(vocab)
        t = trips[0]
        reversed_t = Trajectory(points=t.points[::-1].copy())
        assert cms.distance(t, reversed_t) == 0.0


# ----------------------------------------------------------------------
# kNN / ranking interface
# ----------------------------------------------------------------------
def test_knn_returns_sorted_indices(trips):
    edr = EDR(100.0)
    idx = edr.knn(trips[0], trips[1:20], k=5)
    dists = edr.distance_to_many(trips[0], trips[1:20])
    assert len(idx) == 5
    assert (np.diff(dists[idx]) >= 0).all()
    np.testing.assert_array_equal(np.sort(dists[idx]),
                                  np.sort(dists)[:5])


def test_rank_of_counterpart_beats_random(trips, rng):
    """Sanity: every DP measure ranks the true counterpart well."""
    edwp = EDwP()
    ranks = []
    for qi in range(5):
        ta, ta_prime = alternating_split(trips[qi])
        db = [ta_prime] + [alternating_split(t)[1] for t in trips[10:40]]
        ranks.append(edwp.rank_of(ta, db, 0))
    assert np.mean(ranks) < 8  # far better than the random ~15


def test_rank_of_is_one_based(trips):
    edr = EDR(100.0)
    db = [trips[0], trips[1]]
    assert edr.rank_of(trips[0], db, 0) == 1


def test_knn_batch_matches_per_query(trips):
    edr = EDR(100.0)
    queries, db = trips[:6], trips[10:40]
    rows = edr.knn_batch(queries, db, k=5)
    assert rows.shape == (6, 5)
    for i, query in enumerate(queries):
        np.testing.assert_array_equal(rows[i], edr.knn(query, db, k=5))


def test_knn_batch_k_larger_than_database(trips):
    edr = EDR(100.0)
    rows = edr.knn_batch(trips[:3], trips[10:14], k=50)
    assert rows.shape == (3, 4)


def test_rank_of_many_matches_per_query(trips):
    edwp = EDwP()
    queries, db = trips[:5], trips[10:30]
    targets = [3, 0, 7, 1, 19]
    batched = edwp.rank_of_many(queries, db, targets)
    single = [edwp.rank_of(q, db, t) for q, t in zip(queries, targets)]
    np.testing.assert_array_equal(batched, single)
