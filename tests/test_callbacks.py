"""Trainer callback API: firing order, counts, metrics, deprecation shim."""

import numpy as np
import pytest

from repro.core import (EncoderDecoder, LossSpec, ModelConfig, Trainer,
                        TrainingConfig)
from repro.data import PairDataset, build_training_pairs
from repro.telemetry import (Callback, HistoryCallback, MetricsRegistry,
                             ProgressLogger, StopTraining)


@pytest.fixture(scope="module")
def datasets(vocab, trips):
    rng = np.random.default_rng(0)
    train_pairs = build_training_pairs(trips[:10], dropping_rates=(0.0,),
                                       distorting_rates=(0.0,), rng=rng)
    val_pairs = build_training_pairs(trips[10:13], dropping_rates=(0.0,),
                                     distorting_rates=(0.0,), rng=rng)
    return PairDataset(train_pairs, vocab), PairDataset(val_pairs, vocab)


def make_trainer(vocab, registry=None, **config):
    model = EncoderDecoder(ModelConfig(vocab.size, 16, 16, num_layers=1,
                                       dropout=0.0, seed=0))
    defaults = dict(batch_size=16, max_epochs=2, patience=10)
    defaults.update(config)
    return Trainer(model, vocab, LossSpec(kind="L1"),
                   TrainingConfig(**defaults), registry=registry)


class RecordingCallback(Callback):
    """Logs every hook invocation as (hook_name, key_arg)."""

    def __init__(self):
        self.events = []

    def on_fit_start(self, trainer):
        self.events.append(("fit_start", None))

    def on_epoch_start(self, trainer, epoch):
        self.events.append(("epoch_start", epoch))

    def on_batch_end(self, trainer, step, loss, tokens):
        self.events.append(("batch_end", step))
        assert np.isfinite(loss) and tokens > 0

    def on_epoch_end(self, trainer, epoch, logs):
        self.events.append(("epoch_end", epoch))
        assert set(logs) >= {"train_loss", "val_loss", "tokens_per_s",
                             "epoch_time_s", "steps"}

    def on_fit_end(self, trainer, result):
        self.events.append(("fit_end", None))


def test_callback_firing_order_and_counts(vocab, datasets):
    train, val = datasets
    trainer = make_trainer(vocab, max_epochs=2)
    recorder = RecordingCallback()
    result = trainer.fit(train, validation=val, callbacks=[recorder])

    hooks = [name for name, _ in recorder.events]
    assert hooks[0] == "fit_start" and hooks[-1] == "fit_end"
    assert hooks.count("epoch_start") == result.epochs_run == 2
    assert hooks.count("epoch_end") == 2
    assert hooks.count("batch_end") == result.steps

    # Within each epoch: epoch_start, then batches, then epoch_end.
    first_epoch = hooks[1:hooks.index("epoch_end") + 1]
    assert first_epoch[0] == "epoch_start"
    assert set(first_epoch[1:-1]) == {"batch_end"}
    # Batch steps are globally sequential.
    steps = [arg for name, arg in recorder.events if name == "batch_end"]
    assert steps == list(range(result.steps))


def test_multiple_callbacks_run_in_order(vocab, datasets):
    train, _ = datasets
    order = []

    class Tagged(Callback):
        def __init__(self, tag):
            self.tag = tag

        def on_epoch_start(self, trainer, epoch):
            order.append(self.tag)

    trainer = make_trainer(vocab, max_epochs=1)
    trainer.fit(train, callbacks=[Tagged("a"), Tagged("b")])
    assert order == ["a", "b"]


def test_stop_training_from_callback(vocab, datasets):
    train, _ = datasets

    class StopAfterFirstEpoch(Callback):
        def on_epoch_end(self, trainer, epoch, logs):
            raise StopTraining

    trainer = make_trainer(vocab, max_epochs=50)
    result = trainer.fit(train, callbacks=[StopAfterFirstEpoch()])
    assert result.epochs_run == 1
    assert result.stopped_early


def test_history_callback_accumulates_epochs(vocab, datasets):
    train, val = datasets
    trainer = make_trainer(vocab, max_epochs=3)
    history = HistoryCallback()
    trainer.fit(train, validation=val, callbacks=[history])
    assert len(history.history) == 3
    assert [h["epoch"] for h in history.history] == [0, 1, 2]
    assert all(h["val_loss"] is not None for h in history.history)


def test_progress_logger_writes_epoch_lines(vocab, datasets, capsys):
    import io
    train, val = datasets
    stream = io.StringIO()
    trainer = make_trainer(vocab, max_epochs=2)
    trainer.fit(train, validation=val,
                callbacks=[ProgressLogger(stream=stream)])
    text = stream.getvalue()
    assert "epoch   1:" in text and "epoch   2:" in text
    assert "tok/s" in text
    assert "fit done: 2 epochs" in text


def test_trainer_records_registry_metrics(vocab, datasets):
    train, val = datasets
    registry = MetricsRegistry()
    trainer = make_trainer(vocab, registry=registry, max_epochs=2)
    result = trainer.fit(train, validation=val)

    assert registry.counters["train.steps"] == result.steps
    assert registry.counters["train.tokens"] == result.tokens > 0
    assert registry.gauge("train.epoch_loss").history == pytest.approx(
        result.train_losses)
    assert registry.gauge("train.val_loss").history == pytest.approx(
        result.val_losses)
    assert all(v > 0 for v in registry.gauge("train.tokens_per_s").history)
    assert result.tokens_per_s > 0
    span_names = {s.name for s in registry.spans}
    assert {"fit", "fit.epoch"} <= span_names
    assert registry.histogram("fit.epoch").count == result.epochs_run


def test_positional_validation_shim_warns_once(vocab, datasets):
    import warnings

    from repro.core import trainer as trainer_module
    train, val = datasets
    trainer = make_trainer(vocab, max_epochs=1)
    trainer_module._POSITIONAL_FIT_WARNED = False
    with pytest.warns(DeprecationWarning, match="positionally"):
        result = trainer.fit(train, val)
    assert len(result.val_losses) == 1  # validation actually used

    with warnings.catch_warnings():
        warnings.simplefilter("error")  # second call must stay silent
        make_trainer(vocab, max_epochs=1).fit(train, val)


def test_positional_and_keyword_validation_conflict(vocab, datasets):
    train, val = datasets
    trainer = make_trainer(vocab, max_epochs=1)
    with pytest.raises(TypeError):
        trainer.fit(train, val, validation=val)
