"""Telemetry primitives: registry, percentiles, spans, JSONL exporters."""

import json
import math

import numpy as np
import pytest

from repro.telemetry import (MetricsRegistry, Timer, cache_hit_rate,
                             get_registry, read_jsonl, set_registry,
                             summarize, to_records, write_jsonl)


# ----------------------------------------------------------------------
# Counters and gauges
# ----------------------------------------------------------------------
def test_counter_accumulates_and_rejects_negative():
    reg = MetricsRegistry()
    reg.counter("events").inc()
    reg.counter("events").inc(4)
    assert reg.counters["events"] == 5
    with pytest.raises(ValueError):
        reg.counter("events").inc(-1)


def test_gauge_keeps_history_and_last_value():
    reg = MetricsRegistry()
    gauge = reg.gauge("loss")
    assert gauge.value is None
    for v in (3.0, 2.0, 1.5):
        gauge.set(v)
    assert gauge.value == 1.5
    assert gauge.history == [3.0, 2.0, 1.5]


def test_metric_accessors_are_create_on_first_use():
    reg = MetricsRegistry()
    assert reg.counter("a") is reg.counter("a")
    assert reg.gauge("b") is reg.gauge("b")
    assert reg.histogram("c") is reg.histogram("c")


# ----------------------------------------------------------------------
# Histogram percentile math
# ----------------------------------------------------------------------
def test_histogram_percentiles_match_numpy():
    reg = MetricsRegistry()
    hist = reg.histogram("lat")
    rng = np.random.default_rng(0)
    values = rng.exponential(size=257)
    for v in values:
        hist.observe(v)
    for q in (0, 25, 50, 95, 99, 100):
        assert hist.percentile(q) == pytest.approx(np.percentile(values, q))


def test_histogram_percentile_interpolates():
    reg = MetricsRegistry()
    hist = reg.histogram("h")
    for v in (0.0, 10.0):
        hist.observe(v)
    assert hist.percentile(50) == pytest.approx(5.0)
    assert hist.percentile(95) == pytest.approx(9.5)


def test_histogram_empty_and_bounds():
    hist = MetricsRegistry().histogram("h")
    assert math.isnan(hist.percentile(50))
    assert math.isnan(hist.mean)
    assert hist.summary() == {"count": 0}
    hist.observe(1.0)
    with pytest.raises(ValueError):
        hist.percentile(101)


def test_histogram_summary_fields():
    hist = MetricsRegistry().histogram("h")
    for v in range(1, 101):
        hist.observe(float(v))
    summary = hist.summary()
    assert summary["count"] == 100
    assert summary["mean"] == pytest.approx(50.5)
    assert summary["min"] == 1.0 and summary["max"] == 100.0
    assert summary["p50"] == pytest.approx(50.5)
    assert summary["p95"] == pytest.approx(95.05)
    assert summary["p99"] == pytest.approx(99.01)


# ----------------------------------------------------------------------
# Spans and timers
# ----------------------------------------------------------------------
def test_spans_nest_with_parent_and_depth():
    reg = MetricsRegistry()
    with reg.span("outer"):
        with reg.span("inner"):
            pass
        with reg.span("inner"):
            pass
    names = [(s.name, s.parent, s.depth) for s in reg.spans]
    assert names == [("inner", "outer", 1), ("inner", "outer", 1),
                     ("outer", None, 0)]
    assert all(s.duration_s >= 0 for s in reg.spans)


def test_span_feeds_histogram_of_same_name():
    reg = MetricsRegistry()
    for _ in range(3):
        with reg.span("work"):
            pass
    assert reg.histogram("work").count == 3
    with reg.span("silent", record_histogram=False):
        pass
    assert reg.histogram("silent").count == 0


def test_span_meta_is_exported():
    reg = MetricsRegistry()
    with reg.span("eval", record_histogram=False, measure="t2vec", k=5):
        pass
    record = reg.spans[0].to_record()
    assert record["meta"] == {"measure": "t2vec", "k": 5}


def test_timer_measures_and_requires_start():
    timer = Timer()
    with pytest.raises(RuntimeError):
        timer.stop()
    with timer:
        pass
    assert timer.elapsed_s >= 0


def test_default_registry_swap():
    mine = MetricsRegistry()
    previous = set_registry(mine)
    try:
        assert get_registry() is mine
    finally:
        set_registry(previous)
    assert get_registry() is previous


# ----------------------------------------------------------------------
# JSONL exporter schema
# ----------------------------------------------------------------------
@pytest.fixture
def populated():
    reg = MetricsRegistry()
    reg.counter("encode.cache_hits").inc(30)
    reg.counter("encode.cache_misses").inc(10)
    reg.gauge("train.epoch_loss").set(2.0)
    reg.gauge("train.epoch_loss").set(1.0)
    for v in (0.1, 0.2, 0.3):
        reg.histogram("encode.latency_s").observe(v)
    with reg.span("fit"):
        pass
    return reg


def test_jsonl_schema_roundtrip(populated, tmp_path):
    path = tmp_path / "metrics.jsonl"
    count = write_jsonl(populated, path)
    lines = path.read_text().strip().splitlines()
    assert len(lines) == count
    records = [json.loads(line) for line in lines]
    assert records == read_jsonl(path)

    by_type = {}
    for r in records:
        by_type.setdefault(r["type"], []).append(r)
    assert set(by_type) == {"counter", "gauge", "histogram", "span"}
    for r in by_type["counter"]:
        assert set(r) == {"type", "name", "value"}
    for r in by_type["gauge"]:
        assert set(r) == {"type", "name", "value", "history"}
    hist = by_type["histogram"][0]
    assert {"count", "mean", "min", "max", "p50", "p95", "p99"} <= set(hist)
    span = by_type["span"][0]
    assert {"name", "parent", "depth", "start_s", "duration_s"} <= set(span)


def test_to_records_matches_snapshot(populated):
    records = to_records(populated)
    snapshot = populated.snapshot()
    counters = {r["name"]: r["value"] for r in records
                if r["type"] == "counter"}
    assert counters == snapshot["counters"]
    gauge = next(r for r in records if r["type"] == "gauge")
    assert gauge["history"] == snapshot["gauges"]["train.epoch_loss"]["history"]


def test_summarize_renders_all_sections(populated):
    text = summarize(populated.to_records())
    assert "counters" in text
    assert "encode.cache_hits" in text
    assert "train.epoch_loss" in text
    assert "p95" in text
    assert "spans" in text
    # Gauge histories with >= 2 points render as an ASCII chart.
    assert "train.epoch_loss per observation" in text


def test_summarize_empty():
    assert summarize([]) == "no metrics recorded"


def test_cache_hit_rate(populated):
    records = to_records(populated)
    assert cache_hit_rate(records) == pytest.approx(0.75)
    assert math.isnan(cache_hit_rate([]))


def test_registry_reset(populated):
    populated.reset()
    assert populated.to_records() == []
