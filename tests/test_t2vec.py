"""End-to-end T2Vec API: fit, encode, similarity, persistence."""

import contextlib
import dataclasses

import numpy as np
import pytest

from repro import LossSpec, T2Vec, T2VecConfig, TrainingConfig
from repro.data import alternating_split


@pytest.fixture(scope="module")
def fitted(trips):
    """A tiny t2vec trained just enough to be structurally meaningful."""
    config = T2VecConfig(
        cell_size=100.0, min_hits=3, embedding_size=24, hidden_size=24,
        num_layers=1, dropout=0.0,
        loss=LossSpec(kind="L3", k_nearest=6, theta=100.0, noise=16),
        dropping_rates=(0.0, 0.4), distorting_rates=(0.0,),
        training=TrainingConfig(batch_size=64, max_epochs=6, patience=10),
        cell_epochs=2, seed=0,
    )
    model = T2Vec(config)
    result = model.fit(trips[:50])
    return model, result


def test_fit_populates_components(fitted):
    model, result = fitted
    assert model.grid is not None
    assert model.vocab is not None
    assert model.model is not None
    assert result.epochs_run >= 1
    assert result.train_losses[-1] < result.train_losses[0]


def test_encode_shape_and_determinism(fitted, trips):
    model, _ = fitted
    v1 = model.encode(trips[0])
    v2 = model.encode(trips[0])
    assert v1.shape == (24,)
    np.testing.assert_array_equal(v1, v2)


def test_encode_many_matches_encode(fitted, trips):
    model, _ = fitted
    batchwise = model.encode_many(trips[:5])
    single = np.stack([model.encode(t) for t in trips[:5]])
    np.testing.assert_allclose(batchwise, single, atol=1e-6)


def test_cache_is_content_keyed(fitted, trips):
    """Two objects with identical points share one cached vector."""
    model, _ = fitted
    clone = trips[0].with_points(trips[0].points.copy())
    np.testing.assert_array_equal(model.encode(trips[0]), model.encode(clone))


def test_distance_consistency(fitted, trips):
    model, _ = fitted
    d = model.distance(trips[0], trips[1])
    many = model.distance_to_many(trips[0], trips[:4])
    assert d == pytest.approx(many[1], rel=1e-5)
    assert many[0] == pytest.approx(0.0, abs=1e-5)


def test_self_similarity_beats_random(fitted, trips):
    """The core claim: split halves are closer than unrelated trajectories."""
    model, _ = fitted
    same, different = [], []
    halves = [alternating_split(t) for t in trips[50:70]]
    a_vecs = model.encode_many([h[0] for h in halves])
    b_vecs = model.encode_many([h[1] for h in halves])
    for i in range(len(halves)):
        same.append(np.linalg.norm(a_vecs[i] - b_vecs[i]))
        different.append(np.linalg.norm(a_vecs[i] - b_vecs[(i + 5) % len(halves)]))
    assert np.mean(same) < np.mean(different)


def test_rank_of_counterpart(fitted, trips):
    model, _ = fitted
    ta, ta_prime = alternating_split(trips[55])
    db = [ta_prime] + [alternating_split(t)[1] for t in trips[60:75]]
    rank = model.rank_of(ta, db, 0)
    assert rank <= len(db) // 2  # trained model beats random placement


def test_distance_matrix_matches_distance_to_many(fitted, trips):
    """The blocked-GEMM matrix agrees with the per-query direct path."""
    model, _ = fitted
    queries, db = trips[:4], trips[10:30]
    matrix = model.distance_matrix(queries, db)
    assert matrix.shape == (4, 20)
    for i, q in enumerate(queries):
        np.testing.assert_allclose(matrix[i], model.distance_to_many(q, db),
                                   rtol=1e-4, atol=1e-5)


def test_knn_batch_matches_vector_truth(fitted, trips):
    model, _ = fitted
    queries, db = trips[:4], trips[10:40]
    rows = model.knn_batch(queries, db, k=5)
    assert rows.shape == (4, 5)
    vq = model.encode_many(queries)
    vc = model.encode_many(db)
    for i in range(len(queries)):
        truth = np.argsort(np.linalg.norm(vc - vq[i], axis=1),
                           kind="stable")[:5]
        np.testing.assert_array_equal(rows[i], truth)


def test_knn_is_thin_wrapper_over_batch(fitted, trips):
    model, _ = fitted
    db = trips[10:40]
    np.testing.assert_array_equal(model.knn(trips[0], db, k=7),
                                  model.knn_batch([trips[0]], db, k=7)[0])


def test_rank_of_many_matches_rank_of(fitted, trips):
    model, _ = fitted
    queries, db = trips[:5], trips[10:30]
    targets = [2, 0, 11, 7, 19]
    batched = model.rank_of_many(queries, db, targets)
    single = [model.rank_of(q, db, t) for q, t in zip(queries, targets)]
    np.testing.assert_array_equal(batched, single)


def test_knn_batch_records_index_metrics(trips, fitted):
    from repro.telemetry import MetricsRegistry, set_registry
    model, _ = fitted
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        model.knn_batch(trips[:3], trips[10:20], k=2)
    finally:
        set_registry(previous)
    assert registry.counter("index.exact.batch_queries").value == 3


def test_reconstruct_route_outputs_coordinates(fitted, trips):
    model, _ = fitted
    route = model.reconstruct_route(trips[0], max_len=30)
    assert route.ndim == 2 and route.shape[1] == 2


def test_save_load_round_trip(fitted, trips, tmp_path):
    model, _ = fitted
    path = tmp_path / "t2vec.npz"
    model.save(path)
    restored = T2Vec.load(path)
    np.testing.assert_allclose(restored.encode(trips[0]),
                               model.encode(trips[0]), atol=1e-6)
    assert restored.vocab.size == model.vocab.size
    assert restored.config.loss.kind == model.config.loss.kind


def test_unfitted_model_raises(trips):
    model = T2Vec()
    with pytest.raises(RuntimeError):
        model.encode(trips[0])
    with pytest.raises(RuntimeError):
        model.save("/tmp/nope.npz")


def test_fit_requires_enough_data():
    model = T2Vec()
    with pytest.raises(ValueError):
        model.fit([])


def test_validation_split_is_held_out(trips):
    config = T2VecConfig(
        min_hits=3, embedding_size=8, hidden_size=8, num_layers=1,
        dropping_rates=(0.0,), distorting_rates=(0.0,),
        training=TrainingConfig(batch_size=32, max_epochs=1),
        val_fraction=0.2, cell_epochs=1, seed=0,
    )
    model = T2Vec(config)
    result = model.fit(trips[:20])
    assert len(result.val_losses) == 1  # validation ran


def test_reconstruct_route_beam_search(fitted, trips):
    model, _ = fitted
    route = model.reconstruct_route(trips[0], max_len=25, beam_width=3)
    assert route.ndim == 2 and route.shape[1] == 2


# ----------------------------------------------------------------------
# Encoding cache: LRU bound + telemetry
# ----------------------------------------------------------------------
@contextlib.contextmanager
def capped_cache(model, capacity):
    """Temporarily shrink the LRU cap and attach a fresh registry."""
    from repro.telemetry import MetricsRegistry
    old_config, old_registry = model.config, model.registry
    model.config = dataclasses.replace(model.config,
                                       encode_cache_size=capacity)
    model.registry = MetricsRegistry()
    model._encodings.clear()
    try:
        yield model.registry
    finally:
        model.config, model.registry = old_config, old_registry
        model._encodings.clear()


def test_encode_cache_evicts_at_capacity(fitted, trips):
    model, _ = fitted
    with capped_cache(model, 4) as reg:
        model.encode_many(trips[:10])
        assert len(model._encodings) == 4
        assert model.cache_info == {"size": 4, "capacity": 4}
        assert reg.counters["encode.cache_misses"] == 10
        assert reg.counters["encode.cache_evictions"] == 6


def test_encode_results_correct_despite_eviction(fitted, trips):
    model, _ = fitted
    expected = model.encode_many(trips[:10])
    with capped_cache(model, 2):
        capped = model.encode_many(trips[:10])
    np.testing.assert_allclose(capped, expected, atol=1e-6)


def test_encode_cache_hits_and_lru_order(fitted, trips):
    model, _ = fitted
    with capped_cache(model, 3) as reg:
        model.encode_many(trips[:3])
        model.encode_many(trips[:2])          # hits, refreshes recency
        assert reg.counters["encode.cache_hits"] == 2
        model.encode_many([trips[3]])         # evicts the LRU entry
        assert trips[2].cache_key() not in model._encodings
        assert trips[1].cache_key() in model._encodings


def test_encode_duplicates_counted_once_per_call(fitted, trips):
    model, _ = fitted
    with capped_cache(model, 10) as reg:
        model.encode_many([trips[0], trips[0], trips[0]])
        assert reg.counters["encode.cache_misses"] == 1
        assert "encode.cache_hits" not in reg.counters


def test_encode_latency_histogram_recorded(fitted, trips):
    model, _ = fitted
    with capped_cache(model, 100) as reg:
        model.encode_many(trips[:6], batch_size=2)
        hist = reg.histogram("encode.latency_s")
        assert hist.count == 3                 # one observation per chunk
        assert hist.percentile(95) >= hist.percentile(50) > 0


def test_fit_emits_pipeline_spans(trips):
    from repro.telemetry import MetricsRegistry
    registry = MetricsRegistry()
    config = T2VecConfig(
        min_hits=3, embedding_size=8, hidden_size=8, num_layers=1,
        dropping_rates=(0.0,), distorting_rates=(0.0,),
        training=TrainingConfig(batch_size=32, max_epochs=1),
        val_fraction=0.0, cell_epochs=1, seed=0,
    )
    model = T2Vec(config, registry=registry)
    model.fit(trips[:12])
    names = {s.name for s in registry.spans}
    assert {"t2vec.fit", "t2vec.build_vocab", "t2vec.build_model",
            "t2vec.build_pairs", "fit", "fit.epoch"} <= names
    # Pipeline phases are children of the top-level fit span.
    phases = [s for s in registry.spans if s.name.startswith("t2vec.build")]
    assert all(s.parent == "t2vec.fit" for s in phases)
