"""Evaluation harness: protocols behave correctly on oracle measures."""

import numpy as np
import pytest

from repro.baselines import EDR
from repro.baselines.base import TrajectoryDistance
from repro.eval import (build_setup, cross_distance_deviation,
                        experiment_cross_similarity, experiment_db_size,
                        experiment_downsampling, experiment_knn_precision,
                        experiment_scalability, format_table, knn_precision,
                        mean_rank, time_knn_queries)


class StartPointDistance(TrajectoryDistance):
    """Oracle-ish measure: distance between start points (degradation-proof
    because the transforms preserve the first sample point)."""

    name = "start"

    def distance(self, a, b):
        return float(np.linalg.norm(a.points[0] - b.points[0]))


class ConstantDistance(TrajectoryDistance):
    """Pathological measure: everything is equally far."""

    name = "const"

    def distance(self, a, b):
        return 1.0


class TestBuildSetup:
    def test_counts_and_targets(self, trips, rng):
        setup = build_setup(trips[:10], trips[10:30], num_queries=5, rng=rng)
        assert len(setup.queries) == 5
        assert len(setup.database) == 5 + 20
        np.testing.assert_array_equal(setup.target_indices, np.arange(5))

    def test_counterpart_shares_route(self, trips, rng):
        setup = build_setup(trips[:3], [], num_queries=3, rng=rng)
        for q, t in zip(setup.queries, setup.target_indices):
            assert q.route_id == setup.database[t].route_id

    def test_degradation_applied(self, trips, rng):
        clean = build_setup(trips[:5], [], 5, rng=np.random.default_rng(0))
        dropped = build_setup(trips[:5], [], 5, dropping_rate=0.5,
                              rng=np.random.default_rng(0))
        assert sum(len(q) for q in dropped.queries) < sum(
            len(q) for q in clean.queries)

    def test_empty_pool_raises(self, rng):
        with pytest.raises(ValueError):
            build_setup([], [], 5, rng=rng)


class TestMeanRank:
    def test_oracle_measure_ranks_first(self, trips, rng):
        setup = build_setup(trips[:8], trips[20:60], num_queries=8, rng=rng)
        # Start points of counterparts are near-coincident (the split keeps
        # point 0 in Ta; Ta' starts one GPS-noise-jittered sample later),
        # so the oracle ranks far better than the random ~24.
        assert mean_rank(StartPointDistance(), setup) < 6.0

    def test_constant_measure_ranks_first_by_tie_rule(self, trips, rng):
        setup = build_setup(trips[:4], trips[20:40], num_queries=4, rng=rng)
        # Optimistic tie handling: all distances equal -> rank 1.
        assert mean_rank(ConstantDistance(), setup) == 1.0


def test_experiment_db_size_rows(trips):
    results = experiment_db_size([StartPointDistance()], trips[:5],
                                 trips[10:60], num_queries=5,
                                 db_sizes=[10, 30])
    assert list(results) == ["start"]
    assert len(results["start"]) == 2
    # Larger database can only push the counterpart down (or equal).
    assert results["start"][1] >= results["start"][0] - 1e-9


def test_experiment_downsampling_shape(trips):
    results = experiment_downsampling([StartPointDistance()], trips[:5],
                                      trips[10:30], 5, [0.0, 0.5])
    assert len(results["start"]) == 2


def test_experiment_distortion_runs(trips):
    from repro.eval import experiment_distortion
    results = experiment_distortion([StartPointDistance()], trips[:5],
                                    trips[10:30], 5, [0.0, 0.4])
    assert len(results["start"]) == 2


class TestCrossSimilarity:
    def test_invariant_measure_zero_deviation(self, trips, rng):
        pairs = [(trips[0], trips[1]), (trips[2], trips[3])]
        dev = cross_distance_deviation(StartPointDistance(), pairs, 0.5,
                                       "dropping", rng)
        assert dev == pytest.approx(0.0, abs=1e-12)

    def test_distortion_mode_moves_points(self, trips, rng):
        pairs = [(trips[0], trips[1])]
        dev = cross_distance_deviation(StartPointDistance(), pairs, 1.0,
                                       "distorting", rng)
        assert dev > 0.0

    def test_invalid_mode(self, trips, rng):
        with pytest.raises(ValueError):
            cross_distance_deviation(StartPointDistance(),
                                     [(trips[0], trips[1])], 0.5, "bogus", rng)

    def test_experiment_shape(self, trips):
        results = experiment_cross_similarity(
            [StartPointDistance()], trips[:20], num_pairs=8,
            rates=[0.2, 0.4], mode="dropping")
        assert len(results["start"]) == 2


class TestKnnPrecision:
    def test_perfect_at_zero_degradation(self, trips, rng):
        precision = knn_precision(EDR(100.0), trips[:4], trips[10:40], k=5,
                                  rng=rng)
        assert precision == 1.0

    def test_degradation_cannot_exceed_one(self, trips, rng):
        precision = knn_precision(EDR(100.0), trips[:4], trips[10:40], k=5,
                                  dropping_rate=0.5, rng=rng)
        assert 0.0 <= precision <= 1.0

    def test_experiment_structure(self, trips):
        results = experiment_knn_precision(
            [StartPointDistance()], trips[:3], trips[10:40],
            ks=[2, 3], rates=[0.0, 0.5], mode="dropping")
        assert set(results) == {2, 3}
        assert len(results[2]["start"]) == 2
        # Rate 0 must give perfect precision.
        assert results[2]["start"][0] == 1.0

    def test_invalid_mode(self, trips):
        with pytest.raises(ValueError):
            experiment_knn_precision([StartPointDistance()], trips[:2],
                                     trips[5:15], ks=[2], rates=[0.0],
                                     mode="bogus")


class TestBatchedDriverParity:
    """The batched rewiring must not change any reported number."""

    def test_mean_rank_matches_per_query_loop(self, trips, rng):
        setup = build_setup(trips[:8], trips[20:60], num_queries=8, rng=rng)
        for measure in (StartPointDistance(), EDR(100.0)):
            expected = float(np.mean([
                measure.rank_of(q, setup.database, int(t))
                for q, t in zip(setup.queries, setup.target_indices)]))
            assert mean_rank(measure, setup) == expected, measure.name

    def test_ground_truth_knn_matches_per_query_loop(self, trips):
        from repro.eval import ground_truth_knn
        measure = EDR(100.0)
        queries, db = trips[:5], trips[10:40]
        batched = ground_truth_knn(measure, queries, db, k=4)
        looped = [set(measure.knn(q, db, 4).tolist()) for q in queries]
        assert batched == looped

    def test_knn_precision_matches_per_query_loop(self, trips):
        from repro.data.transforms import degrade
        measure = EDR(100.0)
        queries, db = trips[:5], trips[10:40]
        k = 4
        new = knn_precision(measure, queries, db, k, dropping_rate=0.4,
                            rng=np.random.default_rng(11))
        # Replicate the pre-batching driver: same degradation stream,
        # then one measure.knn per degraded query.
        rng = np.random.default_rng(11)
        truth = [set(measure.knn(q, db, k).tolist()) for q in queries]
        degraded_queries = [degrade(q, 0.4, 0.0, rng) for q in queries]
        degraded_db = [degrade(t, 0.4, 0.0, rng) for t in db]
        old = float(np.mean([
            len(t & set(measure.knn(q, degraded_db, k).tolist())) / k
            for q, t in zip(degraded_queries, truth)]))
        assert new == old


class TestScalability:
    def test_timings_positive_and_shaped(self, trips):
        results = experiment_scalability([StartPointDistance()], trips[:3],
                                         trips[5:45], db_sizes=[10, 40], k=3)
        times = results["start"]
        assert len(times) == 2
        assert all(t > 0 for t in times)

    def test_time_knn_queries_warmup_called(self, trips):
        called = []
        time_knn_queries(StartPointDistance(), trips[:2], trips[5:15], k=2,
                         warmup=lambda: called.append(1))
        assert called == [1]


class TestReporting:
    def test_format_table_contains_everything(self):
        text = format_table("Table X", "db size", [20000, 40000],
                            {"t2vec": [2.3, 3.45], "EDR": [25.73, 50.7]})
        assert "Table X" in text
        assert "20k" in text and "40k" in text
        assert "t2vec" in text and "EDR" in text
        assert "3.45" in text

    def test_format_table_validates_row_length(self):
        with pytest.raises(ValueError):
            format_table("T", "c", [1, 2], {"x": [1.0]})

    def test_format_table_float_columns(self):
        text = format_table("T", "r1", [0.2, 0.4], {"m": [1.0, 2.0]})
        assert "0.2" in text and "0.4" in text
