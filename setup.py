"""Legacy setup shim so ``pip install -e .`` works without the wheel package."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "t2vec: deep representation learning for trajectory similarity "
        "computation (ICDE 2018 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21", "scipy>=1.7", "networkx>=2.6"],
)
