"""Wiring between the decoder, the vocabulary, and the three paper losses.

A :class:`LossSpec` selects L1 (plain NLL), L2 (exact spatial proximity,
Eq. 5) or L3 (K-nearest + NCE approximation, Eq. 7) and carries the
spatial hyper-parameters (K, θ, noise size).  :func:`sequence_loss` then
evaluates the chosen loss over a flattened batch of decoder states.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..nn import (Tensor, masked_sampled_loss, nll_loss,
                  sampled_weighted_loss, weighted_nll_loss)
from ..spatial.proximity import ProximityVocabulary
from .encoder_decoder import EncoderDecoder

LOSS_KINDS = ("L1", "L2", "L3")

# Below this vocabulary size the dense masked-softmax L3 path (two GEMMs)
# beats the gather/scatter path; above it the gathered variant wins, as in
# the paper's 20k-cell setting.
DENSE_L3_VOCAB_LIMIT = 4096


@dataclass(frozen=True)
class LossSpec:
    """Which decoder loss to optimize, and its spatial parameters.

    Paper defaults: ``k_nearest=20``, ``theta=100`` m, ``noise=500``;
    scaled defaults here match the smaller vocabulary (DESIGN.md §7).
    """

    kind: str = "L3"
    k_nearest: int = 10
    theta: float = 100.0
    noise: int = 64

    def __post_init__(self):
        if self.kind not in LOSS_KINDS:
            raise ValueError(f"loss kind must be one of {LOSS_KINDS}, got {self.kind}")
        if self.k_nearest < 1:
            raise ValueError("k_nearest must be >= 1")
        if self.noise < 1:
            raise ValueError("noise must be >= 1")

    def to_dict(self) -> dict:
        """JSON-safe dict; inverse of :meth:`from_dict`."""
        return {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "LossSpec":
        """Build from :meth:`to_dict` output; unknown keys are rejected."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown LossSpec keys: {sorted(unknown)}")
        return cls(**data)


def sequence_loss(
    model: EncoderDecoder,
    hidden: Tensor,
    targets: np.ndarray,
    mask: np.ndarray,
    vocab: ProximityVocabulary,
    spec: LossSpec,
    rng: Optional[np.random.Generator] = None,
) -> Tensor:
    """Mean per-token loss over flattened decoder states.

    Parameters
    ----------
    hidden:
        ``(T * batch, hidden)`` decoder states from
        :meth:`EncoderDecoder.decode`.
    targets, mask:
        Time-major ``(T, batch)`` target tokens and padding mask; they are
        flattened here to align with ``hidden``.
    """
    flat_targets = np.asarray(targets).reshape(-1)
    flat_mask = np.asarray(mask).reshape(-1)
    # Drop padded rows up front: every loss path then works on real
    # positions only, which shrinks the large gather/GEMM operations.
    real = np.flatnonzero(flat_mask)
    if len(real) == 0:
        raise ValueError("batch contains no unmasked target positions")
    if len(real) < len(flat_mask):
        hidden = hidden[real]
        flat_targets = flat_targets[real]

    if spec.kind == "L1":
        return nll_loss(model.logits(hidden), flat_targets)
    if spec.kind == "L2":
        weights = vocab.full_weights(flat_targets, spec.theta)
        return weighted_nll_loss(model.logits(hidden), weights)

    # L3: K nearest cells of each target carry proximity weights; uniform
    # noise cells (weight zero) extend the candidate set for the NCE-style
    # partition estimate.
    rng = rng or np.random.default_rng()
    cand, knn_weights = vocab.proximity_candidates(flat_targets, spec.k_nearest,
                                                   spec.theta)
    if vocab.size <= DENSE_L3_VOCAB_LIMIT:
        # Small vocabulary: dense masked-softmax fast path (see nn.loss).
        # Noise/candidate collisions are harmless here (the bias cell is
        # just zeroed twice), so noise needs no exclusion pass.
        noise = vocab.sample_noise(rng, len(flat_targets), spec.noise)
        rows = np.arange(len(flat_targets))[:, None]
        weights = np.zeros((len(flat_targets), vocab.size), dtype=np.float32)
        weights[rows, cand] = knn_weights
        bias = np.full((len(flat_targets), vocab.size), -1e9, dtype=np.float32)
        bias[rows, cand] = 0.0
        bias[rows, noise] = 0.0
        return masked_sampled_loss(model.logits(hidden), weights, bias)
    noise = vocab.sample_noise(rng, len(flat_targets), spec.noise, exclude=cand)
    candidates = np.concatenate([cand, noise], axis=1)
    weights = np.concatenate([knn_weights,
                              np.zeros_like(noise, dtype=float)], axis=1)
    return sampled_weighted_loss(hidden, model.proj_weight, candidates, weights,
                                 proj_bias=model.proj_bias)
