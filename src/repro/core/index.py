"""Vector indexes for k-NN search over trajectory representations.

* :class:`ExactIndex` — brute-force Euclidean scan; O(N · |v|) per query,
  which is already the paper's headline complexity (Section IV-D) and at
  least an order of magnitude faster than the DP baselines.
* :class:`LSHIndex` — random-hyperplane locality-sensitive hashing with
  multiple tables; the paper's future-work item §VI.3.  Candidates from
  matching buckets are re-ranked exactly, so results degrade gracefully
  (recall < 1, never wrong distances).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..telemetry import MetricsRegistry, get_registry


class ExactIndex:
    """Brute-force Euclidean k-NN over a matrix of vectors."""

    def __init__(self, vectors: np.ndarray,
                 registry: Optional[MetricsRegistry] = None):
        vectors = np.asarray(vectors, dtype=float)
        if vectors.ndim != 2:
            raise ValueError(f"vectors must be (n, d), got {vectors.shape}")
        self.vectors = vectors
        self.registry = registry

    def _registry(self) -> MetricsRegistry:
        return self.registry or get_registry()

    def __len__(self) -> int:
        return len(self.vectors)

    def distances(self, query: np.ndarray) -> np.ndarray:
        query = np.asarray(query, dtype=float).reshape(-1)
        return np.sqrt(((self.vectors - query[None, :]) ** 2).sum(axis=1))

    def knn(self, query: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(indices, distances)`` of the k nearest vectors."""
        reg = self._registry()
        reg.counter("index.exact.queries").inc()
        with reg.span("index.exact.knn"):
            dists = self.distances(query)
            k = min(k, len(dists))
            idx = np.argpartition(dists, k - 1)[:k]
            order = np.argsort(dists[idx], kind="stable")
            return idx[order], dists[idx[order]]


class LSHIndex:
    """Random-hyperplane LSH with exact re-ranking of candidates.

    Each of ``num_tables`` tables hashes a vector to the sign pattern of
    ``num_bits`` random projections; a query scans the union of its
    buckets across tables.  ``knn`` falls back to a brute-force scan when
    the buckets yield fewer than ``k`` candidates, so it never returns
    fewer results than requested.
    """

    def __init__(self, vectors: np.ndarray, num_tables: int = 8,
                 num_bits: int = 12, seed: int = 0,
                 registry: Optional[MetricsRegistry] = None):
        self.registry = registry
        vectors = np.asarray(vectors, dtype=float)
        if vectors.ndim != 2:
            raise ValueError(f"vectors must be (n, d), got {vectors.shape}")
        if num_tables < 1 or num_bits < 1:
            raise ValueError("num_tables and num_bits must be >= 1")
        if num_bits > 62:
            raise ValueError("num_bits must fit in an int64 signature")
        self.vectors = vectors
        self.num_tables = num_tables
        self.num_bits = num_bits
        rng = np.random.default_rng(seed)
        dim = vectors.shape[1]
        self._planes = rng.standard_normal((num_tables, num_bits, dim))
        self._tables: List[dict] = []
        for t in range(num_tables):
            signatures = self._signatures(vectors, t)
            table: dict = {}
            for i, sig in enumerate(signatures):
                table.setdefault(int(sig), []).append(i)
            self._tables.append(table)

    def _signatures(self, vectors: np.ndarray, table: int) -> np.ndarray:
        bits = (vectors @ self._planes[table].T) > 0          # (n, bits)
        powers = (1 << np.arange(self.num_bits)).astype(np.int64)
        return bits @ powers

    def candidates(self, query: np.ndarray) -> np.ndarray:
        """Union of the query's bucket members across all tables."""
        query = np.asarray(query, dtype=float).reshape(1, -1)
        found: set = set()
        for t in range(self.num_tables):
            sig = int(self._signatures(query, t)[0])
            found.update(self._tables[t].get(sig, ()))
        return np.fromiter(found, dtype=np.int64, count=len(found))

    def knn(self, query: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Approximate k-NN: exact re-ranking of LSH candidates."""
        reg = self.registry or get_registry()
        reg.counter("index.lsh.queries").inc()
        with reg.span("index.lsh.knn"):
            query = np.asarray(query, dtype=float).reshape(-1)
            cand = self.candidates(query)
            if len(cand) < k:  # not enough candidates: degrade to exact scan
                cand = np.arange(len(self.vectors))
                reg.counter("index.lsh.fallback_scans").inc()
            reg.histogram("index.lsh.candidates").observe(len(cand))
            dists = np.sqrt(((self.vectors[cand] - query[None, :]) ** 2).sum(axis=1))
            k = min(k, len(cand))
            idx = np.argpartition(dists, k - 1)[:k]
            order = np.argsort(dists[idx], kind="stable")
            return cand[idx[order]], dists[idx[order]]
