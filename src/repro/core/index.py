"""Vector indexes for k-NN search over trajectory representations.

* :class:`ExactIndex` — brute-force Euclidean search; O(N · |v|) per query,
  which is already the paper's headline complexity (Section IV-D) and at
  least an order of magnitude faster than the DP baselines.
* :class:`LSHIndex` — random-hyperplane locality-sensitive hashing with
  multiple tables; the paper's future-work item §VI.3.  Candidates from
  matching buckets are re-ranked exactly, so results degrade gracefully
  (recall < 1, never wrong distances).

Both indexes serve queries in *blocks*: ``knn_batch(queries, k)`` takes a
``(Q, d)`` matrix and computes all distances through the GEMM identity
``||x - q||² = ||x||² + ||q||² − 2·x·q``, tiled over database rows with a
configurable ``block_rows`` budget so the working set stays bounded at
million-vector scale.  A running per-query top-k is merged across tiles
(argpartition per tile, then concatenate + argpartition — no heaps).  The
distances of the final k neighbours are recomputed directly, so returned
values are exact even though the GEMM accumulates in the index dtype.
Single-query ``knn`` is a thin wrapper over the batched path.

Dtype: float input keeps its dtype end-to-end (float32 embeddings stay
float32 — half the memory and bandwidth); non-float input is cast to the
library default (:func:`repro.nn.get_default_dtype`).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..nn.tensor import get_default_dtype
from ..telemetry import MetricsRegistry, get_registry

#: Default database-rows-per-tile budget for the blocked kernels.  At
#: float32 and |v| = 256 a tile is block_rows × 1 KiB, so 32k rows keeps
#: the per-tile working set around cache-friendly tens of MiB.
DEFAULT_BLOCK_ROWS = 32768


def _as_float_matrix(vectors: np.ndarray) -> np.ndarray:
    """Validate an ``(n, d)`` matrix, preserving float dtypes."""
    vectors = np.asarray(vectors)
    if vectors.ndim != 2:
        raise ValueError(f"vectors must be (n, d), got {vectors.shape}")
    if not np.issubdtype(vectors.dtype, np.floating):
        vectors = vectors.astype(get_default_dtype())
    return np.ascontiguousarray(vectors)


def _as_query_block(queries: np.ndarray, dim: int,
                    dtype: np.dtype) -> np.ndarray:
    """Coerce one query or a block of queries to ``(Q, d)`` in ``dtype``."""
    queries = np.asarray(queries, dtype=dtype)
    if queries.ndim == 1:
        queries = queries.reshape(1, -1)
    if queries.ndim != 2 or queries.shape[1] != dim:
        raise ValueError(
            f"queries must be (Q, {dim}) or ({dim},), got {queries.shape}")
    return np.ascontiguousarray(queries)


def blocked_topk(queries: np.ndarray, vectors: np.ndarray,
                 sqnorms: Optional[np.ndarray] = None, k: int = 1,
                 block_rows: int = DEFAULT_BLOCK_ROWS,
                 ) -> Tuple[np.ndarray, np.ndarray]:
    """k nearest rows of ``vectors`` for every row of ``queries``.

    Returns ``(indices, distances)``, each ``(Q, min(k, N))``, rows ordered
    by ``(distance, index)``.  Squared distances are accumulated tile by
    tile via the GEMM identity in the input dtype (float32 stays float32);
    the surviving k per query are then recomputed directly, so the
    returned distances carry no cancellation error — a query that *is* a
    database row reports distance exactly 0.
    """
    big_n = len(vectors)
    k = min(k, big_n)
    num_q = len(queries)
    if k < 1 or num_q == 0:
        empty_i = np.empty((num_q, max(k, 0)), dtype=np.int64)
        return empty_i, np.empty_like(empty_i, dtype=vectors.dtype)
    if sqnorms is None:
        sqnorms = np.einsum("nd,nd->n", vectors, vectors)
    block_rows = max(int(block_rows), 1)
    q_sq = np.einsum("qd,qd->q", queries, queries)[:, None]
    rows = np.arange(num_q)[:, None]
    best_d: Optional[np.ndarray] = None
    best_i: Optional[np.ndarray] = None
    for start in range(0, big_n, block_rows):
        stop = min(start + block_rows, big_n)
        sq = queries @ vectors[start:stop].T
        sq *= -2.0
        sq += sqnorms[start:stop][None, :]
        sq += q_sq
        width = stop - start
        if width > k:                       # shrink the tile to its top-k
            part = np.argpartition(sq, k - 1, axis=1)[:, :k]
            tile_d, tile_i = sq[rows, part], part + start
        else:
            tile_d = sq
            tile_i = np.broadcast_to(np.arange(start, stop), (num_q, width))
        if best_d is None:
            best_d, best_i = tile_d, tile_i
            continue
        cat_d = np.concatenate([best_d, tile_d], axis=1)
        cat_i = np.concatenate([best_i, tile_i], axis=1)
        if cat_d.shape[1] > k:
            sel = np.argpartition(cat_d, k - 1, axis=1)[:, :k]
            cat_d, cat_i = cat_d[rows, sel], cat_i[rows, sel]
        best_d, best_i = cat_d, cat_i
    # Exact distances for the survivors, then deterministic ordering.
    diff = queries[:, None, :] - vectors[best_i]
    dist = np.sqrt(np.einsum("qkd,qkd->qk", diff, diff))
    order = np.lexsort((best_i, dist))      # primary: distance, tie: index
    rows = np.arange(num_q)[:, None]
    return np.ascontiguousarray(best_i[rows, order]), \
        np.ascontiguousarray(dist[rows, order])


def pairwise_distances(queries: np.ndarray, vectors: np.ndarray,
                       block_rows: int = DEFAULT_BLOCK_ROWS) -> np.ndarray:
    """Full ``(Q, N)`` Euclidean distance matrix via the blocked GEMM path.

    One self-consistent formula for every entry, so downstream strict
    comparisons (rank counting) never mix rounding regimes.
    """
    queries = np.atleast_2d(np.asarray(queries, dtype=vectors.dtype))
    sqnorms = np.einsum("nd,nd->n", vectors, vectors)
    q_sq = np.einsum("qd,qd->q", queries, queries)[:, None]
    out = np.empty((len(queries), len(vectors)), dtype=vectors.dtype)
    block_rows = max(int(block_rows), 1)
    for start in range(0, len(vectors), block_rows):
        stop = min(start + block_rows, len(vectors))
        sq = queries @ vectors[start:stop].T
        sq *= -2.0
        sq += sqnorms[start:stop][None, :]
        sq += q_sq
        np.maximum(sq, 0.0, out=sq)
        np.sqrt(sq, out=sq)
        out[:, start:stop] = sq
    return out


class ExactIndex:
    """Brute-force Euclidean k-NN over a matrix of vectors."""

    def __init__(self, vectors: np.ndarray,
                 registry: Optional[MetricsRegistry] = None,
                 block_rows: int = DEFAULT_BLOCK_ROWS):
        self.vectors = _as_float_matrix(vectors)
        self.registry = registry
        self.block_rows = int(block_rows)
        self._sqnorms = np.einsum("nd,nd->n", self.vectors, self.vectors)

    def _registry(self) -> MetricsRegistry:
        return self.registry or get_registry()

    def __len__(self) -> int:
        return len(self.vectors)

    def distances(self, query: np.ndarray) -> np.ndarray:
        query = np.asarray(query, dtype=self.vectors.dtype).reshape(-1)
        return np.sqrt(((self.vectors - query[None, :]) ** 2).sum(axis=1))

    def knn(self, query: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(indices, distances)`` of the k nearest vectors.

        Thin wrapper over :meth:`knn_batch` for a single query.
        """
        reg = self._registry()
        reg.counter("index.exact.queries").inc()
        with reg.span("index.exact.knn"):
            queries = _as_query_block(query, self.vectors.shape[1],
                                      self.vectors.dtype)
            idx, dists = blocked_topk(queries, self.vectors, self._sqnorms,
                                      k, self.block_rows)
            return idx[0], dists[0]

    def knn_batch(self, queries: np.ndarray, k: int,
                  block_rows: Optional[int] = None,
                  ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched k-NN: ``(Q, d)`` queries → ``(Q, k)`` indices + distances.

        Distances for the whole block are computed via the
        ``||x||² + ||q||² − 2·X@Qᵀ`` GEMM identity, tiled over database
        rows (``block_rows``, default from the constructor) with a running
        per-query top-k merge across tiles.  Rows are ordered by
        ``(distance, index)``.
        """
        reg = self._registry()
        queries = _as_query_block(queries, self.vectors.shape[1],
                                  self.vectors.dtype)
        reg.counter("index.exact.batch_queries").inc(len(queries))
        with reg.span("index.exact.knn_batch", queries=len(queries)):
            return blocked_topk(queries, self.vectors, self._sqnorms, k,
                                block_rows or self.block_rows)

    def knn_scan(self, query: np.ndarray, k: int,
                 ) -> Tuple[np.ndarray, np.ndarray]:
        """Reference single-query scan (the pre-batching serving path).

        Kept as the baseline for ``benchmarks/bench_search.py`` and as a
        test oracle; not instrumented.
        """
        dists = self.distances(query)
        k = min(k, len(dists))
        idx = np.argpartition(dists, k - 1)[:k]
        order = np.argsort(dists[idx], kind="stable")
        return idx[order], dists[idx[order]]


class LSHIndex:
    """Random-hyperplane LSH with exact re-ranking of candidates.

    Each of ``num_tables`` tables hashes a vector to the sign pattern of
    ``num_bits`` random projections.  Buckets are stored CSR-style per
    table — a signature-sorted permutation of the row indices plus a
    sorted array of unique signatures with offsets — so a lookup is a
    ``searchsorted`` and a slice instead of a Python dict probe, and the
    members of any bucket come back in ascending index order.

    A query scans the union of its buckets across tables.  ``knn`` falls
    back to a brute-force scan when the buckets yield fewer than ``k``
    candidates, so it never returns fewer results than requested.
    """

    def __init__(self, vectors: np.ndarray, num_tables: int = 8,
                 num_bits: int = 12, seed: int = 0,
                 registry: Optional[MetricsRegistry] = None,
                 block_rows: int = DEFAULT_BLOCK_ROWS):
        self.registry = registry
        vectors = _as_float_matrix(vectors)
        if num_tables < 1 or num_bits < 1:
            raise ValueError("num_tables and num_bits must be >= 1")
        if num_bits > 62:
            raise ValueError("num_bits must fit in an int64 signature")
        self.vectors = vectors
        self.num_tables = num_tables
        self.num_bits = num_bits
        self.block_rows = int(block_rows)
        rng = np.random.default_rng(seed)
        dim = vectors.shape[1]
        self._planes = rng.standard_normal(
            (num_tables, num_bits, dim)).astype(vectors.dtype)
        self._sqnorms = np.einsum("nd,nd->n", vectors, vectors)
        # CSR bucket storage, one triple per table.
        signatures = self._signatures_all(vectors)           # (tables, n)
        self._order: List[np.ndarray] = []   # row ids, signature-sorted
        self._keys: List[np.ndarray] = []    # unique signatures, sorted
        self._starts: List[np.ndarray] = []  # offsets, len(keys) + 1
        for t in range(num_tables):
            order = np.argsort(signatures[t], kind="stable")
            keys, starts = np.unique(signatures[t][order], return_index=True)
            self._order.append(order.astype(np.int64))
            self._keys.append(keys)
            self._starts.append(np.append(starts, len(order)).astype(np.int64))

    def _registry(self) -> MetricsRegistry:
        return self.registry or get_registry()

    def __len__(self) -> int:
        return len(self.vectors)

    def _signatures_all(self, vectors: np.ndarray) -> np.ndarray:
        """Signatures of ``(n, d)`` vectors for *all* tables: ``(tables, n)``.

        One einsum per call instead of one GEMV per (query, table).
        """
        proj = np.einsum("tbd,nd->tnb", self._planes, vectors)
        powers = (1 << np.arange(self.num_bits)).astype(np.int64)
        return (proj > 0) @ powers

    def _signatures(self, vectors: np.ndarray, table: int) -> np.ndarray:
        bits = (vectors @ self._planes[table].T) > 0          # (n, bits)
        powers = (1 << np.arange(self.num_bits)).astype(np.int64)
        return bits @ powers

    def bucket_members(self, table: int, signature: int) -> np.ndarray:
        """Row indices hashed to ``signature`` in ``table``, ascending."""
        keys = self._keys[table]
        pos = np.searchsorted(keys, signature)
        if pos == len(keys) or keys[pos] != signature:
            return np.empty(0, dtype=np.int64)
        start, stop = self._starts[table][pos], self._starts[table][pos + 1]
        return self._order[table][start:stop]

    def _candidates_for(self, signatures: np.ndarray) -> np.ndarray:
        """Sorted union of bucket members for one per-table signature row."""
        parts = [self.bucket_members(t, int(signatures[t]))
                 for t in range(self.num_tables)]
        parts = [p for p in parts if len(p)]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(parts))

    def candidates(self, query: np.ndarray) -> np.ndarray:
        """Union of the query's bucket members across all tables, sorted.

        Sorted ascending so candidate order — and any tie-broken result
        derived from it — is deterministic across runs.
        """
        query = _as_query_block(query, self.vectors.shape[1],
                                self.vectors.dtype)
        return self._candidates_for(self._signatures_all(query)[:, 0])

    def knn(self, query: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Approximate k-NN: exact re-ranking of LSH candidates."""
        reg = self._registry()
        reg.counter("index.lsh.queries").inc()
        with reg.span("index.lsh.knn"):
            queries = _as_query_block(query, self.vectors.shape[1],
                                      self.vectors.dtype)
            idx, dists = self._knn_block(queries, k, reg)
            return idx[0], dists[0]

    def knn_batch(self, queries: np.ndarray, k: int,
                  ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched approximate k-NN over a ``(Q, d)`` query block.

        Queries are grouped by their joint bucket signature — queries
        hashing identically in every table share one candidate set — and
        each group is re-ranked exactly in one blocked-GEMM top-k.
        """
        reg = self._registry()
        queries = _as_query_block(queries, self.vectors.shape[1],
                                  self.vectors.dtype)
        reg.counter("index.lsh.batch_queries").inc(len(queries))
        with reg.span("index.lsh.knn_batch", queries=len(queries)):
            return self._knn_block(queries, k, reg)

    def _knn_block(self, queries: np.ndarray, k: int,
                   reg: MetricsRegistry) -> Tuple[np.ndarray, np.ndarray]:
        num_q = len(queries)
        k_out = min(k, len(self.vectors))
        out_i = np.empty((num_q, k_out), dtype=np.int64)
        out_d = np.empty((num_q, k_out), dtype=self.vectors.dtype)
        if num_q == 0 or k_out == 0:
            return out_i, out_d
        signatures = self._signatures_all(queries).T          # (Q, tables)
        groups, inverse = np.unique(signatures, axis=0, return_inverse=True)
        inverse = inverse.reshape(-1)
        reg.histogram("index.lsh.query_groups").observe(len(groups))
        for g in range(len(groups)):
            members = np.flatnonzero(inverse == g)
            cand = self._candidates_for(groups[g])
            if len(cand) < k:   # not enough candidates: degrade to exact scan
                cand = np.arange(len(self.vectors))
                reg.counter("index.lsh.fallback_scans").inc(len(members))
            for _ in members:
                reg.histogram("index.lsh.candidates").observe(len(cand))
            local_i, dists = blocked_topk(
                queries[members], self.vectors[cand],
                self._sqnorms[cand], k_out, self.block_rows)
            out_i[members] = cand[local_i]
            out_d[members] = dists
        return out_i, out_d
