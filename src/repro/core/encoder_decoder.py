"""The t2vec sequence encoder-decoder (paper Sections III-B and IV).

The encoder GRU reads the degraded trajectory ``Ta`` and its final hidden
state (top layer) is the trajectory representation ``v``; the decoder
GRU, initialized with the encoder's final state, reconstructs the
original trajectory ``Tb`` token by token (teacher forcing at training
time).  The output projection row ``W_u`` scores cell ``u`` given the
decoder state ``h_t`` — exactly the ``W_u^T h_t`` of the paper's Eq. 5/7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..nn import GRU, Embedding, Module, Parameter, Tensor, init, stack
from ..nn.functional import log_softmax
from ..nn.lstm import LSTM
from ..spatial.vocab import BOS, EOS

RNN_TYPES = ("gru", "lstm")


@dataclass(frozen=True)
class ModelConfig:
    """Architecture hyper-parameters (paper defaults in parentheses)."""

    vocab_size: int
    embedding_size: int = 64    # cell representation dimension d (256)
    hidden_size: int = 64       # RNN hidden size = |v| (256)
    num_layers: int = 2         # RNN layers (3)
    dropout: float = 0.1
    rnn_type: str = "gru"       # the paper's choice; "lstm" for the ablation
    seed: int = 0

    def __post_init__(self):
        if self.rnn_type not in RNN_TYPES:
            raise ValueError(f"rnn_type must be one of {RNN_TYPES}, "
                             f"got {self.rnn_type}")


class EncoderDecoder(Module):
    """Recurrent encoder-decoder with a shared cell embedding table.

    Whole-sequence encoding/decoding runs through the sequence-fused RNN
    kernels (one embedding gather and one tape node per layer per batch;
    see :func:`~repro.nn.rnn.gru_layer_forward`).  Setting ``fused=False``
    falls back to the step-wise reference cells — used by the parity tests
    and the throughput benchmark; single-step generation (greedy/beam)
    always uses the step-wise cells.
    """

    def __init__(self, config: ModelConfig):
        super().__init__()
        rng = np.random.default_rng(config.seed)
        self.config = config
        self.fused = True
        self.embedding = Embedding(config.vocab_size, config.embedding_size, rng=rng)
        rnn_cls = GRU if config.rnn_type == "gru" else LSTM
        self.encoder = rnn_cls(config.embedding_size, config.hidden_size,
                               num_layers=config.num_layers,
                               dropout=config.dropout, rng=rng)
        self.decoder = rnn_cls(config.embedding_size, config.hidden_size,
                               num_layers=config.num_layers,
                               dropout=config.dropout, rng=rng)
        # Output projection: rows are per-token vectors W_u (paper notation).
        self.proj_weight = Parameter(
            init.xavier_uniform(rng, (config.vocab_size, config.hidden_size)))
        self.proj_bias = Parameter(init.zeros((config.vocab_size,)))

    # ------------------------------------------------------------------
    # Encoder
    # ------------------------------------------------------------------
    def encode(self, src: np.ndarray, src_mask: np.ndarray
               ) -> Tuple[Tensor, List[Tensor]]:
        """Encode a time-major token batch.

        Returns ``(v, state)``: ``v`` is the ``(batch, hidden)`` trajectory
        representation (top-layer final hidden state) and ``state`` is the
        per-layer final state used to initialize the decoder.
        """
        if self.fused:
            # One (T, B) embedding gather + one fused kernel per layer.
            _, state = self.encoder.forward_sequence(self.embedding(src),
                                                     mask=src_mask)
        else:
            steps = [self.embedding(src[t]) for t in range(src.shape[0])]
            _, state = self.encoder(steps, mask=src_mask)
        return self._top_hidden(state), state

    def _top_hidden(self, state) -> Tensor:
        """Top-layer hidden vector regardless of the RNN family."""
        top = state[-1]
        return top[0] if isinstance(top, tuple) else top

    def represent(self, src: np.ndarray, src_mask: np.ndarray) -> np.ndarray:
        """Inference helper: representation vectors as a plain array."""
        was_training = self.training
        self.eval()
        try:
            v, _ = self.encode(src, src_mask)
        finally:
            self.train(was_training)
        return v.numpy().copy()

    # ------------------------------------------------------------------
    # Decoder
    # ------------------------------------------------------------------
    def decode(self, tgt_in: np.ndarray, state: List[Tensor],
               tgt_mask: Optional[np.ndarray] = None) -> Tensor:
        """Teacher-forced decoding.

        Returns all decoder hidden states stacked into one
        ``(T * batch, hidden)`` tensor (time-major flattening), ready for
        a single loss evaluation over every step.
        """
        t_steps, batch = tgt_in.shape
        if self.fused:
            out_seq, _ = self.decoder.forward_sequence(self.embedding(tgt_in),
                                                       h0=state, mask=tgt_mask)
            # The fused output is already time-major (T, B, H); flattening
            # is a reshape view, no intermediate stack node.
            return out_seq.reshape(t_steps * batch, self.config.hidden_size)
        steps = [self.embedding(tgt_in[t]) for t in range(t_steps)]
        outputs, _ = self.decoder(steps, h0=state, mask=tgt_mask)
        return stack(outputs, axis=0).reshape(t_steps * batch,
                                              self.config.hidden_size)

    def logits(self, hidden: Tensor) -> Tensor:
        """Full-vocabulary scores ``hidden @ W^T + b`` (for L1/L2)."""
        return hidden @ self.proj_weight.T + self.proj_bias

    # ------------------------------------------------------------------
    # Beam-search generation (higher-quality route recovery)
    # ------------------------------------------------------------------
    def beam_decode(self, src: np.ndarray, src_mask: np.ndarray,
                    beam_width: int = 4, max_len: int = 100) -> List[np.ndarray]:
        """Reconstruct token sequences with beam search.

        Greedy decoding commits to the locally best cell at every step;
        with spatially smoothed training targets (L2/L3) several adjacent
        cells often score almost equally and greedy paths can wander.
        Beam search keeps the ``beam_width`` best partial routes and
        returns the highest-scoring complete one (log-probability,
        length-normalized), one array of tokens per batch column.
        """
        if beam_width < 1:
            raise ValueError("beam_width must be >= 1")
        was_training = self.training
        self.eval()
        try:
            _, state = self.encode(src, src_mask)
            results = []
            for b in range(src.shape[1]):
                column_state = self._select_column(state, b)
                results.append(self._beam_one(column_state, beam_width, max_len))
            return results
        finally:
            self.train(was_training)

    def _select_column(self, state, index: int):
        """Slice one batch column out of an encoder state (GRU or LSTM)."""
        def pick(tensor: Tensor) -> Tensor:
            return Tensor(tensor.numpy()[index:index + 1])

        selected = []
        for layer in state:
            if isinstance(layer, tuple):
                selected.append(tuple(pick(part) for part in layer))
            else:
                selected.append(pick(layer))
        return selected

    def _beam_one(self, state, beam_width: int, max_len: int) -> np.ndarray:
        # Each beam: (score_sum, tokens, state); finished: (normalized, tokens)
        beams = [(0.0, [], state)]
        finished = []
        for _ in range(max_len):
            expansions = []
            for score, tokens, beam_state in beams:
                previous = tokens[-1] if tokens else BOS
                step = self.embedding(np.array([previous]))
                _, new_state = self.decoder([step], h0=beam_state)
                log_probs = log_softmax(
                    self.logits(self._top_hidden(new_state)), axis=1).numpy()[0]
                log_probs[BOS] = -np.inf
                top = np.argpartition(-log_probs, beam_width)[:beam_width + 1]
                for token in top:
                    expansions.append((score + float(log_probs[token]),
                                       tokens + [int(token)], new_state))
            expansions.sort(key=lambda item: -item[0])
            beams = []
            for score, tokens, beam_state in expansions:
                if tokens[-1] == EOS:
                    finished.append((score / len(tokens), tokens[:-1]))
                elif len(beams) < beam_width:
                    beams.append((score, tokens, beam_state))
                if len(beams) >= beam_width:
                    break
            if not beams:
                break
        if not finished:  # no beam emitted EOS within max_len
            finished = [(score / max(len(tokens), 1), tokens)
                        for score, tokens, _ in beams]
        best = max(finished, key=lambda item: item[0])
        return np.array(best[1], dtype=np.int64)

    # ------------------------------------------------------------------
    # Greedy generation (route recovery; used in examples and tests)
    # ------------------------------------------------------------------
    def greedy_decode(self, src: np.ndarray, src_mask: np.ndarray,
                      max_len: int = 100) -> List[np.ndarray]:
        """Reconstruct the most likely token sequence for each source.

        Returns one array of tokens per batch element (EOS excluded).
        This realizes the paper's motivation: the decoder recovers the
        (dense) route from a degraded trajectory.
        """
        was_training = self.training
        self.eval()
        try:
            _, state = self.encode(src, src_mask)
            batch = src.shape[1]
            tokens = np.full(batch, BOS, dtype=np.int64)
            finished = np.zeros(batch, dtype=bool)
            emitted: List[np.ndarray] = []   # (batch,) tokens per step
            kept: List[np.ndarray] = []      # (batch,) bools: token counts
            for _ in range(max_len):
                step = self.embedding(tokens)
                _, state = self.decoder([step], h0=state)
                scores = self.logits(self._top_hidden(state)).numpy()
                scores[:, BOS] = -np.inf  # never re-emit the start token
                tokens = scores.argmax(axis=1)
                is_eos = tokens == EOS
                kept.append(~finished & ~is_eos)
                emitted.append(tokens)
                finished |= is_eos
                if finished.all():
                    break
            # One boolean-mask slice per batch element at the end replaces
            # the per-step per-element Python loop.
            emitted_arr = np.stack(emitted)
            kept_arr = np.stack(kept)
            return [emitted_arr[kept_arr[:, b], b].astype(np.int64)
                    for b in range(batch)]
        finally:
            self.train(was_training)
