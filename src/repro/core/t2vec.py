"""The t2vec public API.

:class:`T2Vec` bundles the full pipeline of the paper behind a
scikit-learn-ish interface:

>>> model = T2Vec()
>>> model.fit(training_trajectories)
>>> v = model.encode(trajectory)                 # (hidden,) vector
>>> d = model.distance(traj_a, traj_b)           # Euclidean in vector space
>>> idx = model.knn(query, database, k=10)       # k nearest trajectories

``fit`` performs, in order: grid construction, hot-cell vocabulary
extraction (δ threshold), cell-embedding pretraining (Algorithm 1),
training-pair synthesis (16 degraded variants per trajectory), and
seq2seq training with the selected loss (L1 / L2 / L3).

:class:`T2Vec` implements :class:`~repro.baselines.base.TrajectoryDistance`,
so the evaluation harness treats it exactly like the baselines.

Observability: ``fit`` accepts trainer ``callbacks``; encoding and the
pipeline phases record latency histograms, cache hit counters, and spans
into a :class:`~repro.telemetry.MetricsRegistry` (the process default
unless one is passed to the constructor).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from ..baselines.base import TrajectoryDistance
from ..data.dataset import pad_batch, tokenize
from ..data.pairs import DEFAULT_DISTORTING_RATES, DEFAULT_DROPPING_RATES
from ..data.pipeline import TrainingDataPipeline
from ..data.trajectory import Trajectory
from ..nn.serialization import load_checkpoint, save_checkpoint
from ..spatial.grid import Grid
from ..spatial.vocab import CellVocabulary
from ..telemetry import Callback, MetricsRegistry, get_registry
from .cell_embedding import CellEmbeddingConfig, CellEmbeddingTrainer
from .encoder_decoder import EncoderDecoder, ModelConfig
from .index import ExactIndex, pairwise_distances
from .losses import LossSpec
from .trainer import Trainer, TrainingConfig, TrainingResult


@dataclass(frozen=True)
class T2VecConfig:
    """End-to-end configuration; defaults follow DESIGN.md §7."""

    cell_size: float = 100.0            # meters (paper: 100)
    min_hits: int = 5                   # hot-cell threshold δ (paper: 50)
    embedding_size: int = 64            # cell vector dim d (paper: 256)
    hidden_size: int = 64               # |v| (paper: 256)
    num_layers: int = 2                 # GRU layers (paper: 3)
    dropout: float = 0.1
    rnn_type: str = "gru"               # paper's choice; "lstm" for ablation
    loss: LossSpec = LossSpec()
    pretrain_cells: bool = True         # run Algorithm 1 (CL)
    cell_epochs: int = 3
    dropping_rates: tuple = DEFAULT_DROPPING_RATES
    distorting_rates: tuple = DEFAULT_DISTORTING_RATES
    training: TrainingConfig = TrainingConfig()
    val_fraction: float = 0.1
    encode_cache_size: int = 100_000    # LRU cap on cached encodings
    seed: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict covering *every* field, nested configs included.

        ``T2VecConfig.from_dict(cfg.to_dict()) == cfg`` holds, so a saved
        model can be re-``fit`` with an identical configuration.
        """
        data: Dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, LossSpec):
                value = value.to_dict()
            elif isinstance(value, TrainingConfig):
                value = value.to_dict()
            elif isinstance(value, tuple):
                value = list(value)
            data[f.name] = value
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "T2VecConfig":
        """Inverse of :meth:`to_dict`.

        Missing keys fall back to the dataclass defaults (older
        checkpoints carry partial configs); unknown keys are rejected.
        """
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown T2VecConfig keys: {sorted(unknown)}")
        kwargs = dict(data)
        if "loss" in kwargs and isinstance(kwargs["loss"], dict):
            kwargs["loss"] = LossSpec.from_dict(kwargs["loss"])
        if "training" in kwargs and isinstance(kwargs["training"], dict):
            kwargs["training"] = TrainingConfig.from_dict(kwargs["training"])
        for key in ("dropping_rates", "distorting_rates"):
            if key in kwargs:
                kwargs[key] = tuple(kwargs[key])
        return cls(**kwargs)


class T2Vec(TrajectoryDistance):
    """Trajectory-to-vector model (the paper's primary contribution)."""

    name = "t2vec"

    def __init__(self, config: T2VecConfig = T2VecConfig(),
                 registry: Optional[MetricsRegistry] = None):
        self.config = config
        self.registry = registry
        self.grid: Optional[Grid] = None
        self.vocab: Optional[CellVocabulary] = None
        self.model: Optional[EncoderDecoder] = None
        self.last_result: Optional[TrainingResult] = None
        self._encodings: "OrderedDict[bytes, np.ndarray]" = OrderedDict()
        self._rng = np.random.default_rng(config.seed)

    def _registry(self) -> MetricsRegistry:
        return self.registry or get_registry()

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, trajectories: Sequence[Trajectory],
            validation: Optional[Sequence[Trajectory]] = None,
            callbacks: Sequence[Callback] = ()) -> TrainingResult:
        """Run the full training pipeline on a trajectory archive.

        When ``validation`` is omitted, the last ``val_fraction`` of the
        input is held out (the paper splits by starting timestamp, which
        for our generators is the list order).  ``callbacks`` are passed
        straight to :meth:`Trainer.fit`.
        """
        reg = self._registry()
        trajectories = list(trajectories)
        if len(trajectories) < 2:
            raise ValueError("fit needs at least two trajectories")
        if validation is None and self.config.val_fraction > 0:
            n_val = max(1, int(len(trajectories) * self.config.val_fraction))
            validation = trajectories[-n_val:]
            trajectories = trajectories[:-n_val]

        with reg.span("t2vec.fit", record_histogram=False):
            with reg.span("t2vec.build_vocab", record_histogram=False):
                self._build_vocabulary(trajectories)
            with reg.span("t2vec.build_model", record_histogram=False):
                self._build_model()
            with reg.span("t2vec.build_pairs", record_histogram=False):
                train_ds, val_ds = self._build_datasets(trajectories,
                                                        validation)

            trainer = Trainer(self.model, self.vocab, self.config.loss,
                              self.config.training, registry=self.registry)
            self.last_result = trainer.fit(train_ds, validation=val_ds,
                                           callbacks=callbacks)
        self._encodings.clear()
        return self.last_result

    def _build_vocabulary(self, trajectories: Sequence[Trajectory]) -> None:
        points = np.concatenate([t.points for t in trajectories], axis=0)
        self.grid = Grid.covering(points, self.config.cell_size)
        self.vocab = CellVocabulary.build(self.grid, points,
                                          min_hits=self.config.min_hits)

    def _build_model(self) -> None:
        cfg = self.config
        self.model = EncoderDecoder(ModelConfig(
            vocab_size=self.vocab.size,
            embedding_size=cfg.embedding_size,
            hidden_size=cfg.hidden_size,
            num_layers=cfg.num_layers,
            dropout=cfg.dropout,
            rnn_type=cfg.rnn_type,
            seed=cfg.seed,
        ))
        if cfg.pretrain_cells:
            cell_trainer = CellEmbeddingTrainer(self.vocab, CellEmbeddingConfig(
                dim=cfg.embedding_size,
                k_nearest=cfg.loss.k_nearest,
                theta=cfg.loss.theta,
                epochs=cfg.cell_epochs,
                seed=cfg.seed,
            ))
            vectors = cell_trainer.train()
            # Keep the model's random vectors for the special tokens.
            vectors[:4] = self.model.embedding.weight.data[:4]
            self.model.embedding.load_pretrained(vectors)

    def _build_datasets(self, train: Sequence[Trajectory],
                        validation: Optional[Sequence[Trajectory]]):
        """Training pipeline + materialized validation set.

        Training streams through :class:`TrainingDataPipeline`
        (``training.num_workers`` processes, length-bucketed batches,
        background prefetch).  Validation is synthesized by the same
        deterministic per-original seeding but materialized once — it is
        evaluated every round, and the materialized
        ``TokenPairDataset.batches`` path is the pipeline's exact-parity
        reference.
        """
        cfg = self.config
        train_seed = int(self._rng.integers(2 ** 31 - 1))
        val_seed = int(self._rng.integers(2 ** 31 - 1))
        train_ds = TrainingDataPipeline(
            train, self.vocab, cfg.dropping_rates, cfg.distorting_rates,
            seed=train_seed,
            num_workers=cfg.training.num_workers,
            bucket_batches=cfg.training.bucket_batches,
            prefetch_batches=cfg.training.prefetch_batches,
            registry=self.registry)
        val_ds = None
        if validation:
            val_ds = TrainingDataPipeline(
                validation, self.vocab, cfg.dropping_rates,
                cfg.distorting_rates, seed=val_seed,
                registry=self.registry).materialize()
        return train_ds, val_ds

    # ------------------------------------------------------------------
    # Encoding and similarity
    # ------------------------------------------------------------------
    def _require_fitted(self) -> None:
        if self.model is None or self.vocab is None:
            raise RuntimeError("T2Vec is not fitted; call fit() or load() first")

    def encode(self, trajectory: Trajectory) -> np.ndarray:
        """The trajectory's representation vector ``v`` (shape ``(hidden,)``)."""
        return self.encode_many([trajectory])[0]

    def encode_many(self, trajectories: Sequence[Trajectory],
                    batch_size: int = 256) -> np.ndarray:
        """Embed many trajectories (O(n) each); cached by content key.

        The cache is a bounded LRU (``config.encode_cache_size`` entries);
        hits, misses, and evictions are recorded in the metrics registry,
        along with a per-trajectory encode-latency histogram.
        """
        self._require_fitted()
        reg = self._registry()
        cache = self._encodings
        unique: "OrderedDict[bytes, Trajectory]" = OrderedDict(
            (t.cache_key(), t) for t in trajectories)
        # Requested vectors are kept in a local dict as well, so results
        # survive even when the LRU cap evicts them within this call.
        resolved: Dict[bytes, np.ndarray] = {}
        missing: List[Trajectory] = []
        for key, traj in unique.items():
            if key in cache:
                cache.move_to_end(key)
                resolved[key] = cache[key]
                reg.counter("encode.cache_hits").inc()
            else:
                missing.append(traj)
                reg.counter("encode.cache_misses").inc()

        for start in range(0, len(missing), batch_size):
            chunk = missing[start:start + batch_size]
            chunk_start = time.perf_counter()
            sequences = [tokenize(t, self.vocab) for t in chunk]
            batch, mask = pad_batch(sequences)
            vectors = self.model.represent(batch, mask)
            chunk_time = time.perf_counter() - chunk_start
            reg.histogram("encode.latency_s").observe(chunk_time / len(chunk))
            for traj, vec in zip(chunk, vectors):
                key = traj.cache_key()
                resolved[key] = vec
                cache[key] = vec
                cache.move_to_end(key)
            self._evict(reg)
        return np.stack([resolved[t.cache_key()] for t in trajectories])

    def _evict(self, reg: MetricsRegistry) -> None:
        cap = self.config.encode_cache_size
        if cap is None or cap < 1:
            return
        while len(self._encodings) > cap:
            self._encodings.popitem(last=False)
            reg.counter("encode.cache_evictions").inc()

    @property
    def cache_info(self) -> Dict[str, int]:
        """Current size and capacity of the encoding LRU cache."""
        return {"size": len(self._encodings),
                "capacity": self.config.encode_cache_size}

    def distance(self, a: Trajectory, b: Trajectory) -> float:
        va, vb = self.encode_many([a, b])
        return float(np.sqrt(((va - vb) ** 2).sum()))

    def distance_to_many(self, query: Trajectory,
                         candidates: Sequence[Trajectory]) -> np.ndarray:
        vq = self.encode(query)
        vc = self.encode_many(candidates)
        return np.sqrt(((vc - vq[None, :]) ** 2).sum(axis=1))

    def distance_matrix(self, queries: Sequence[Trajectory],
                        candidates: Sequence[Trajectory]) -> np.ndarray:
        """All query-candidate distances via one blocked GEMM.

        Both sides are encoded in batches and the ``(Q, N)`` matrix comes
        out of the tiled ``||x||² + ||q||² − 2·X@Qᵀ`` identity — the
        whole evaluation protocol's distances in a handful of BLAS calls
        instead of ``Q`` python-level scans.
        """
        if len(queries) == 0:
            return np.zeros((0, len(candidates)))
        vq = self.encode_many(list(queries))
        vc = self.encode_many(list(candidates))
        return pairwise_distances(vq, vc)

    def knn_batch(self, queries: Sequence[Trajectory],
                  candidates: Sequence[Trajectory], k: int) -> np.ndarray:
        """Batched k-NN through :class:`ExactIndex` over encoded vectors."""
        if len(queries) == 0:
            return np.zeros((0, min(k, len(candidates))), dtype=np.int64)
        index = ExactIndex(self.encode_many(list(candidates)),
                           registry=self.registry)
        idx, _ = index.knn_batch(self.encode_many(list(queries)), k)
        return idx

    def knn(self, query: Trajectory, candidates: Sequence[Trajectory],
            k: int) -> np.ndarray:
        """Indices of the k nearest candidates — wrapper over the batched path."""
        return self.knn_batch([query], candidates, k)[0]

    def reconstruct_route(self, trajectory: Trajectory, max_len: int = 100,
                          beam_width: int = 1) -> np.ndarray:
        """Decode the most likely dense route as ``(n, 2)`` cell centroids.

        This is the paper's core intuition made visible: from a degraded
        trajectory the decoder recovers the underlying route.
        ``beam_width > 1`` switches from greedy to beam-search decoding,
        which tracks several candidate routes and usually stays closer to
        the true one when the spatially smoothed output distribution is
        flat.
        """
        self._require_fitted()
        tokens = tokenize(trajectory, self.vocab)
        batch, mask = pad_batch([tokens])
        if beam_width > 1:
            decoded = self.model.beam_decode(batch, mask,
                                             beam_width=beam_width,
                                             max_len=max_len)[0]
        else:
            decoded = self.model.greedy_decode(batch, mask, max_len=max_len)[0]
        hot = decoded[decoded >= 4]
        if len(hot) == 0:
            return np.empty((0, 2))
        return self.vocab.centroid_of_tokens(hot)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        """Write model weights, vocabulary, and configuration to one file.

        The metadata embeds ``config.to_dict()`` verbatim, so *every*
        field (nested ``TrainingConfig`` and ``LossSpec`` included)
        survives a save → load roundtrip.
        """
        self._require_fitted()
        state = self.model.state_dict()
        state["_vocab.hot_cells"] = self.vocab.hot_cells
        if self.vocab.hit_counts is not None:
            state["_vocab.hit_counts"] = self.vocab.hit_counts
        meta = {
            "grid": {
                "min_x": self.grid.min_x, "min_y": self.grid.min_y,
                "max_x": self.grid.max_x, "max_y": self.grid.max_y,
                "cell_size": self.grid.cell_size,
            },
            "config": self.config.to_dict(),
        }
        save_checkpoint(path, state, meta)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "T2Vec":
        """Restore a model written by :meth:`save`.

        Older checkpoints with partial config metadata load with default
        values for the missing fields.
        """
        state, meta = load_checkpoint(path)
        if meta is None:
            raise ValueError(f"{path} has no t2vec metadata")
        config = T2VecConfig.from_dict(meta["config"])
        instance = cls(config)
        grid_meta = meta["grid"]
        instance.grid = Grid(**grid_meta)
        hot_cells = state.pop("_vocab.hot_cells")
        hit_counts = state.pop("_vocab.hit_counts", None)
        instance.vocab = CellVocabulary(instance.grid, hot_cells, hit_counts)
        instance.model = EncoderDecoder(ModelConfig(
            vocab_size=instance.vocab.size,
            embedding_size=config.embedding_size,
            hidden_size=config.hidden_size,
            num_layers=config.num_layers,
            dropout=config.dropout,
            rnn_type=config.rnn_type,
            seed=config.seed,
        ))
        instance.model.load_state_dict(state)
        return instance
