"""Training loop for the t2vec encoder-decoder.

Implements the paper's training regime (Section V-B): Adam with initial
learning rate 1e-3, gradient clipping at global norm 5, teacher forcing,
and early stopping on a validation set ("training is terminated if the
loss in the validation dataset does not decrease in 20,000 successive
iterations" — here expressed as a patience in validation rounds).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..data.dataset import Batch, TokenPairDataset
from ..nn import Adam, clip_grad_norm
from ..spatial.proximity import ProximityVocabulary
from .encoder_decoder import EncoderDecoder
from .losses import LossSpec, sequence_loss


@dataclass(frozen=True)
class TrainingConfig:
    """Optimization hyper-parameters (paper values in parentheses)."""

    batch_size: int = 32
    max_epochs: int = 10
    lr: float = 1e-3               # Adam initial learning rate (1e-3)
    clip_norm: float = 5.0         # max gradient norm (5)
    patience: int = 5              # validation rounds without improvement
    eval_batches: int = 20         # validation mini-batches per round
    seed: int = 0


@dataclass
class TrainingResult:
    """What happened during :meth:`Trainer.fit`."""

    train_losses: List[float] = field(default_factory=list)   # per epoch
    val_losses: List[float] = field(default_factory=list)     # per validation
    best_val_loss: float = float("inf")
    epochs_run: int = 0
    steps: int = 0
    wall_time_s: float = 0.0
    stopped_early: bool = False


class Trainer:
    """Fits an :class:`EncoderDecoder` on a :class:`TokenPairDataset`."""

    def __init__(self, model: EncoderDecoder, vocab: ProximityVocabulary,
                 loss_spec: LossSpec = LossSpec(),
                 config: TrainingConfig = TrainingConfig()):
        self.model = model
        self.vocab = vocab
        self.loss_spec = loss_spec
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self.optimizer = Adam(model.parameters(), lr=config.lr)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def fit(self, train: TokenPairDataset,
            validation: Optional[TokenPairDataset] = None) -> TrainingResult:
        """Train until ``max_epochs`` or early stopping; restores best weights."""
        result = TrainingResult()
        best_state: Optional[Dict[str, np.ndarray]] = None
        bad_rounds = 0
        start = time.perf_counter()

        for epoch in range(self.config.max_epochs):
            epoch_losses = []
            for batch in train.batches(self.config.batch_size, self._rng):
                epoch_losses.append(self.train_step(batch))
                result.steps += 1
            result.train_losses.append(float(np.mean(epoch_losses)))
            result.epochs_run = epoch + 1

            if validation is not None and len(validation):
                val_loss = self.evaluate(validation)
                result.val_losses.append(val_loss)
                if val_loss < result.best_val_loss - 1e-6:
                    result.best_val_loss = val_loss
                    best_state = self.model.state_dict()
                    bad_rounds = 0
                else:
                    bad_rounds += 1
                    if bad_rounds >= self.config.patience:
                        result.stopped_early = True
                        break

        if best_state is not None:
            self.model.load_state_dict(best_state)
        result.wall_time_s = time.perf_counter() - start
        return result

    # ------------------------------------------------------------------
    # Steps
    # ------------------------------------------------------------------
    def train_step(self, batch: Batch) -> float:
        """One optimizer step on one mini-batch; returns the loss value."""
        self.model.train()
        _, state = self.model.encode(batch.src, batch.src_mask)
        hidden = self.model.decode(batch.tgt_in, state, batch.tgt_mask)
        loss = sequence_loss(self.model, hidden, batch.tgt_out, batch.tgt_mask,
                             self.vocab, self.loss_spec, self._rng)
        self.optimizer.zero_grad()
        loss.backward()
        clip_grad_norm(self.model.parameters(), self.config.clip_norm)
        self.optimizer.step()
        return loss.item()

    def evaluate(self, dataset: TokenPairDataset,
                 max_batches: Optional[int] = None) -> float:
        """Mean validation loss (no parameter updates, dropout off)."""
        self.model.eval()
        max_batches = max_batches or self.config.eval_batches
        losses = []
        for i, batch in enumerate(dataset.batches(self.config.batch_size,
                                                  self._rng, shuffle=False)):
            if i >= max_batches:
                break
            _, state = self.model.encode(batch.src, batch.src_mask)
            hidden = self.model.decode(batch.tgt_in, state, batch.tgt_mask)
            loss = sequence_loss(self.model, hidden, batch.tgt_out,
                                 batch.tgt_mask, self.vocab, self.loss_spec,
                                 self._rng)
            losses.append(loss.item())
        self.model.train()
        return float(np.mean(losses)) if losses else float("inf")
