"""Training loop for the t2vec encoder-decoder.

Implements the paper's training regime (Section V-B): Adam with initial
learning rate 1e-3, gradient clipping at global norm 5, teacher forcing,
and early stopping on a validation set ("training is terminated if the
loss in the validation dataset does not decrease in 20,000 successive
iterations" — here expressed as a patience in validation rounds).

The loop is observable: :meth:`Trainer.fit` accepts a list of
:class:`~repro.telemetry.Callback` hooks and records per-epoch loss,
tokens/sec, and wall-clock into a :class:`~repro.telemetry.MetricsRegistry`
(the process default unless one is passed explicitly).
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..data.dataset import Batch, BatchSource
from ..nn import Adam, clip_grad_norm
from ..spatial.proximity import ProximityVocabulary
from ..telemetry import (Callback, CallbackList, MetricsRegistry,
                         StopTraining, get_registry)
from .encoder_decoder import EncoderDecoder
from .losses import LossSpec, sequence_loss


@dataclass(frozen=True)
class TrainingConfig:
    """Optimization hyper-parameters (paper values in parentheses)."""

    batch_size: int = 32
    max_epochs: int = 10
    lr: float = 1e-3               # Adam initial learning rate (1e-3)
    clip_norm: float = 5.0         # max gradient norm (5)
    patience: int = 5              # validation rounds without improvement
    eval_batches: int = 20         # validation mini-batches per round
    num_workers: int = 0           # data-pipeline worker processes
    bucket_batches: int = 8        # length-bucketing window, in batches
    prefetch_batches: int = 2      # batches kept ready by the prefetcher
    seed: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict; inverse of :meth:`from_dict`."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TrainingConfig":
        """Build from :meth:`to_dict` output; unknown keys are rejected."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown TrainingConfig keys: {sorted(unknown)}")
        return cls(**data)


@dataclass
class TrainingResult:
    """What happened during :meth:`Trainer.fit`."""

    train_losses: List[float] = field(default_factory=list)   # per epoch
    val_losses: List[float] = field(default_factory=list)     # per validation
    best_val_loss: float = float("inf")
    epochs_run: int = 0
    steps: int = 0
    tokens: int = 0                # real (unpadded) positions processed
    tokens_per_s: float = 0.0      # tokens / wall_time_s
    wall_time_s: float = 0.0
    stopped_early: bool = False


_POSITIONAL_FIT_WARNED = False


class Trainer:
    """Fits an :class:`EncoderDecoder` on any :class:`BatchSource`.

    The source may be a materialized
    :class:`~repro.data.dataset.TokenPairDataset` (the reference path)
    or a streaming :class:`~repro.data.pipeline.TrainingDataPipeline`
    (parallel synthesis, length-bucketed batches, background prefetch);
    both yield the same :class:`~repro.data.dataset.Batch` layout.
    """

    def __init__(self, model: EncoderDecoder, vocab: ProximityVocabulary,
                 loss_spec: LossSpec = LossSpec(),
                 config: TrainingConfig = TrainingConfig(),
                 registry: Optional[MetricsRegistry] = None):
        self.model = model
        self.vocab = vocab
        self.loss_spec = loss_spec
        self.config = config
        self.registry = registry
        self._rng = np.random.default_rng(config.seed)
        self.optimizer = Adam(model.parameters(), lr=config.lr)

    def _registry(self, override: Optional[MetricsRegistry] = None
                  ) -> MetricsRegistry:
        return override or self.registry or get_registry()

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def fit(self, train: BatchSource, *legacy_args,
            validation: Optional[BatchSource] = None,
            callbacks: Sequence[Callback] = (),
            registry: Optional[MetricsRegistry] = None) -> TrainingResult:
        """Train until ``max_epochs``, early stopping, or a callback's
        :class:`~repro.telemetry.StopTraining`; restores best weights.

        ``validation`` and later arguments are keyword-only; a single
        extra positional argument is still accepted as ``validation``
        for backward compatibility (deprecated).
        """
        if legacy_args:
            global _POSITIONAL_FIT_WARNED
            if len(legacy_args) > 1 or validation is not None:
                raise TypeError("fit() accepts at most one positional "
                                "validation dataset")
            if not _POSITIONAL_FIT_WARNED:
                warnings.warn(
                    "passing validation positionally to Trainer.fit is "
                    "deprecated; use fit(train, validation=...)",
                    DeprecationWarning, stacklevel=2)
                _POSITIONAL_FIT_WARNED = True
            validation = legacy_args[0]

        reg = self._registry(registry)
        hooks = CallbackList(list(callbacks))
        result = TrainingResult()
        best_state: Optional[Dict[str, np.ndarray]] = None
        bad_rounds = 0
        start = time.perf_counter()

        hooks.on_fit_start(self)
        try:
            with reg.span("fit", record_histogram=False):
                for epoch in range(self.config.max_epochs):
                    hooks.on_epoch_start(self, epoch)
                    epoch_losses: List[float] = []
                    epoch_tokens = 0
                    epoch_start = time.perf_counter()
                    with reg.span("fit.epoch"):
                        for batch in train.batches(self.config.batch_size,
                                                   self._rng):
                            loss = self.train_step(batch)
                            tokens = int(batch.src_mask.sum()
                                         + batch.tgt_mask.sum())
                            epoch_losses.append(loss)
                            epoch_tokens += tokens
                            reg.counter("train.steps").inc()
                            reg.counter("train.tokens").inc(tokens)
                            hooks.on_batch_end(self, result.steps, loss,
                                               tokens)
                            result.steps += 1
                    epoch_time = time.perf_counter() - epoch_start
                    train_loss = float(np.mean(epoch_losses))
                    result.train_losses.append(train_loss)
                    result.epochs_run = epoch + 1
                    result.tokens += epoch_tokens

                    val_loss: Optional[float] = None
                    if validation is not None and len(validation):
                        val_loss = self.evaluate(validation)
                        result.val_losses.append(val_loss)
                        reg.gauge("train.val_loss").set(val_loss)
                        if val_loss < result.best_val_loss - 1e-6:
                            result.best_val_loss = val_loss
                            best_state = self.model.state_dict()
                            bad_rounds = 0
                        else:
                            bad_rounds += 1

                    tokens_per_s = (epoch_tokens / epoch_time
                                    if epoch_time > 0 else 0.0)
                    reg.gauge("train.epoch_loss").set(train_loss)
                    reg.gauge("train.tokens_per_s").set(tokens_per_s)
                    reg.gauge("train.epoch_time_s").set(epoch_time)
                    hooks.on_epoch_end(self, epoch, {
                        "train_loss": train_loss,
                        "val_loss": val_loss,
                        "tokens_per_s": tokens_per_s,
                        "epoch_time_s": epoch_time,
                        "steps": result.steps,
                    })
                    if val_loss is not None and bad_rounds >= self.config.patience:
                        result.stopped_early = True
                        break
        except StopTraining:
            result.stopped_early = True

        if best_state is not None:
            self.model.load_state_dict(best_state)
        result.wall_time_s = time.perf_counter() - start
        result.tokens_per_s = (result.tokens / result.wall_time_s
                               if result.wall_time_s > 0 else 0.0)
        hooks.on_fit_end(self, result)
        return result

    # ------------------------------------------------------------------
    # Steps
    # ------------------------------------------------------------------
    def train_step(self, batch: Batch) -> float:
        """One optimizer step on one mini-batch; returns the loss value."""
        self.model.train()
        _, state = self.model.encode(batch.src, batch.src_mask)
        hidden = self.model.decode(batch.tgt_in, state, batch.tgt_mask)
        loss = sequence_loss(self.model, hidden, batch.tgt_out, batch.tgt_mask,
                             self.vocab, self.loss_spec, self._rng)
        self.optimizer.zero_grad()
        loss.backward()
        clip_grad_norm(self.model.parameters(), self.config.clip_norm)
        self.optimizer.step()
        return loss.item()

    def evaluate(self, dataset: BatchSource,
                 max_batches: Optional[int] = None) -> float:
        """Mean validation loss (no parameter updates, dropout off)."""
        self.model.eval()
        max_batches = max_batches or self.config.eval_batches
        losses = []
        for i, batch in enumerate(dataset.batches(self.config.batch_size,
                                                  self._rng, shuffle=False)):
            if i >= max_batches:
                break
            _, state = self.model.encode(batch.src, batch.src_mask)
            hidden = self.model.decode(batch.tgt_in, state, batch.tgt_mask)
            loss = sequence_loss(self.model, hidden, batch.tgt_out,
                                 batch.tgt_mask, self.vocab, self.loss_spec,
                                 self._rng)
            losses.append(loss.item())
        self.model.train()
        return float(np.mean(losses)) if losses else float("inf")
