"""Cell representation pre-training (paper Algorithm 1, Section IV-C2).

Skip-gram with negative sampling over *spatially sampled* contexts: the
context of a hot cell is drawn from its K nearest cells with probability
proportional to ``exp(-distance / θ)`` (Eq. 8).  Cells that are close in
space therefore get close embeddings, which warm-starts the seq2seq
embedding layer — the paper reports it both improves mean rank and cuts
training time by a third (Table VII, column L3+CL).

The model is tiny (two embedding tables, a dot product, a sigmoid), so it
is trained with hand-rolled vectorized gradients rather than the autograd
engine — orders of magnitude faster and easy to verify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..spatial.proximity import NUM_SPECIALS, ProximityVocabulary


@dataclass(frozen=True)
class CellEmbeddingConfig:
    """Hyper-parameters of Algorithm 1 (paper defaults in parentheses)."""

    dim: int = 64                  # representation dimension d (256)
    context_size: int = 10         # context window l (10)
    k_nearest: int = 10            # K nearest cells considered (20)
    theta: float = 100.0           # spatial scale θ in meters (100)
    negatives: int = 5             # negative samples per positive
    epochs: int = 3
    lr: float = 0.05
    seed: int = 0


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


class CellEmbeddingTrainer:
    """Learns spatially coherent cell vectors via skip-gram + negative sampling."""

    def __init__(self, vocab: ProximityVocabulary,
                 config: CellEmbeddingConfig = CellEmbeddingConfig()):
        self.vocab = vocab
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        scale = 0.5 / config.dim
        self.center = self._rng.uniform(-scale, scale, (vocab.size, config.dim))
        self.context = np.zeros((vocab.size, config.dim))

    # ------------------------------------------------------------------
    # Context construction (Algorithm 1, lines 1-5)
    # ------------------------------------------------------------------
    def sample_contexts(self) -> Tuple[np.ndarray, np.ndarray]:
        """Draw ``context_size`` context cells for every hot cell.

        Returns ``(centers, contexts)``, flat aligned arrays of token ids.
        """
        cfg = self.config
        neighbours, probs = self.vocab.context_distribution(cfg.k_nearest, cfg.theta)
        num_hot, k = neighbours.shape
        # Vectorized categorical sampling per row via the CDF trick.
        cdf = np.cumsum(probs, axis=1)
        draws = self._rng.random((num_hot, cfg.context_size))
        picks = (draws[:, :, None] > cdf[:, None, :]).sum(axis=2)
        picks = np.minimum(picks, k - 1)  # guard against cdf rounding below 1.0
        contexts = neighbours[np.arange(num_hot)[:, None], picks]
        centers = np.repeat(np.arange(num_hot) + NUM_SPECIALS, cfg.context_size)
        return centers, contexts.reshape(-1)

    # ------------------------------------------------------------------
    # Training (Algorithm 1, line 6: optimize Eq. 9)
    # ------------------------------------------------------------------
    def train(self, batch_size: int = 512) -> np.ndarray:
        """Run the optimization; returns the learned ``(vocab, dim)`` table.

        One "epoch" redraws the contexts (fresh samples from Eq. 8) and
        sweeps all (center, context) pairs once with negative sampling.
        """
        cfg = self.config
        low, high = NUM_SPECIALS, self.vocab.size
        for _ in range(cfg.epochs):
            centers, contexts = self.sample_contexts()
            order = self._rng.permutation(len(centers))
            centers, contexts = centers[order], contexts[order]
            for start in range(0, len(centers), batch_size):
                c = centers[start:start + batch_size]
                pos = contexts[start:start + batch_size]
                neg = self._rng.integers(low, high, size=(len(c), cfg.negatives))
                self._step(c, pos, neg)
        return self.embeddings()

    def _step(self, centers: np.ndarray, positives: np.ndarray,
              negatives: np.ndarray) -> None:
        """One SGD step on a batch of (center, positive, negatives) triples."""
        lr = self.config.lr
        vc = self.center[centers]                     # (B, d)
        vp = self.context[positives]                  # (B, d)
        vn = self.context[negatives]                  # (B, neg, d)

        # Positive pairs: maximize log sigmoid(vc . vp).
        pos_score = _sigmoid((vc * vp).sum(axis=1))   # (B,)
        pos_coef = (1.0 - pos_score)[:, None]
        grad_c = pos_coef * vp
        grad_p = pos_coef * vc

        # Negatives: maximize log sigmoid(-vc . vn).
        neg_score = _sigmoid((vn * vc[:, None, :]).sum(axis=2))  # (B, neg)
        grad_c -= (neg_score[:, :, None] * vn).sum(axis=1)
        grad_n = -neg_score[:, :, None] * vc[:, None, :]

        np.add.at(self.center, centers, lr * grad_c)
        np.add.at(self.context, positives, lr * grad_p)
        np.add.at(self.context, negatives.reshape(-1),
                  lr * grad_n.reshape(-1, self.config.dim))

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    def embeddings(self) -> np.ndarray:
        """The center table — used to initialize the model's embedding layer."""
        return self.center.copy()

    def loss(self, sample_size: int = 2048) -> float:
        """Monte-Carlo estimate of the negative-sampling objective (lower=better)."""
        centers, contexts = self.sample_contexts()
        idx = self._rng.choice(len(centers), size=min(sample_size, len(centers)),
                               replace=False)
        c, p = centers[idx], contexts[idx]
        neg = self._rng.integers(NUM_SPECIALS, self.vocab.size,
                                 size=(len(c), self.config.negatives))
        vc, vp, vn = self.center[c], self.context[p], self.context[neg]
        pos = np.log(_sigmoid((vc * vp).sum(axis=1)) + 1e-12)
        negs = np.log(_sigmoid(-(vn * vc[:, None, :]).sum(axis=2)) + 1e-12).sum(axis=1)
        return float(-(pos + negs).mean())


def pretrain_cell_embeddings(vocab: ProximityVocabulary,
                             config: Optional[CellEmbeddingConfig] = None,
                             ) -> np.ndarray:
    """Convenience wrapper: run Algorithm 1 and return the embedding table."""
    trainer = CellEmbeddingTrainer(vocab, config or CellEmbeddingConfig())
    return trainer.train()
