"""t2vec core: the paper's primary contribution.

* :class:`T2Vec` / :class:`T2VecConfig` — the end-to-end public API.
* :class:`EncoderDecoder` — the GRU seq2seq model.
* :class:`LossSpec` — selects L1 / L2 / L3 decoder losses.
* :class:`Trainer` — Adam + clipping + early stopping.
* :class:`CellEmbeddingTrainer` — Algorithm 1 cell pretraining.
* :class:`ExactIndex` / :class:`LSHIndex` — vector k-NN search.
"""

from .cell_embedding import (CellEmbeddingConfig, CellEmbeddingTrainer,
                             pretrain_cell_embeddings)
from .encoder_decoder import EncoderDecoder, ModelConfig
from .index import ExactIndex, LSHIndex
from .losses import LossSpec, sequence_loss
from .series import (Series2Vec, Series2VecConfig, SeriesVocabulary,
                     distort_series, downsample_series)
from .t2vec import T2Vec, T2VecConfig
from .trainer import Trainer, TrainingConfig, TrainingResult

__all__ = [
    "CellEmbeddingConfig",
    "CellEmbeddingTrainer",
    "EncoderDecoder",
    "ExactIndex",
    "LSHIndex",
    "LossSpec",
    "ModelConfig",
    "Series2Vec",
    "Series2VecConfig",
    "SeriesVocabulary",
    "T2Vec",
    "T2VecConfig",
    "Trainer",
    "TrainingConfig",
    "TrainingResult",
    "distort_series",
    "downsample_series",
    "pretrain_cell_embeddings",
    "sequence_loss",
]
