"""Generic time-series representation learning (paper §VI future work 2).

The paper's conclusion proposes "extending the proposed method to more
general time series data beyond trajectories".  Nothing in the model is
trajectory-specific once the data is tokenized: this module discretizes
1-D real-valued series into quantile bins (the 1-D analogue of grid
cells), reuses the proximity kernels through
:class:`~repro.spatial.proximity.ProximityVocabulary`, and trains the
same encoder-decoder with the same L1/L2/L3 losses.

Degradation transforms mirror the trajectory ones: down-sampling drops
interior samples (endpoints kept); distortion adds Gaussian value noise
to a fraction of the samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..data.dataset import TokenPairDataset, pad_batch
from ..spatial.proximity import ProximityVocabulary
from .cell_embedding import CellEmbeddingConfig, CellEmbeddingTrainer
from .encoder_decoder import EncoderDecoder, ModelConfig
from .losses import LossSpec
from .trainer import Trainer, TrainingConfig, TrainingResult


class SeriesVocabulary(ProximityVocabulary):
    """Quantile-bin token space for 1-D real-valued series.

    Bin centers play the role of cell centroids, so value proximity
    drives the spatial-aware losses exactly like spatial proximity does
    for trajectories.
    """

    def __init__(self, centers: np.ndarray):
        centers = np.asarray(centers, dtype=float).reshape(-1, 1)
        if len(centers) < 2:
            raise ValueError("a series vocabulary needs at least two bins")
        super().__init__(centers)

    @classmethod
    def build(cls, series: Sequence[np.ndarray], num_bins: int = 64) -> "SeriesVocabulary":
        """Quantile binning over the pooled values of the training series."""
        values = np.concatenate([np.asarray(s, dtype=float).ravel()
                                 for s in series])
        if values.size == 0:
            raise ValueError("cannot build a vocabulary from empty series")
        quantiles = np.linspace(0.0, 1.0, num_bins + 1)[1:-1]
        edges = np.unique(np.quantile(values, quantiles))
        centers = np.concatenate([
            [values.min()],
            (edges[:-1] + edges[1:]) / 2.0 if len(edges) > 1 else [],
            [values.max()],
        ])
        return cls(np.unique(centers))

    def tokenize_series(self, series: np.ndarray) -> np.ndarray:
        """Map a 1-D series to nearest-bin-center tokens."""
        return self.tokenize_points(np.asarray(series, dtype=float).reshape(-1, 1))


def downsample_series(series: np.ndarray, rate: float,
                      rng: np.random.Generator) -> np.ndarray:
    """Drop interior samples with probability ``rate`` (endpoints kept)."""
    series = np.asarray(series, dtype=float)
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"rate must be in [0, 1), got {rate}")
    if rate == 0.0 or len(series) <= 2:
        return series
    keep = rng.random(len(series)) >= rate
    keep[0] = keep[-1] = True
    return series[keep]


def distort_series(series: np.ndarray, rate: float, scale: float,
                   rng: np.random.Generator) -> np.ndarray:
    """Add Gaussian noise of the given scale to a fraction of the samples."""
    series = np.asarray(series, dtype=float).copy()
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"rate must be in [0, 1], got {rate}")
    selected = rng.random(len(series)) < rate
    series[selected] += rng.normal(0.0, scale, size=int(selected.sum()))
    return series


@dataclass(frozen=True)
class Series2VecConfig:
    """Configuration of the generic series encoder."""

    num_bins: int = 64
    embedding_size: int = 32
    hidden_size: int = 32
    num_layers: int = 1
    dropout: float = 0.0
    loss: LossSpec = LossSpec(k_nearest=8, noise=32)
    theta_quantile: float = 0.05   # theta = this quantile of value range
    pretrain_bins: bool = True
    dropping_rates: tuple = (0.0, 0.2, 0.4)
    distorting_rates: tuple = (0.0, 0.2)
    distortion_scale_quantile: float = 0.02
    training: TrainingConfig = TrainingConfig(batch_size=128, max_epochs=6)
    val_fraction: float = 0.1
    seed: int = 0


class Series2Vec:
    """t2vec for generic 1-D series: fit / encode / distance."""

    def __init__(self, config: Series2VecConfig = Series2VecConfig()):
        self.config = config
        self.vocab: Optional[SeriesVocabulary] = None
        self.model: Optional[EncoderDecoder] = None
        self.last_result: Optional[TrainingResult] = None
        self._rng = np.random.default_rng(config.seed)
        self._theta: Optional[float] = None
        self._noise_scale: Optional[float] = None

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, series: Sequence[np.ndarray]) -> TrainingResult:
        series = [np.asarray(s, dtype=float).ravel() for s in series]
        series = [s for s in series if len(s) >= 4]
        if len(series) < 2:
            raise ValueError("fit needs at least two series of length >= 4")
        cfg = self.config
        self.vocab = SeriesVocabulary.build(series, cfg.num_bins)
        values = np.concatenate(series)
        value_range = float(values.max() - values.min()) or 1.0
        self._theta = max(1e-9, cfg.theta_quantile * value_range)
        self._noise_scale = cfg.distortion_scale_quantile * value_range

        loss = LossSpec(kind=cfg.loss.kind, k_nearest=cfg.loss.k_nearest,
                        theta=self._theta, noise=cfg.loss.noise)
        self.model = EncoderDecoder(ModelConfig(
            vocab_size=self.vocab.size, embedding_size=cfg.embedding_size,
            hidden_size=cfg.hidden_size, num_layers=cfg.num_layers,
            dropout=cfg.dropout, seed=cfg.seed))
        if cfg.pretrain_bins:
            trainer = CellEmbeddingTrainer(self.vocab, CellEmbeddingConfig(
                dim=cfg.embedding_size, k_nearest=loss.k_nearest,
                theta=self._theta, epochs=2, seed=cfg.seed))
            vectors = trainer.train()
            vectors[:4] = self.model.embedding.weight.data[:4]
            self.model.embedding.load_pretrained(vectors)

        n_val = max(1, int(len(series) * cfg.val_fraction))
        train_series, val_series = series[:-n_val], series[-n_val:]
        train_ds = self._make_dataset(train_series)
        val_ds = self._make_dataset(val_series) if val_series else None
        trainer = Trainer(self.model, self.vocab, loss, cfg.training)
        self.last_result = trainer.fit(train_ds, val_ds)
        return self.last_result

    def _make_dataset(self, series: Sequence[np.ndarray]) -> TokenPairDataset:
        cfg = self.config
        sources, targets = [], []
        for s in series:
            target_tokens = self.vocab.tokenize_series(s)
            for r1 in cfg.dropping_rates:
                for r2 in cfg.distorting_rates:
                    degraded = distort_series(
                        downsample_series(s, r1, self._rng),
                        r2, self._noise_scale, self._rng)
                    sources.append(self.vocab.tokenize_series(degraded))
                    targets.append(target_tokens)
        return TokenPairDataset(sources, targets)

    # ------------------------------------------------------------------
    # Encoding / similarity
    # ------------------------------------------------------------------
    def encode(self, series: np.ndarray) -> np.ndarray:
        return self.encode_many([series])[0]

    def encode_many(self, series: Sequence[np.ndarray]) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("Series2Vec is not fitted; call fit() first")
        sequences = [self.vocab.tokenize_series(s) for s in series]
        batch, mask = pad_batch(sequences)
        return self.model.represent(batch, mask)

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        va, vb = self.encode_many([a, b])
        return float(np.sqrt(((va - vb) ** 2).sum()))

    def knn(self, query: np.ndarray, candidates: Sequence[np.ndarray],
            k: int) -> np.ndarray:
        """Indices of the k most similar candidate series."""
        vq = self.encode(query)
        vc = self.encode_many(candidates)
        dists = np.sqrt(((vc - vq[None, :]) ** 2).sum(axis=1))
        k = min(k, len(dists))
        idx = np.argpartition(dists, k - 1)[:k]
        return idx[np.argsort(dists[idx], kind="stable")]
