"""Decoder loss functions from the paper.

Three losses are implemented (Section IV-C1):

* :func:`nll_loss` — ``L1``, the plain negative log-likelihood used in NMT
  (Eq. 4).  Spatially blind: it penalizes a neighbouring cell and a distant
  cell equally.
* :func:`weighted_nll_loss` — ``L2``, the exact spatial-proximity-aware
  loss (Eq. 5).  Each vocabulary cell receives weight
  ``w(u, y_t) ∝ exp(-||u - y_t|| / θ)``; cost is O(|y|·|V|) per sequence.
* :func:`sampled_weighted_loss` — ``L3``, the approximation (Eq. 7): the
  weighted sum runs over only the K nearest cells of the target, and the
  partition function is estimated NCE-style over those cells plus a small
  random noise sample, reducing the cost to O(|y|).

All losses take an optional 0/1 ``mask`` so padded positions in a
mini-batch contribute nothing, and return the *mean* loss per unmasked
token (a scalar ``Tensor``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .functional import log_softmax, logsumexp
from .tensor import Tensor


def _masked_mean(per_example: Tensor, mask: Optional[np.ndarray]) -> Tensor:
    if mask is None:
        return per_example.mean()
    mask = np.asarray(mask, dtype=float)
    total = float(mask.sum())
    if total == 0.0:
        raise ValueError("loss mask has no active positions")
    return (per_example * Tensor(mask)).sum() / total


def nll_loss(logits: Tensor, targets: np.ndarray,
             mask: Optional[np.ndarray] = None) -> Tensor:
    """``L1`` — negative log-likelihood of the target tokens.

    Parameters
    ----------
    logits:
        ``(batch, vocab)`` unnormalized scores.
    targets:
        ``(batch,)`` integer target token ids.
    mask:
        Optional ``(batch,)`` 0/1 array marking real (non-padding) rows.
    """
    targets = np.asarray(targets, dtype=np.int64)
    log_probs = log_softmax(logits, axis=1)
    batch = logits.shape[0]
    picked = log_probs[np.arange(batch), targets]
    return _masked_mean(-picked, mask)


def weighted_nll_loss(logits: Tensor, weights: np.ndarray,
                      mask: Optional[np.ndarray] = None) -> Tensor:
    """``L2`` — exact spatial-proximity-aware loss (Eq. 5).

    Parameters
    ----------
    logits:
        ``(batch, vocab)`` unnormalized scores.
    weights:
        ``(batch, vocab)`` proximity weights ``w(u, y_t)``; each row should
        sum to 1 (rows are a kernel around the target cell).
    mask:
        Optional ``(batch,)`` 0/1 padding mask.
    """
    weights = np.asarray(weights, dtype=float)
    if weights.shape != logits.shape:
        raise ValueError(
            f"weights shape {weights.shape} != logits shape {logits.shape}")
    log_probs = log_softmax(logits, axis=1)
    per_example = -(log_probs * Tensor(weights)).sum(axis=1)
    return _masked_mean(per_example, mask)


def masked_sampled_loss(logits: Tensor, weights: np.ndarray,
                        candidate_bias: np.ndarray,
                        mask: Optional[np.ndarray] = None) -> Tensor:
    """``L3`` via dense masked softmax — the small-vocabulary fast path.

    Mathematically identical to :func:`sampled_weighted_loss` (same Eq. 7
    objective), but expressed over full-vocabulary logits: the partition
    function is restricted to the candidate set ``NO`` by adding a large
    negative ``candidate_bias`` outside it.  For vocabularies that fit a
    ``(batch, vocab)`` matrix this replaces the gather/scatter with two
    GEMMs and is several times faster on CPU; for the paper's 20k-cell
    vocabularies the gathered variant wins.

    Parameters
    ----------
    logits:
        ``(batch, vocab)`` full scores ``h W^T + b``.
    weights:
        ``(batch, vocab)`` proximity weights, nonzero only on each row's
        K-nearest cells.
    candidate_bias:
        ``(batch, vocab)`` additive mask: 0 on candidate cells (K nearest
        plus noise), a large negative value elsewhere.
    """
    weights = np.asarray(weights)
    candidate_bias = np.asarray(candidate_bias)
    if weights.shape != logits.shape or candidate_bias.shape != logits.shape:
        raise ValueError("weights/candidate_bias must match logits shape")
    restricted = logits + Tensor(candidate_bias)
    log_z = logsumexp(restricted, axis=1, keepdims=True)
    per_example = -((logits - log_z) * Tensor(weights)).sum(axis=1)
    return _masked_mean(per_example, mask)


def sampled_weighted_loss(
    hidden: Tensor,
    proj_weight: Tensor,
    candidates: np.ndarray,
    weights: np.ndarray,
    mask: Optional[np.ndarray] = None,
    proj_bias: Optional[Tensor] = None,
) -> Tensor:
    """``L3`` — approximate spatial-proximity loss with sampled softmax (Eq. 7).

    For each row ``b`` the candidate set ``NO = NK(y_t) ∪ O(y_t)`` contains
    the K nearest cells of the target (carrying proximity weights) followed
    by noise cells (weight 0).  The partition function is computed over the
    candidate set only, which is the NCE-flavoured approximation the paper
    uses to reduce training cost from O(|y|·|V|) to O(|y|).

    Parameters
    ----------
    hidden:
        ``(batch, hidden)`` decoder states ``h_t``.
    proj_weight:
        ``(vocab, hidden)`` output projection; row ``u`` is ``W_u``.
    candidates:
        ``(batch, M)`` integer cell ids (K nearest + noise).
    weights:
        ``(batch, M)`` proximity weights; zero on noise columns; each row
        sums to 1 over the K-nearest block.
    mask:
        Optional ``(batch,)`` 0/1 padding mask.
    proj_bias:
        Optional ``(vocab,)`` bias added to the gathered logits.
    """
    candidates = np.asarray(candidates, dtype=np.int64)
    weights = np.asarray(weights, dtype=float)
    if candidates.shape != weights.shape:
        raise ValueError("candidates and weights must have the same shape")
    batch, _ = candidates.shape
    if hidden.shape[0] != batch:
        raise ValueError("hidden batch size does not match candidates")

    rows = proj_weight.take_rows(candidates)           # (batch, M, hidden)
    h = hidden.reshape(batch, 1, hidden.shape[1])      # (batch, 1, hidden)
    logits = (rows * h).sum(axis=2)                    # (batch, M)
    if proj_bias is not None:
        logits = logits + proj_bias.take_rows(candidates)
    log_z = logsumexp(logits, axis=1, keepdims=True)   # (batch, 1)
    per_example = -((logits - log_z) * Tensor(weights)).sum(axis=1)
    return _masked_mean(per_example, mask)
