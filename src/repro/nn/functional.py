"""Composite differentiable functions built from Tensor primitives."""

from __future__ import annotations


from .tensor import Tensor


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - x.max_detached(axis=axis, keepdims=True)
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``.

    Subtracting the (detached) max is the standard stabilization; because
    the subtracted value is constant with respect to the inputs of the
    softmax ratio, gradients are unchanged.
    """
    shifted = x - x.max_detached(axis=axis, keepdims=True)
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def logsumexp(x: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    """Stable log-sum-exp reduction along ``axis``."""
    maxes = x.max_detached(axis=axis, keepdims=True)
    out = (x - maxes).exp().sum(axis=axis, keepdims=True).log() + maxes
    if not keepdims:
        shape = list(out.shape)
        del shape[axis if axis >= 0 else len(shape) + axis]
        out = out.reshape(tuple(shape))
    return out


def linear_no_bias(x: Tensor, weight: Tensor) -> Tensor:
    """``x @ weight.T`` — projection onto vocabulary logits.

    ``weight`` rows are per-token output vectors, matching the paper's
    ``W_u^T h_t`` notation.
    """
    return x @ weight.T
