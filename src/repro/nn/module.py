"""Parameter containers and the ``Module`` base class.

Mirrors the familiar torch-style API (``parameters()``, ``zero_grad()``,
``state_dict()`` / ``load_state_dict()``, ``train()`` / ``eval()``) on top
of the numpy autograd engine in :mod:`repro.nn.tensor`.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from .tensor import Tensor


class Parameter(Tensor):
    """A tensor that is a learnable parameter of a :class:`Module`."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for neural network components.

    Sub-modules and parameters assigned as attributes are discovered
    automatically, so ``state_dict`` and ``parameters`` work without any
    registration boilerplate.
    """

    def __init__(self):
        self.training = True

    # ------------------------------------------------------------------
    # Parameter / module discovery
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, value in vars(self).items():
            if isinstance(value, Parameter):
                yield prefix + name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix + name + ".")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(f"{prefix}{name}.{i}.")
                    elif isinstance(item, Parameter):
                        yield f"{prefix}{name}.{i}", item

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    # ------------------------------------------------------------------
    # Training utilities
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in params.items():
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"expected {param.data.shape}, got {value.shape}"
                )
            param.data = value.copy()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError
