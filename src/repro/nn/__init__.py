"""Neural-network substrate: numpy autograd, layers, GRU, losses, optimizers.

This package replaces the paper's PyTorch dependency with a from-scratch
implementation (see DESIGN.md §2).  Public surface:

* :class:`Tensor` plus :func:`concat` / :func:`stack` — autograd arrays.
* :class:`Module` / :class:`Parameter` — model building blocks.
* :class:`Linear`, :class:`Embedding`, :class:`Dropout`, :class:`GRUCell`,
  :class:`GRU` — layers.
* :func:`nll_loss` (L1), :func:`weighted_nll_loss` (L2),
  :func:`sampled_weighted_loss` (L3) — the paper's decoder losses.
* :class:`SGD`, :class:`Adam`, :func:`clip_grad_norm` — optimization.
* :func:`save_checkpoint` / :func:`load_checkpoint` — persistence.
"""

from . import functional, init
from .layers import Dropout, Embedding, Linear
from .loss import (masked_sampled_loss, nll_loss, sampled_weighted_loss,
                   weighted_nll_loss)
from .module import Module, Parameter
from .optim import SGD, Adam, Optimizer, clip_grad_norm
from .lstm import LSTM, LSTMCell, lstm_layer_forward
from .rnn import GRU, GRUCell, gru_layer_forward
from .serialization import load_checkpoint, save_checkpoint
from .tensor import (Tensor, concat, get_default_dtype, ones,
                     set_default_dtype, stack, where_const, zeros)

__all__ = [
    "Adam",
    "Dropout",
    "Embedding",
    "GRU",
    "GRUCell",
    "LSTM",
    "LSTMCell",
    "Linear",
    "Module",
    "Optimizer",
    "Parameter",
    "SGD",
    "Tensor",
    "clip_grad_norm",
    "concat",
    "functional",
    "get_default_dtype",
    "gru_layer_forward",
    "set_default_dtype",
    "init",
    "lstm_layer_forward",
    "load_checkpoint",
    "masked_sampled_loss",
    "nll_loss",
    "ones",
    "sampled_weighted_loss",
    "save_checkpoint",
    "stack",
    "weighted_nll_loss",
    "where_const",
    "zeros",
]
