"""Gated recurrent units: ``GRUCell`` and a multi-layer ``GRU``.

The paper uses a 3-layer GRU for both the encoder and the decoder
(Section V-B).  The implementation follows the standard (cuDNN/PyTorch)
gate formulation:

    r = sigmoid(W_ir x + b_ir + W_hr h + b_hr)
    z = sigmoid(W_iz x + b_iz + W_hz h + b_hz)
    n = tanh(W_in x + b_in + r * (W_hn h + b_hn))
    h' = (1 - z) * n + z * h

Variable-length mini-batches are handled with a step mask: on padded
steps a sequence's hidden state is carried through unchanged, so the
final state is the state at each sequence's true last token.

Two execution paths are provided:

* :meth:`GRU.forward` — the step-wise reference path (one fused tape
  node per step per layer).  It remains the implementation of record
  for single-step decoding (greedy/beam search) and for parity tests.
* :meth:`GRU.forward_sequence` / :func:`gru_layer_forward` — the
  sequence-fused path used by training and encoding: the input-to-hidden
  projection of all timesteps is hoisted into one ``(T*B, in) @ (in, 3H)``
  GEMM, the recurrence is a tight numpy loop, and the whole layer records
  a *single* tape node whose backward runs BPTT analytically.  This
  collapses ~T*L autograd nodes per batch to L.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy.special import expit

from . import init
from .layers import Dropout
from .module import Module, Parameter
from .tensor import Tensor, where_const


def _sigmoid(x: np.ndarray) -> np.ndarray:
    # Clipping keeps exp() finite when training diverges (huge gate inputs
    # saturate to exactly 0/1 anyway).
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


def _sigmoid_(x: np.ndarray) -> np.ndarray:
    """In-place sigmoid for the fused kernels.

    ``scipy.special.expit`` (already a hard dependency via the spatial
    module) is a single C ufunc with safe saturation, versus the six numpy
    calls an explicit ``1/(1+exp(-x))`` chain costs per invocation — that
    Python dispatch overhead is measurable at T calls per layer pass.
    """
    return expit(x, out=x)


def gru_cell_forward(x: Tensor, h: Tensor, w_ih: Tensor, w_hh: Tensor,
                     b_ih: Tensor, b_hh: Tensor) -> Tensor:
    """Fused GRU step with a hand-derived backward pass.

    A GRU step decomposes into ~20 primitive autograd nodes; on CPU the
    per-node Python overhead dominates training time, so the whole step is
    implemented as a single tape node with the analytic gradient.  The
    numeric gradient check in the test suite pins the derivation.
    """
    hidden = h.data.shape[1]
    gi = x.data @ w_ih.data + b_ih.data
    gh = h.data @ w_hh.data + b_hh.data
    reset = _sigmoid(gi[:, :hidden] + gh[:, :hidden])
    update = _sigmoid(gi[:, hidden:2 * hidden] + gh[:, hidden:2 * hidden])
    gh_n = gh[:, 2 * hidden:]
    candidate = np.tanh(gi[:, 2 * hidden:] + reset * gh_n)
    new_h = (1.0 - update) * candidate + update * h.data

    parents = (x, h, w_ih, w_hh, b_ih, b_hh)
    out = Tensor._make(new_h, parents, "gru_cell")
    if out.requires_grad:

        def backward(grad):
            d_update = grad * (h.data - candidate)
            d_candidate = grad * (1.0 - update)
            dn_pre = d_candidate * (1.0 - candidate ** 2)
            d_reset = dn_pre * gh_n
            dz_pre = d_update * update * (1.0 - update)
            dr_pre = d_reset * reset * (1.0 - reset)
            d_gi = np.concatenate([dr_pre, dz_pre, dn_pre], axis=1)
            d_gh = np.concatenate([dr_pre, dz_pre, dn_pre * reset], axis=1)
            if x.requires_grad:
                x._accumulate(d_gi @ w_ih.data.T)
            if h.requires_grad:
                h._accumulate(grad * update + d_gh @ w_hh.data.T)
            if w_ih.requires_grad:
                w_ih._accumulate(x.data.T @ d_gi)
            if w_hh.requires_grad:
                w_hh._accumulate(h.data.T @ d_gh)
            if b_ih.requires_grad:
                b_ih._accumulate(d_gi.sum(axis=0))
            if b_hh.requires_grad:
                b_hh._accumulate(d_gh.sum(axis=0))

        out._backward = backward
    return out


def _sequence_mask(mask, t_steps: int, batch: int, dtype
                   ) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
    """Normalize a ``(T, B)`` step mask for the fused kernels.

    Returns ``(mask_f, padded)`` where ``mask_f`` is a ``(T, B, 1)`` float
    array in the compute dtype and ``padded`` is a ``(T,)`` bool array
    flagging steps that contain padding (all-real steps skip the masking
    math, mirroring the step-wise path).  Both are ``None`` when every
    position is real.
    """
    if mask is None:
        return None, None
    mask = np.asarray(mask)
    if mask.shape != (t_steps, batch):
        raise ValueError(
            f"mask shape {mask.shape} does not match sequence ({t_steps}, {batch})")
    real = mask.astype(bool)
    if real.all():
        return None, None
    return mask.astype(dtype).reshape(t_steps, batch, 1), ~real.all(axis=1)


def gru_layer_forward(x_seq: Tensor, h0: Optional[Tensor],
                      w_ih: Tensor, w_hh: Tensor, b_ih: Tensor, b_hh: Tensor,
                      mask: Optional[np.ndarray] = None
                      ) -> Tuple[Tensor, Tensor]:
    """Sequence-fused GRU layer: one tape node for a whole ``(T, B, in)`` pass.

    The input projection for all timesteps runs as a single GEMM, the
    recurrence is a plain numpy loop saving gate activations, and the
    backward closure backpropagates through time analytically (the numeric
    gradient check in the test suite pins the derivation against the
    step-wise reference cells).

    Parameters
    ----------
    x_seq:
        ``(T, batch, input)`` inputs for every step.
    h0:
        ``(batch, hidden)`` initial state; zeros when ``None``.
    mask:
        Optional ``(T, batch)`` array of 0/1; where 0 the previous hidden
        state is carried through, exactly like :meth:`GRU.forward`.

    Returns
    -------
    out_seq:
        ``(T, batch, hidden)`` hidden states after every step (padding
        carries the previous state, so ``out_seq[-1]`` is each sequence's
        state at its true last token).
    h_last:
        ``(batch, hidden)`` final state, a cheap view node on ``out_seq``.
    """
    if x_seq.ndim != 3:
        raise ValueError(f"x_seq must be (T, batch, input), got {x_seq.shape}")
    t_steps, batch, _ = x_seq.shape
    hidden = w_hh.shape[0]
    two_h = 2 * hidden
    w_hh_d = w_hh.data
    dtype = x_seq.data.dtype
    if h0 is None:
        h0 = Tensor(np.zeros((batch, hidden), dtype=dtype))
    mask_f, padded = _sequence_mask(mask, t_steps, batch, dtype)

    # (a) hoisted input-to-hidden projection: one (T*B, in) @ (in, 3H) GEMM.
    # b_hh broadcasts into the same slab for the r/z gates; the candidate
    # gate needs gh_n = (h @ W_hn + b_hn) *separately* (it is scaled by r),
    # so b_hh's last third must stay out of gi.
    bias = b_ih.data.copy()
    bias[:two_h] += b_hh.data[:two_h]
    b_hh_n = b_hh.data[two_h:]
    gi = (x_seq.data.reshape(t_steps * batch, -1) @ w_ih.data
          + bias).reshape(t_steps, batch, 3 * hidden)

    # (b) recurrence: tight numpy loop with in-place ufuncs; the reset and
    # update gates activate as one (B, 2H) slab and everything the backward
    # needs is written straight into its save slot.
    hs = np.empty((t_steps + 1, batch, hidden), dtype=dtype)  # hs[t] = h_{t-1}
    hs[0] = h0.data
    rzs = np.empty((t_steps, batch, two_h), dtype=dtype)
    cands = np.empty((t_steps, batch, hidden), dtype=dtype)
    gh_news = np.empty_like(cands)
    gh = np.empty((batch, 3 * hidden), dtype=dtype)
    tmp = np.empty((batch, hidden), dtype=dtype)
    for t in range(t_steps):
        h_prev = hs[t]
        gi_t = gi[t]
        np.matmul(h_prev, w_hh_d, out=gh)
        rz = rzs[t]
        np.add(gi_t[:, :two_h], gh[:, :two_h], out=rz)
        _sigmoid_(rz)
        reset = rz[:, :hidden]
        update = rz[:, hidden:]
        gh_n = gh_news[t]
        np.add(gh[:, two_h:], b_hh_n, out=gh_n)
        candidate = cands[t]
        np.multiply(reset, gh_n, out=candidate)
        candidate += gi_t[:, two_h:]
        np.tanh(candidate, out=candidate)
        new_h = hs[t + 1]
        # h' = (1-z)*n + z*h = n + z*(h - n)
        np.subtract(h_prev, candidate, out=tmp)
        tmp *= update
        np.add(candidate, tmp, out=new_h)
        if mask_f is not None and padded[t]:
            # masked h' = h + m*(h' - h): carry the previous state through
            new_h -= h_prev
            new_h *= mask_f[t]
            new_h += h_prev

    parents = (x_seq, h0, w_ih, w_hh, b_ih, b_hh)
    out_seq = Tensor._make(hs[1:], parents, "gru_layer")
    if out_seq.requires_grad:

        def backward(grad):
            # (c) whole-layer BPTT with the hand-derived per-step gradient.
            # Everything that does not depend on the running dh — the local
            # gate-derivative factors — is precomputed as (T, B, H) slabs in
            # a handful of big ufunc calls, so the sequential loop is just
            # the recurrent matmul plus a few multiplies (per-call overhead
            # is what dominates at these sizes, not FLOPs).
            gdtype = grad.dtype
            resets = rzs[:, :, :hidden]
            updates = rzs[:, :, hidden:]
            big = np.empty((t_steps, batch, hidden), dtype=gdtype)
            # n_fac = 1 - n^2  (dn_pre = dh*(1-z) * n_fac)
            n_fac = np.empty_like(big)
            np.multiply(cands, cands, out=n_fac)
            np.subtract(1.0, n_fac, out=n_fac)
            # z_fac = (h_prev - n) * z*(1-z)  (dz_pre = dh * z_fac)
            z_fac = np.empty_like(big)
            np.subtract(hs[:t_steps], cands, out=z_fac)
            np.subtract(1.0, updates, out=big)
            big *= updates
            z_fac *= big
            # r_fac = gh_n * r*(1-r)  (dr_pre = dn_pre * r_fac)
            r_fac = np.empty_like(big)
            np.subtract(1.0, resets, out=big)
            big *= resets
            np.multiply(gh_news, big, out=r_fac)

            dh = np.zeros((batch, hidden), dtype=gdtype)
            d_gi = np.empty((t_steps, batch, 3 * hidden), dtype=gdtype)
            d_gh = np.empty_like(d_gi)
            buf = np.empty((batch, hidden), dtype=gdtype)
            # One contiguous copy beats T strided-B GEMMs.
            w_hh_t = np.ascontiguousarray(w_hh_d.T)
            for t in range(t_steps - 1, -1, -1):
                dh += grad[t]
                if mask_f is not None and padded[t]:
                    m = mask_f[t]
                    dh_carry = dh * (1.0 - m)
                    dh *= m
                else:
                    dh_carry = None
                d_gi_t = d_gi[t]
                dr_pre = d_gi_t[:, :hidden]
                dz_pre = d_gi_t[:, hidden:two_h]
                dn_pre = d_gi_t[:, two_h:]
                # buf = dh*z: both the (1-z) complement and the direct
                # h_{t-1} term of the recurrence.
                np.multiply(dh, updates[t], out=buf)
                np.subtract(dh, buf, out=dn_pre)
                dn_pre *= n_fac[t]
                np.multiply(dh, z_fac[t], out=dz_pre)
                np.multiply(dn_pre, r_fac[t], out=dr_pre)
                # d_gh = [dr_pre, dz_pre, dn_pre * r]
                d_gh_t = d_gh[t]
                d_gh_t[:, :two_h] = d_gi_t[:, :two_h]
                np.multiply(dn_pre, resets[t], out=d_gh_t[:, two_h:])
                # dh_{t-1} = dh*z + d_gh @ W_hh^T (+ masked carry)
                np.matmul(d_gh_t, w_hh_t, out=dh)
                dh += buf
                if dh_carry is not None:
                    dh += dh_carry
            flat_d_gi = d_gi.reshape(t_steps * batch, 3 * hidden)
            flat_d_gh = d_gh.reshape(t_steps * batch, 3 * hidden)
            if x_seq.requires_grad:
                x_seq._accumulate(
                    (flat_d_gi @ w_ih.data.T).reshape(x_seq.shape))
            if h0.requires_grad:
                h0._accumulate(dh)
            if w_ih.requires_grad:
                w_ih._accumulate(
                    x_seq.data.reshape(t_steps * batch, -1).T @ flat_d_gi)
            if w_hh.requires_grad:
                w_hh._accumulate(
                    hs[:t_steps].reshape(t_steps * batch, hidden).T
                    @ flat_d_gh)
            if b_ih.requires_grad:
                b_ih._accumulate(flat_d_gi.sum(axis=0))
            if b_hh.requires_grad:
                b_hh._accumulate(flat_d_gh.sum(axis=0))

        out_seq._backward = backward
    return out_seq, out_seq[-1]


class GRUCell(Module):
    """Single GRU step.  Gate weights are fused into one matmul per input."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        # Columns are ordered [reset | update | new].
        self.w_ih = Parameter(init.xavier_uniform(rng, (input_size, 3 * hidden_size)))
        self.w_hh = Parameter(np.concatenate(
            [init.orthogonal(rng, (hidden_size, hidden_size)) for _ in range(3)],
            axis=1,
        ))
        self.b_ih = Parameter(init.zeros((3 * hidden_size,)))
        self.b_hh = Parameter(init.zeros((3 * hidden_size,)))

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        return gru_cell_forward(x, h, self.w_ih, self.w_hh,
                                self.b_ih, self.b_hh)


class GRU(Module):
    """Multi-layer GRU over a sequence of per-step inputs.

    Parameters
    ----------
    input_size, hidden_size, num_layers:
        Architecture; the paper defaults to ``hidden_size=256`` and
        ``num_layers=3``.
    dropout:
        Dropout applied to the inputs of layers after the first
        (standard stacked-RNN regularization); inactive in eval mode.
    """

    def __init__(self, input_size: int, hidden_size: int, num_layers: int = 1,
                 dropout: float = 0.0, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.cells = [
            GRUCell(input_size if layer == 0 else hidden_size, hidden_size, rng=rng)
            for layer in range(num_layers)
        ]
        self.dropout = Dropout(dropout, rng=rng)

    def initial_state(self, batch_size: int) -> List[Tensor]:
        return [Tensor(np.zeros((batch_size, self.hidden_size)))
                for _ in range(self.num_layers)]

    def forward(
        self,
        steps: Sequence[Tensor],
        h0: Optional[List[Tensor]] = None,
        mask: Optional[np.ndarray] = None,
    ) -> Tuple[List[Tensor], List[Tensor]]:
        """Run the stack over ``steps``.

        Parameters
        ----------
        steps:
            Sequence of ``(batch, input_size)`` tensors, one per time step.
        h0:
            Initial hidden state per layer; zeros when omitted.
        mask:
            Optional ``(T, batch)`` array of 0/1; where 0, the previous
            hidden state is carried through (padding).

        Returns
        -------
        outputs:
            List of top-layer hidden states, one ``(batch, hidden)`` per step.
        state:
            Final hidden state per layer.
        """
        if not steps:
            raise ValueError("GRU.forward requires at least one step")
        batch = steps[0].shape[0]
        state = list(h0) if h0 is not None else self.initial_state(batch)
        if len(state) != self.num_layers:
            raise ValueError(
                f"h0 has {len(state)} layers, expected {self.num_layers}")
        outputs: List[Tensor] = []
        for t, x in enumerate(steps):
            step_mask = None
            if mask is not None:
                row = np.asarray(mask[t], dtype=bool)
                if not row.all():  # all-real steps skip the masking node
                    step_mask = row.reshape(batch, 1)
            layer_input = x
            for layer, cell in enumerate(self.cells):
                if layer > 0:
                    layer_input = self.dropout(layer_input)
                new_h = cell(layer_input, state[layer])
                if step_mask is not None:
                    new_h = where_const(step_mask, new_h, state[layer])
                state[layer] = new_h
                layer_input = new_h
            outputs.append(state[-1])
        return outputs, state

    def forward_sequence(
        self,
        x_seq: Tensor,
        h0: Optional[List[Tensor]] = None,
        mask: Optional[np.ndarray] = None,
    ) -> Tuple[Tensor, List[Tensor]]:
        """Sequence-fused forward over a whole ``(T, batch, input)`` tensor.

        Equivalent to :meth:`forward` on the per-step slices of ``x_seq``
        but records one tape node per layer (see :func:`gru_layer_forward`);
        this is the fast path used by training and batch encoding.

        Returns
        -------
        out_seq:
            ``(T, batch, hidden)`` top-layer hidden states.
        state:
            Final hidden state per layer.
        """
        if x_seq.ndim != 3 or x_seq.shape[0] < 1:
            raise ValueError("forward_sequence requires a (T, batch, input) "
                             f"tensor with T >= 1, got shape {x_seq.shape}")
        batch = x_seq.shape[1]
        state = list(h0) if h0 is not None else self.initial_state(batch)
        if len(state) != self.num_layers:
            raise ValueError(
                f"h0 has {len(state)} layers, expected {self.num_layers}")
        layer_input = x_seq
        for layer, cell in enumerate(self.cells):
            if layer > 0:
                layer_input = self.dropout(layer_input)
            layer_input, state[layer] = gru_layer_forward(
                layer_input, state[layer], cell.w_ih, cell.w_hh,
                cell.b_ih, cell.b_hh, mask=mask)
        return layer_input, state
