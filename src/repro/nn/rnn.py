"""Gated recurrent units: ``GRUCell`` and a multi-layer ``GRU``.

The paper uses a 3-layer GRU for both the encoder and the decoder
(Section V-B).  The implementation follows the standard (cuDNN/PyTorch)
gate formulation:

    r = sigmoid(W_ir x + b_ir + W_hr h + b_hr)
    z = sigmoid(W_iz x + b_iz + W_hz h + b_hz)
    n = tanh(W_in x + b_in + r * (W_hn h + b_hn))
    h' = (1 - z) * n + z * h

Variable-length mini-batches are handled with a step mask: on padded
steps a sequence's hidden state is carried through unchanged, so the
final state is the state at each sequence's true last token.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from . import init
from .layers import Dropout
from .module import Module, Parameter
from .tensor import Tensor, where_const


def _sigmoid(x: np.ndarray) -> np.ndarray:
    # Clipping keeps exp() finite when training diverges (huge gate inputs
    # saturate to exactly 0/1 anyway).
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


def gru_cell_forward(x: Tensor, h: Tensor, w_ih: Tensor, w_hh: Tensor,
                     b_ih: Tensor, b_hh: Tensor) -> Tensor:
    """Fused GRU step with a hand-derived backward pass.

    A GRU step decomposes into ~20 primitive autograd nodes; on CPU the
    per-node Python overhead dominates training time, so the whole step is
    implemented as a single tape node with the analytic gradient.  The
    numeric gradient check in the test suite pins the derivation.
    """
    hidden = h.data.shape[1]
    gi = x.data @ w_ih.data + b_ih.data
    gh = h.data @ w_hh.data + b_hh.data
    reset = _sigmoid(gi[:, :hidden] + gh[:, :hidden])
    update = _sigmoid(gi[:, hidden:2 * hidden] + gh[:, hidden:2 * hidden])
    gh_n = gh[:, 2 * hidden:]
    candidate = np.tanh(gi[:, 2 * hidden:] + reset * gh_n)
    new_h = (1.0 - update) * candidate + update * h.data

    parents = (x, h, w_ih, w_hh, b_ih, b_hh)
    out = Tensor._make(new_h, parents, "gru_cell")
    if out.requires_grad:

        def backward(grad):
            d_update = grad * (h.data - candidate)
            d_candidate = grad * (1.0 - update)
            dn_pre = d_candidate * (1.0 - candidate ** 2)
            d_reset = dn_pre * gh_n
            dz_pre = d_update * update * (1.0 - update)
            dr_pre = d_reset * reset * (1.0 - reset)
            d_gi = np.concatenate([dr_pre, dz_pre, dn_pre], axis=1)
            d_gh = np.concatenate([dr_pre, dz_pre, dn_pre * reset], axis=1)
            if x.requires_grad:
                x._accumulate(d_gi @ w_ih.data.T)
            if h.requires_grad:
                h._accumulate(grad * update + d_gh @ w_hh.data.T)
            if w_ih.requires_grad:
                w_ih._accumulate(x.data.T @ d_gi)
            if w_hh.requires_grad:
                w_hh._accumulate(h.data.T @ d_gh)
            if b_ih.requires_grad:
                b_ih._accumulate(d_gi.sum(axis=0))
            if b_hh.requires_grad:
                b_hh._accumulate(d_gh.sum(axis=0))

        out._backward = backward
    return out


class GRUCell(Module):
    """Single GRU step.  Gate weights are fused into one matmul per input."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        # Columns are ordered [reset | update | new].
        self.w_ih = Parameter(init.xavier_uniform(rng, (input_size, 3 * hidden_size)))
        self.w_hh = Parameter(np.concatenate(
            [init.orthogonal(rng, (hidden_size, hidden_size)) for _ in range(3)],
            axis=1,
        ))
        self.b_ih = Parameter(init.zeros((3 * hidden_size,)))
        self.b_hh = Parameter(init.zeros((3 * hidden_size,)))

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        return gru_cell_forward(x, h, self.w_ih, self.w_hh,
                                self.b_ih, self.b_hh)


class GRU(Module):
    """Multi-layer GRU over a sequence of per-step inputs.

    Parameters
    ----------
    input_size, hidden_size, num_layers:
        Architecture; the paper defaults to ``hidden_size=256`` and
        ``num_layers=3``.
    dropout:
        Dropout applied to the inputs of layers after the first
        (standard stacked-RNN regularization); inactive in eval mode.
    """

    def __init__(self, input_size: int, hidden_size: int, num_layers: int = 1,
                 dropout: float = 0.0, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.cells = [
            GRUCell(input_size if layer == 0 else hidden_size, hidden_size, rng=rng)
            for layer in range(num_layers)
        ]
        self.dropout = Dropout(dropout, rng=rng)

    def initial_state(self, batch_size: int) -> List[Tensor]:
        return [Tensor(np.zeros((batch_size, self.hidden_size)))
                for _ in range(self.num_layers)]

    def forward(
        self,
        steps: Sequence[Tensor],
        h0: Optional[List[Tensor]] = None,
        mask: Optional[np.ndarray] = None,
    ) -> Tuple[List[Tensor], List[Tensor]]:
        """Run the stack over ``steps``.

        Parameters
        ----------
        steps:
            Sequence of ``(batch, input_size)`` tensors, one per time step.
        h0:
            Initial hidden state per layer; zeros when omitted.
        mask:
            Optional ``(T, batch)`` array of 0/1; where 0, the previous
            hidden state is carried through (padding).

        Returns
        -------
        outputs:
            List of top-layer hidden states, one ``(batch, hidden)`` per step.
        state:
            Final hidden state per layer.
        """
        if not steps:
            raise ValueError("GRU.forward requires at least one step")
        batch = steps[0].shape[0]
        state = list(h0) if h0 is not None else self.initial_state(batch)
        if len(state) != self.num_layers:
            raise ValueError(
                f"h0 has {len(state)} layers, expected {self.num_layers}")
        outputs: List[Tensor] = []
        for t, x in enumerate(steps):
            step_mask = None
            if mask is not None:
                row = np.asarray(mask[t], dtype=bool)
                if not row.all():  # all-real steps skip the masking node
                    step_mask = row.reshape(batch, 1)
            layer_input = x
            for layer, cell in enumerate(self.cells):
                if layer > 0:
                    layer_input = self.dropout(layer_input)
                new_h = cell(layer_input, state[layer])
                if step_mask is not None:
                    new_h = where_const(step_mask, new_h, state[layer])
                state[layer] = new_h
                layer_input = new_h
            outputs.append(state[-1])
        return outputs, state
