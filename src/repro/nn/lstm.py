"""LSTM cell and stack (fused, hand-derived backward).

The paper chooses GRU over LSTM because it is "as good as LSTM in
sequence modeling tasks, while much more efficient to compute"
(Section V-B, citing Chung et al. 2014).  We provide the LSTM anyway so
that claim can be tested: :class:`~repro.core.encoder_decoder.ModelConfig`
accepts ``rnn_type="lstm"`` and the ablation is one config flag away.

Gate formulation (PyTorch order i, f, g, o):

    i = sigmoid(W_ii x + b_ii + W_hi h + b_hi)
    f = sigmoid(W_if x + b_if + W_hf h + b_hf)
    g = tanh   (W_ig x + b_ig + W_hg h + b_hg)
    o = sigmoid(W_io x + b_io + W_ho h + b_ho)
    c' = f * c + i * g
    h' = o * tanh(c')

Like the GRU (see :mod:`repro.nn.rnn`), each step is a single fused
autograd node for CPU speed; the numeric gradient check in the test
suite pins the derivation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from . import init
from .layers import Dropout
from .module import Module, Parameter
from .rnn import _sigmoid
from .tensor import Tensor, where_const


def lstm_cell_forward(x: Tensor, h: Tensor, c: Tensor,
                      w_ih: Tensor, w_hh: Tensor,
                      b_ih: Tensor, b_hh: Tensor) -> Tuple[Tensor, Tensor]:
    """Fused LSTM step returning ``(h', c')`` with an analytic backward."""
    hidden = h.data.shape[1]
    gates = x.data @ w_ih.data + b_ih.data + h.data @ w_hh.data + b_hh.data
    i_gate = _sigmoid(gates[:, :hidden])
    f_gate = _sigmoid(gates[:, hidden:2 * hidden])
    g_gate = np.tanh(gates[:, 2 * hidden:3 * hidden])
    o_gate = _sigmoid(gates[:, 3 * hidden:])
    new_c = f_gate * c.data + i_gate * g_gate
    tanh_c = np.tanh(new_c)
    new_h = o_gate * tanh_c

    parents = (x, h, c, w_ih, w_hh, b_ih, b_hh)
    out_h = Tensor._make(new_h, parents, "lstm_cell_h")
    out_c = Tensor._make(new_c, parents, "lstm_cell_c")

    if out_h.requires_grad or out_c.requires_grad:
        # The two outputs share one backward: gradients are staged on the
        # output tensors and flushed when either backward fires.  Because
        # autograd calls each node's backward exactly once (topological
        # order) and both outputs share parents, we register separate
        # closures that each push their own contribution.

        def push(grad_h, grad_c_in):
            grad_c_total = grad_c_in + grad_h * o_gate * (1.0 - tanh_c ** 2)
            d_o = grad_h * tanh_c
            d_f = grad_c_total * c.data
            d_i = grad_c_total * g_gate
            d_g = grad_c_total * i_gate
            di_pre = d_i * i_gate * (1.0 - i_gate)
            df_pre = d_f * f_gate * (1.0 - f_gate)
            dg_pre = d_g * (1.0 - g_gate ** 2)
            do_pre = d_o * o_gate * (1.0 - o_gate)
            d_gates = np.concatenate([di_pre, df_pre, dg_pre, do_pre], axis=1)
            if x.requires_grad:
                x._accumulate(d_gates @ w_ih.data.T)
            if h.requires_grad:
                h._accumulate(d_gates @ w_hh.data.T)
            if c.requires_grad:
                c._accumulate(grad_c_total * f_gate)
            if w_ih.requires_grad:
                w_ih._accumulate(x.data.T @ d_gates)
            if w_hh.requires_grad:
                w_hh._accumulate(h.data.T @ d_gates)
            if b_ih.requires_grad:
                b_ih._accumulate(d_gates.sum(axis=0))
            if b_hh.requires_grad:
                b_hh._accumulate(d_gates.sum(axis=0))

        def backward_h(grad):
            push(grad, np.zeros_like(grad))

        def backward_c(grad):
            push(np.zeros_like(grad), grad)

        out_h._backward = backward_h
        out_c._backward = backward_c
    return out_h, out_c


class LSTMCell(Module):
    """Single LSTM step with fused gate weights."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_ih = Parameter(init.xavier_uniform(rng, (input_size, 4 * hidden_size)))
        self.w_hh = Parameter(np.concatenate(
            [init.orthogonal(rng, (hidden_size, hidden_size)) for _ in range(4)],
            axis=1,
        ))
        # Forget-gate bias of 1 is the classic stabilization.
        b = np.zeros(4 * hidden_size)
        b[hidden_size:2 * hidden_size] = 1.0
        self.b_ih = Parameter(b)
        self.b_hh = Parameter(init.zeros((4 * hidden_size,)))

    def forward(self, x: Tensor, h: Tensor, c: Tensor) -> Tuple[Tensor, Tensor]:
        return lstm_cell_forward(x, h, c, self.w_ih, self.w_hh,
                                 self.b_ih, self.b_hh)


class LSTM(Module):
    """Multi-layer LSTM over per-step inputs; API mirrors :class:`GRU`.

    ``forward`` returns ``(outputs, state)`` where ``state`` is a list of
    per-layer ``(h, c)`` tuples.  For interchangeability with the GRU in
    the encoder-decoder, :meth:`hidden_of` extracts only the ``h`` parts.
    """

    def __init__(self, input_size: int, hidden_size: int, num_layers: int = 1,
                 dropout: float = 0.0, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.cells = [
            LSTMCell(input_size if layer == 0 else hidden_size, hidden_size,
                     rng=rng)
            for layer in range(num_layers)
        ]
        self.dropout = Dropout(dropout, rng=rng)

    def initial_state(self, batch_size: int) -> List[Tuple[Tensor, Tensor]]:
        return [(Tensor(np.zeros((batch_size, self.hidden_size))),
                 Tensor(np.zeros((batch_size, self.hidden_size))))
                for _ in range(self.num_layers)]

    def forward(
        self,
        steps: Sequence[Tensor],
        h0: Optional[List[Tuple[Tensor, Tensor]]] = None,
        mask: Optional[np.ndarray] = None,
    ) -> Tuple[List[Tensor], List[Tuple[Tensor, Tensor]]]:
        if not steps:
            raise ValueError("LSTM.forward requires at least one step")
        batch = steps[0].shape[0]
        state = list(h0) if h0 is not None else self.initial_state(batch)
        if len(state) != self.num_layers:
            raise ValueError(
                f"h0 has {len(state)} layers, expected {self.num_layers}")
        outputs: List[Tensor] = []
        for t, x in enumerate(steps):
            step_mask = None
            if mask is not None:
                row = np.asarray(mask[t], dtype=bool)
                if not row.all():
                    step_mask = row.reshape(batch, 1)
            layer_input = x
            for layer, cell in enumerate(self.cells):
                if layer > 0:
                    layer_input = self.dropout(layer_input)
                h_prev, c_prev = state[layer]
                new_h, new_c = cell(layer_input, h_prev, c_prev)
                if step_mask is not None:
                    new_h = where_const(step_mask, new_h, h_prev)
                    new_c = where_const(step_mask, new_c, c_prev)
                state[layer] = (new_h, new_c)
                layer_input = new_h
            outputs.append(state[-1][0])
        return outputs, state

    @staticmethod
    def hidden_of(state: List[Tuple[Tensor, Tensor]]) -> List[Tensor]:
        """Extract the ``h`` component per layer (GRU-compatible shape)."""
        return [h for h, _ in state]
