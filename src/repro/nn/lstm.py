"""LSTM cell and stack (fused, hand-derived backward).

The paper chooses GRU over LSTM because it is "as good as LSTM in
sequence modeling tasks, while much more efficient to compute"
(Section V-B, citing Chung et al. 2014).  We provide the LSTM anyway so
that claim can be tested: :class:`~repro.core.encoder_decoder.ModelConfig`
accepts ``rnn_type="lstm"`` and the ablation is one config flag away.

Gate formulation (PyTorch order i, f, g, o):

    i = sigmoid(W_ii x + b_ii + W_hi h + b_hi)
    f = sigmoid(W_if x + b_if + W_hf h + b_hf)
    g = tanh   (W_ig x + b_ig + W_hg h + b_hg)
    o = sigmoid(W_io x + b_io + W_ho h + b_ho)
    c' = f * c + i * g
    h' = o * tanh(c')

Like the GRU (see :mod:`repro.nn.rnn`), each step is a single fused
autograd node for CPU speed; the numeric gradient check in the test
suite pins the derivation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from . import init
from .layers import Dropout
from .module import Module, Parameter
from .rnn import _sequence_mask, _sigmoid, _sigmoid_
from .tensor import Tensor, where_const


def lstm_cell_forward(x: Tensor, h: Tensor, c: Tensor,
                      w_ih: Tensor, w_hh: Tensor,
                      b_ih: Tensor, b_hh: Tensor) -> Tuple[Tensor, Tensor]:
    """Fused LSTM step returning ``(h', c')`` with an analytic backward."""
    hidden = h.data.shape[1]
    gates = x.data @ w_ih.data + b_ih.data + h.data @ w_hh.data + b_hh.data
    i_gate = _sigmoid(gates[:, :hidden])
    f_gate = _sigmoid(gates[:, hidden:2 * hidden])
    g_gate = np.tanh(gates[:, 2 * hidden:3 * hidden])
    o_gate = _sigmoid(gates[:, 3 * hidden:])
    new_c = f_gate * c.data + i_gate * g_gate
    tanh_c = np.tanh(new_c)
    new_h = o_gate * tanh_c

    parents = (x, h, c, w_ih, w_hh, b_ih, b_hh)
    out_h = Tensor._make(new_h, parents, "lstm_cell_h")
    out_c = Tensor._make(new_c, parents, "lstm_cell_c")

    if out_h.requires_grad or out_c.requires_grad:
        # The two outputs share one backward: gradients are staged on the
        # output tensors and flushed when either backward fires.  Because
        # autograd calls each node's backward exactly once (topological
        # order) and both outputs share parents, we register separate
        # closures that each push their own contribution.

        def push(grad_h, grad_c_in):
            grad_c_total = grad_c_in + grad_h * o_gate * (1.0 - tanh_c ** 2)
            d_o = grad_h * tanh_c
            d_f = grad_c_total * c.data
            d_i = grad_c_total * g_gate
            d_g = grad_c_total * i_gate
            di_pre = d_i * i_gate * (1.0 - i_gate)
            df_pre = d_f * f_gate * (1.0 - f_gate)
            dg_pre = d_g * (1.0 - g_gate ** 2)
            do_pre = d_o * o_gate * (1.0 - o_gate)
            d_gates = np.concatenate([di_pre, df_pre, dg_pre, do_pre], axis=1)
            if x.requires_grad:
                x._accumulate(d_gates @ w_ih.data.T)
            if h.requires_grad:
                h._accumulate(d_gates @ w_hh.data.T)
            if c.requires_grad:
                c._accumulate(grad_c_total * f_gate)
            if w_ih.requires_grad:
                w_ih._accumulate(x.data.T @ d_gates)
            if w_hh.requires_grad:
                w_hh._accumulate(h.data.T @ d_gates)
            if b_ih.requires_grad:
                b_ih._accumulate(d_gates.sum(axis=0))
            if b_hh.requires_grad:
                b_hh._accumulate(d_gates.sum(axis=0))

        def backward_h(grad):
            push(grad, np.zeros_like(grad))

        def backward_c(grad):
            push(np.zeros_like(grad), grad)

        out_h._backward = backward_h
        out_c._backward = backward_c
    return out_h, out_c


def lstm_layer_forward(x_seq: Tensor, h0: Optional[Tensor], c0: Optional[Tensor],
                       w_ih: Tensor, w_hh: Tensor, b_ih: Tensor, b_hh: Tensor,
                       mask: Optional[np.ndarray] = None
                       ) -> Tuple[Tensor, Tensor, Tensor]:
    """Sequence-fused LSTM layer; the LSTM sibling of
    :func:`~repro.nn.rnn.gru_layer_forward`.

    One ``(T*B, in) @ (in, 4H)`` GEMM hoists the input projection, the
    recurrence runs as a tight numpy loop saving gate activations, and a
    single hand-derived BPTT closure backpropagates the whole layer.

    Returns ``(out_seq, h_last, c_last)``.  ``h_last`` is a view node on
    ``out_seq`` (padding carries states, so ``out_seq[-1]`` is the state at
    each sequence's true last token).  ``c_last`` is a lightweight child
    node of ``out_seq`` whose gradient is staged into the shared BPTT pass,
    so using any combination of the three outputs costs one backward sweep.
    """
    if x_seq.ndim != 3:
        raise ValueError(f"x_seq must be (T, batch, input), got {x_seq.shape}")
    t_steps, batch, _ = x_seq.shape
    hidden = w_hh.shape[0]
    two_h, three_h = 2 * hidden, 3 * hidden
    w_hh_d = w_hh.data
    dtype = x_seq.data.dtype
    if h0 is None:
        h0 = Tensor(np.zeros((batch, hidden), dtype=dtype))
    if c0 is None:
        c0 = Tensor(np.zeros((batch, hidden), dtype=dtype))
    mask_f, padded = _sequence_mask(mask, t_steps, batch, dtype)

    # Hoisted input projection; both biases fold into the same slab because
    # the gate pre-activation is gi + b_ih + gh + b_hh.
    gi = (x_seq.data.reshape(t_steps * batch, -1) @ w_ih.data
          + (b_ih.data + b_hh.data)).reshape(t_steps, batch, 4 * hidden)

    # Recurrence with in-place ufuncs; gates_seq[t] ends up holding the
    # *activated* i|f|g|o slab the backward needs.
    hs = np.empty((t_steps + 1, batch, hidden), dtype=dtype)  # hs[t] = h_{t-1}
    cs = np.empty_like(hs)
    hs[0] = h0.data
    cs[0] = c0.data
    gates_seq = np.empty((t_steps, batch, 4 * hidden), dtype=dtype)
    tanh_cs = np.empty((t_steps, batch, hidden), dtype=dtype)  # pre-mask
    tmp = np.empty((batch, hidden), dtype=dtype)
    for t in range(t_steps):
        h_prev, c_prev = hs[t], cs[t]
        gates = gates_seq[t]
        np.matmul(h_prev, w_hh_d, out=gates)
        gates += gi[t]
        _sigmoid_(gates[:, :two_h])                    # i | f
        g_slab = gates[:, two_h:three_h]
        np.tanh(g_slab, out=g_slab)                    # g
        _sigmoid_(gates[:, three_h:])                  # o
        i_gate = gates[:, :hidden]
        f_gate = gates[:, hidden:two_h]
        o_gate = gates[:, three_h:]
        new_c = cs[t + 1]
        np.multiply(f_gate, c_prev, out=new_c)
        np.multiply(i_gate, g_slab, out=tmp)
        new_c += tmp
        tanh_c = tanh_cs[t]
        np.tanh(new_c, out=tanh_c)
        new_h = hs[t + 1]
        np.multiply(o_gate, tanh_c, out=new_h)
        if mask_f is not None and padded[t]:
            # masked x' = x + m*(x' - x): padding carries state through
            m = mask_f[t]
            new_h -= h_prev
            new_h *= m
            new_h += h_prev
            new_c -= c_prev
            new_c *= m
            new_c += c_prev

    parents = (x_seq, h0, c0, w_ih, w_hh, b_ih, b_hh)
    out_seq = Tensor._make(hs[1:], parents, "lstm_layer")
    c_last = Tensor._make(cs[t_steps], (out_seq,), "lstm_layer_c")
    if out_seq.requires_grad:
        staged_dc = [None]  # grad from c_last, consumed by out_seq's BPTT

        def backward_c(grad):
            staged_dc[0] = grad
            # c_last runs before out_seq in reverse-topological order (it is
            # a child); seeding a zero grad guarantees out_seq's backward
            # fires even when nothing else consumed out_seq.
            out_seq._accumulate(np.zeros_like(out_seq.data))

        def backward(grad):
            # Local gate-derivative factors do not depend on the running
            # dh/dc, so they precompute as (T, B, H) slabs in a few big
            # ufunc calls; the sequential loop keeps only the recurrent
            # matmul and five multiplies.
            gdtype = grad.dtype
            i_gates = gates_seq[:, :, :hidden]
            f_gates = gates_seq[:, :, hidden:two_h]
            g_gates = gates_seq[:, :, two_h:three_h]
            o_gates = gates_seq[:, :, three_h:]
            big = np.empty((t_steps, batch, hidden), dtype=gdtype)
            # ot_fac = o*(1-tanh_c^2)  (dc_total = dc + dh * ot_fac)
            ot_fac = np.empty_like(big)
            np.multiply(tanh_cs, tanh_cs, out=ot_fac)
            np.subtract(1.0, ot_fac, out=ot_fac)
            ot_fac *= o_gates
            # do_fac = tanh_c * o*(1-o)  (do = dh * do_fac)
            do_fac = np.empty_like(big)
            np.subtract(1.0, o_gates, out=big)
            big *= o_gates
            np.multiply(tanh_cs, big, out=do_fac)
            # i_fac = g * i*(1-i)  (di = dc_total * i_fac)
            i_fac = np.empty_like(big)
            np.subtract(1.0, i_gates, out=big)
            big *= i_gates
            np.multiply(g_gates, big, out=i_fac)
            # f_fac = c_prev * f*(1-f)  (df = dc_total * f_fac)
            f_fac = np.empty_like(big)
            np.subtract(1.0, f_gates, out=big)
            big *= f_gates
            np.multiply(cs[:t_steps], big, out=f_fac)
            # g_fac = i * (1-g^2)  (dg = dc_total * g_fac)
            g_fac = np.empty_like(big)
            np.multiply(g_gates, g_gates, out=g_fac)
            np.subtract(1.0, g_fac, out=g_fac)
            g_fac *= i_gates

            dh = np.zeros((batch, hidden), dtype=gdtype)
            dc = staged_dc[0]
            staged_dc[0] = None
            if dc is None:
                dc = np.zeros((batch, hidden), dtype=gdtype)
            else:
                dc = dc.copy()  # mutated in place below
            d_gates_seq = np.empty((t_steps, batch, 4 * hidden), dtype=gdtype)
            buf = np.empty((batch, hidden), dtype=gdtype)
            # One contiguous copy beats T strided-B GEMMs.
            w_hh_t = np.ascontiguousarray(w_hh_d.T)
            for t in range(t_steps - 1, -1, -1):
                dh += grad[t]
                if mask_f is not None and padded[t]:
                    m = mask_f[t]
                    dh_carry = dh * (1.0 - m)
                    dh *= m
                    dc_carry = dc * (1.0 - m)
                    dc *= m
                else:
                    dh_carry = None
                d_gates = d_gates_seq[t]
                np.multiply(dh, do_fac[t], out=d_gates[:, three_h:])
                np.multiply(dh, ot_fac[t], out=buf)
                dc += buf  # dc is now dc_total
                np.multiply(dc, i_fac[t], out=d_gates[:, :hidden])
                np.multiply(dc, f_fac[t], out=d_gates[:, hidden:two_h])
                np.multiply(dc, g_fac[t], out=d_gates[:, two_h:three_h])
                # dh_{t-1} = d_gates @ W_hh^T; dc_{t-1} = dc_total * f
                np.matmul(d_gates, w_hh_t, out=dh)
                dc *= f_gates[t]
                if dh_carry is not None:
                    dh += dh_carry
                    dc += dc_carry
            flat = d_gates_seq.reshape(t_steps * batch, 4 * hidden)
            if x_seq.requires_grad:
                x_seq._accumulate((flat @ w_ih.data.T).reshape(x_seq.shape))
            if h0.requires_grad:
                h0._accumulate(dh)
            if c0.requires_grad:
                c0._accumulate(dc)
            if w_ih.requires_grad:
                w_ih._accumulate(
                    x_seq.data.reshape(t_steps * batch, -1).T @ flat)
            if w_hh.requires_grad:
                w_hh._accumulate(
                    hs[:t_steps].reshape(t_steps * batch, hidden).T @ flat)
            # The biases enter the same pre-activation sum, so they share
            # the summed gate gradient.
            if b_ih.requires_grad or b_hh.requires_grad:
                db = flat.sum(axis=0)
                if b_ih.requires_grad:
                    b_ih._accumulate(db)
                if b_hh.requires_grad:
                    b_hh._accumulate(db)

        out_seq._backward = backward
        c_last._backward = backward_c
    return out_seq, out_seq[-1], c_last


class LSTMCell(Module):
    """Single LSTM step with fused gate weights."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_ih = Parameter(init.xavier_uniform(rng, (input_size, 4 * hidden_size)))
        self.w_hh = Parameter(np.concatenate(
            [init.orthogonal(rng, (hidden_size, hidden_size)) for _ in range(4)],
            axis=1,
        ))
        # Forget-gate bias of 1 is the classic stabilization.
        b = np.zeros(4 * hidden_size)
        b[hidden_size:2 * hidden_size] = 1.0
        self.b_ih = Parameter(b)
        self.b_hh = Parameter(init.zeros((4 * hidden_size,)))

    def forward(self, x: Tensor, h: Tensor, c: Tensor) -> Tuple[Tensor, Tensor]:
        return lstm_cell_forward(x, h, c, self.w_ih, self.w_hh,
                                 self.b_ih, self.b_hh)


class LSTM(Module):
    """Multi-layer LSTM over per-step inputs; API mirrors :class:`GRU`.

    ``forward`` returns ``(outputs, state)`` where ``state`` is a list of
    per-layer ``(h, c)`` tuples.  For interchangeability with the GRU in
    the encoder-decoder, :meth:`hidden_of` extracts only the ``h`` parts.
    """

    def __init__(self, input_size: int, hidden_size: int, num_layers: int = 1,
                 dropout: float = 0.0, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.cells = [
            LSTMCell(input_size if layer == 0 else hidden_size, hidden_size,
                     rng=rng)
            for layer in range(num_layers)
        ]
        self.dropout = Dropout(dropout, rng=rng)

    def initial_state(self, batch_size: int) -> List[Tuple[Tensor, Tensor]]:
        return [(Tensor(np.zeros((batch_size, self.hidden_size))),
                 Tensor(np.zeros((batch_size, self.hidden_size))))
                for _ in range(self.num_layers)]

    def forward(
        self,
        steps: Sequence[Tensor],
        h0: Optional[List[Tuple[Tensor, Tensor]]] = None,
        mask: Optional[np.ndarray] = None,
    ) -> Tuple[List[Tensor], List[Tuple[Tensor, Tensor]]]:
        if not steps:
            raise ValueError("LSTM.forward requires at least one step")
        batch = steps[0].shape[0]
        state = list(h0) if h0 is not None else self.initial_state(batch)
        if len(state) != self.num_layers:
            raise ValueError(
                f"h0 has {len(state)} layers, expected {self.num_layers}")
        outputs: List[Tensor] = []
        for t, x in enumerate(steps):
            step_mask = None
            if mask is not None:
                row = np.asarray(mask[t], dtype=bool)
                if not row.all():
                    step_mask = row.reshape(batch, 1)
            layer_input = x
            for layer, cell in enumerate(self.cells):
                if layer > 0:
                    layer_input = self.dropout(layer_input)
                h_prev, c_prev = state[layer]
                new_h, new_c = cell(layer_input, h_prev, c_prev)
                if step_mask is not None:
                    new_h = where_const(step_mask, new_h, h_prev)
                    new_c = where_const(step_mask, new_c, c_prev)
                state[layer] = (new_h, new_c)
                layer_input = new_h
            outputs.append(state[-1][0])
        return outputs, state

    def forward_sequence(
        self,
        x_seq: Tensor,
        h0: Optional[List[Tuple[Tensor, Tensor]]] = None,
        mask: Optional[np.ndarray] = None,
    ) -> Tuple[Tensor, List[Tuple[Tensor, Tensor]]]:
        """Sequence-fused forward; API mirrors :meth:`GRU.forward_sequence`.

        Returns ``(out_seq, state)`` where ``out_seq`` is the top layer's
        ``(T, batch, hidden)`` output and ``state`` holds per-layer
        ``(h, c)`` finals.
        """
        if x_seq.ndim != 3 or x_seq.shape[0] < 1:
            raise ValueError("forward_sequence requires a (T, batch, input) "
                             f"tensor with T >= 1, got shape {x_seq.shape}")
        batch = x_seq.shape[1]
        state = list(h0) if h0 is not None else self.initial_state(batch)
        if len(state) != self.num_layers:
            raise ValueError(
                f"h0 has {len(state)} layers, expected {self.num_layers}")
        layer_input = x_seq
        for layer, cell in enumerate(self.cells):
            if layer > 0:
                layer_input = self.dropout(layer_input)
            h_prev, c_prev = state[layer]
            layer_input, h_last, c_last = lstm_layer_forward(
                layer_input, h_prev, c_prev, cell.w_ih, cell.w_hh,
                cell.b_ih, cell.b_hh, mask=mask)
            state[layer] = (h_last, c_last)
        return layer_input, state

    @staticmethod
    def hidden_of(state: List[Tuple[Tensor, Tensor]]) -> List[Tensor]:
        """Extract the ``h`` component per layer (GRU-compatible shape)."""
        return [h for h, _ in state]
