"""Optimizers and gradient utilities.

The paper trains with Adam (initial learning rate 1e-3) and clips
gradients to a global norm of 5 (Section V-B).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from .module import Parameter


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the norm *before* clipping, which is useful for monitoring
    exploding gradients.
    """
    params = [p for p in parameters if p.grad is not None]
    if not params:
        return 0.0
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total


class Optimizer:
    """Base class: holds the parameter list and clears gradients."""

    def __init__(self, parameters: Iterable[Parameter]):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.grad = None

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.01,
                 momentum: float = 0.0):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.momentum = momentum
        self._velocity: Optional[List[np.ndarray]] = None

    def step(self) -> None:
        if self.momentum and self._velocity is None:
            self._velocity = [np.zeros_like(p.data) for p in self.parameters]
        for i, p in enumerate(self.parameters):
            if p.grad is None:
                continue
            if self.momentum:
                vel = self._velocity[i]
                vel *= self.momentum
                vel += p.grad
                p.data -= self.lr * vel
            else:
                p.data -= self.lr * p.grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-3,
                 betas=(0.9, 0.999), eps: float = 1e-8):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        b1, b2 = self.beta1, self.beta2
        correction1 = 1.0 - b1 ** self._step
        correction2 = 1.0 - b2 ** self._step
        for i, p in enumerate(self.parameters):
            if p.grad is None:
                continue
            m, v = self._m[i], self._v[i]
            m *= b1
            m += (1.0 - b1) * p.grad
            v *= b2
            v += (1.0 - b2) * (p.grad ** 2)
            m_hat = m / correction1
            v_hat = v / correction2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
