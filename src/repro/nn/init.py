"""Weight initialization schemes.

All initializers take an explicit ``numpy.random.Generator`` so that model
construction is fully deterministic given a seed.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def uniform(rng: np.random.Generator, shape: Tuple[int, ...], scale: float) -> np.ndarray:
    """Uniform initialization in ``[-scale, scale]``."""
    return rng.uniform(-scale, scale, size=shape)


def xavier_uniform(rng: np.random.Generator, shape: Tuple[int, ...]) -> np.ndarray:
    """Glorot/Xavier uniform initialization for 2-D weights.

    For non-2-D shapes, fan-in/fan-out default to the first and last axes.
    """
    fan_in = shape[0] if len(shape) > 0 else 1
    fan_out = shape[-1] if len(shape) > 1 else 1
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def orthogonal(rng: np.random.Generator, shape: Tuple[int, int]) -> np.ndarray:
    """Orthogonal initialization, the standard choice for recurrent weights."""
    if len(shape) != 2:
        raise ValueError("orthogonal init requires a 2-D shape")
    rows, cols = shape
    flat = rng.standard_normal((max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    q *= np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return q[:rows, :cols]


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)
