"""Reverse-mode automatic differentiation on numpy arrays.

This module is the foundation of the neural substrate: a :class:`Tensor`
wraps a ``numpy.ndarray`` and records the operations applied to it so that
:meth:`Tensor.backward` can propagate gradients to every tensor created
with ``requires_grad=True``.

The design is a vectorized take on the classic tape-based autograd: each
operation returns a new ``Tensor`` holding a closure that knows how to push
its output gradient back to the inputs.  Broadcasting is supported by
summing gradients over broadcast dimensions (:func:`_unbroadcast`).

Only the operations needed by the t2vec models are implemented, but they
are implemented generally (arbitrary shapes, arbitrary axes) so the engine
is reusable for other sequence models.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]

# float32 is the library default (2x faster on CPU); gradient-check tests
# switch to float64 via set_default_dtype.
_DEFAULT_DTYPE = np.float32


def set_default_dtype(dtype) -> None:
    """Set the dtype used for new tensors.

    ``float32`` is the default because it roughly halves training time on
    CPU; switch to ``float64`` when numeric gradient checking (or anything
    else) needs the precision.
    """
    dtype = np.dtype(dtype)
    if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValueError(f"unsupported dtype {dtype}")
    global _DEFAULT_DTYPE
    _DEFAULT_DTYPE = dtype.type


def get_default_dtype():
    return _DEFAULT_DTYPE


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over the axes that were added or broadcast.

    If an operation broadcast an input of ``shape`` up to ``grad.shape``,
    the gradient with respect to that input is the sum of ``grad`` over the
    broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were prepended by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike, dtype=None) -> np.ndarray:
    dtype = dtype or _DEFAULT_DTYPE
    if isinstance(value, np.ndarray):
        if value.dtype != dtype:
            return value.astype(dtype)
        return value
    return np.asarray(value, dtype=dtype)


class Tensor:
    """A numpy array with an autograd tape.

    Parameters
    ----------
    data:
        Array (or scalar / nested sequence) holding the value.
    requires_grad:
        Whether gradients should be accumulated into ``self.grad`` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "_op")

    def __init__(self, data: ArrayLike, requires_grad: bool = False):
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._backward = None  # type: Optional[callable]
        self._prev: Tuple[Tensor, ...] = ()
        self._op = ""

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_flag})"

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the tape."""
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Tuple["Tensor", ...], op: str) -> "Tensor":
        out = Tensor(data)
        out.requires_grad = any(p.requires_grad for p in parents)
        if out.requires_grad:
            out._prev = tuple(p for p in parents if p.requires_grad or p._prev)
            out._op = op
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=self.data.dtype, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to 1 for scalar tensors; non-scalar roots require
        an explicit output gradient.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = _as_array(grad, dtype=self.data.dtype)

        topo: list = []
        visited = set()
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
            # Free intermediate gradients/graph to bound memory: only leaf
            # tensors (requires_grad with no parents) keep their grads.
            if node._prev and node is not self:
                node.grad = None

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other):
        other = self._coerce(other)
        out = Tensor._make(self.data + other.data, (self, other), "add")
        if out.requires_grad:
            a, b = self, other

            def backward(grad):
                if a.requires_grad:
                    a._accumulate(_unbroadcast(grad, a.shape))
                if b.requires_grad:
                    b._accumulate(_unbroadcast(grad, b.shape))

            out._backward = backward
        return out

    __radd__ = __add__

    def __neg__(self):
        out = Tensor._make(-self.data, (self,), "neg")
        if out.requires_grad:
            a = self

            def backward(grad):
                a._accumulate(-grad)

            out._backward = backward
        return out

    def __sub__(self, other):
        return self + (-self._coerce(other))

    def __rsub__(self, other):
        return self._coerce(other) + (-self)

    def __mul__(self, other):
        other = self._coerce(other)
        out = Tensor._make(self.data * other.data, (self, other), "mul")
        if out.requires_grad:
            a, b = self, other

            def backward(grad):
                if a.requires_grad:
                    a._accumulate(_unbroadcast(grad * b.data, a.shape))
                if b.requires_grad:
                    b._accumulate(_unbroadcast(grad * a.data, b.shape))

            out._backward = backward
        return out

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = self._coerce(other)
        out = Tensor._make(self.data / other.data, (self, other), "div")
        if out.requires_grad:
            a, b = self, other

            def backward(grad):
                if a.requires_grad:
                    a._accumulate(_unbroadcast(grad / b.data, a.shape))
                if b.requires_grad:
                    b._accumulate(_unbroadcast(-grad * a.data / (b.data ** 2), b.shape))

            out._backward = backward
        return out

    def __rtruediv__(self, other):
        return self._coerce(other) / self

    def __pow__(self, exponent: float):
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out = Tensor._make(self.data ** exponent, (self,), "pow")
        if out.requires_grad:
            a = self

            def backward(grad):
                a._accumulate(grad * exponent * a.data ** (exponent - 1))

            out._backward = backward
        return out

    def __matmul__(self, other):
        other = self._coerce(other)
        out = Tensor._make(self.data @ other.data, (self, other), "matmul")
        if out.requires_grad:
            a, b = self, other

            def backward(grad):
                if a.requires_grad:
                    if b.data.ndim == 1:
                        a._accumulate(np.outer(grad, b.data) if a.data.ndim == 2
                                      else grad * b.data)
                    else:
                        ga = grad @ np.swapaxes(b.data, -1, -2)
                        a._accumulate(_unbroadcast(ga, a.shape))
                if b.requires_grad:
                    if a.data.ndim == 1:
                        gb = np.outer(a.data, grad) if b.data.ndim == 2 else grad * a.data
                        b._accumulate(_unbroadcast(gb, b.shape))
                    else:
                        gb = np.swapaxes(a.data, -1, -2) @ grad
                        b._accumulate(_unbroadcast(gb, b.shape))

            out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self):
        value = np.exp(self.data)
        out = Tensor._make(value, (self,), "exp")
        if out.requires_grad:
            a = self

            def backward(grad):
                a._accumulate(grad * value)

            out._backward = backward
        return out

    def log(self):
        out = Tensor._make(np.log(self.data), (self,), "log")
        if out.requires_grad:
            a = self

            def backward(grad):
                a._accumulate(grad / a.data)

            out._backward = backward
        return out

    def tanh(self):
        value = np.tanh(self.data)
        out = Tensor._make(value, (self,), "tanh")
        if out.requires_grad:
            a = self

            def backward(grad):
                a._accumulate(grad * (1.0 - value ** 2))

            out._backward = backward
        return out

    def sigmoid(self):
        value = 1.0 / (1.0 + np.exp(-self.data))
        out = Tensor._make(value, (self,), "sigmoid")
        if out.requires_grad:
            a = self

            def backward(grad):
                a._accumulate(grad * value * (1.0 - value))

            out._backward = backward
        return out

    def relu(self):
        mask = self.data > 0
        out = Tensor._make(self.data * mask, (self,), "relu")
        if out.requires_grad:
            a = self

            def backward(grad):
                a._accumulate(grad * mask)

            out._backward = backward
        return out

    def sqrt(self):
        return self ** 0.5

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False):
        out = Tensor._make(self.data.sum(axis=axis, keepdims=keepdims), (self,), "sum")
        if out.requires_grad:
            a = self

            def backward(grad):
                g = grad
                if axis is not None and not keepdims:
                    g = np.expand_dims(g, axis)
                a._accumulate(np.broadcast_to(g, a.shape).copy())

            out._backward = backward
        return out

    def mean(self, axis=None, keepdims: bool = False):
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[ax] for ax in axes]))
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def max_detached(self, axis=None, keepdims: bool = False) -> np.ndarray:
        """Maximum of the data, not tracked by autograd.

        Used for numerically stable log-sum-exp: subtracting a constant
        equal to the max does not change gradients of the final expression.
        """
        return self.data.max(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = Tensor._make(self.data.reshape(shape), (self,), "reshape")
        if out.requires_grad:
            a = self

            def backward(grad):
                a._accumulate(grad.reshape(a.shape))

            out._backward = backward
        return out

    def transpose(self, *axes):
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)
        out = Tensor._make(self.data.transpose(axes), (self,), "transpose")
        if out.requires_grad:
            a = self

            def backward(grad):
                a._accumulate(grad.transpose(inverse))

            out._backward = backward
        return out

    @property
    def T(self):
        return self.transpose()

    def __getitem__(self, index):
        out = Tensor._make(self.data[index], (self,), "getitem")
        if out.requires_grad:
            a = self
            # Pure basic indexing (slices/ints) selects each source element
            # at most once, so plain ``+=`` is valid and far faster than the
            # duplicate-safe ``np.add.at``.
            parts = index if isinstance(index, tuple) else (index,)
            basic = all(isinstance(p, (slice, int, type(None), type(Ellipsis)))
                        for p in parts)

            def backward(grad):
                full = np.zeros_like(a.data)
                if basic:
                    full[index] += grad
                else:
                    np.add.at(full, index, grad)
                a._accumulate(full)

            out._backward = backward
        return out

    def take_rows(self, indices: np.ndarray) -> "Tensor":
        """Gather rows (embedding lookup): ``out[i...] = self[indices[i...]]``.

        ``indices`` may be any integer array; the result has shape
        ``indices.shape + self.shape[1:]``.  Gradients are scatter-added so
        repeated indices accumulate correctly.
        """
        indices = np.asarray(indices)
        out = Tensor._make(self.data[indices], (self,), "take_rows")
        if out.requires_grad:
            a = self

            def backward(grad):
                # Scatter-add via sort + reduceat: np.add.at is an order of
                # magnitude slower because it dispatches per element.
                full = np.zeros_like(a.data)
                flat_idx = indices.reshape(-1)
                if flat_idx.size:
                    flat_grad = np.ascontiguousarray(grad).reshape(
                        flat_idx.size, -1)
                    order = np.argsort(flat_idx, kind="stable")
                    sorted_idx = flat_idx[order]
                    starts = np.flatnonzero(np.concatenate(
                        ([True], sorted_idx[1:] != sorted_idx[:-1])))
                    sums = np.add.reduceat(flat_grad[order], starts, axis=0)
                    full[sorted_idx[starts]] = sums.reshape(
                        (-1,) + full.shape[1:])
                a._accumulate(full)

            out._backward = backward
        return out


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    out = Tensor._make(data, tuple(tensors), "concat")
    if out.requires_grad:
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad):
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if tensor.requires_grad:
                    sl = [slice(None)] * grad.ndim
                    sl[axis] = slice(start, stop)
                    tensor._accumulate(grad[tuple(sl)])

        out._backward = backward
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient support."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)
    out = Tensor._make(data, tuple(tensors), "stack")
    if out.requires_grad:

        def backward(grad):
            pieces = np.moveaxis(grad, axis, 0)
            for tensor, piece in zip(tensors, pieces):
                if tensor.requires_grad:
                    tensor._accumulate(piece)

        out._backward = backward
    return out


def where_const(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Select between two tensors with a constant boolean mask."""
    condition = np.asarray(condition, dtype=bool)
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    out = Tensor._make(np.where(condition, a.data, b.data), (a, b), "where")
    if out.requires_grad:

        def backward(grad):
            if a.requires_grad:
                a._accumulate(_unbroadcast(grad * condition, a.shape))
            if b.requires_grad:
                b._accumulate(_unbroadcast(grad * (~condition), b.shape))

        out._backward = backward
    return out


def zeros(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=requires_grad)
