"""Checkpoint save/load for :class:`~repro.nn.module.Module` state dicts.

Checkpoints are plain ``.npz`` archives of parameter arrays plus an
optional JSON metadata blob (model hyper-parameters, training step, ...),
so they are portable and inspectable without this library.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

_META_KEY = "__meta_json__"


def save_checkpoint(path: Union[str, Path], state: Dict[str, np.ndarray],
                    meta: Optional[Dict[str, Any]] = None) -> None:
    """Write a state dict (and optional JSON-serializable metadata) to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = dict(state)
    if _META_KEY in payload:
        raise ValueError(f"state dict may not contain reserved key {_META_KEY!r}")
    if meta is not None:
        payload[_META_KEY] = np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    np.savez(path, **payload)


def load_checkpoint(path: Union[str, Path]) -> Tuple[Dict[str, np.ndarray],
                                                     Optional[Dict[str, Any]]]:
    """Read a checkpoint written by :func:`save_checkpoint`.

    Returns ``(state_dict, meta)``; ``meta`` is ``None`` when the
    checkpoint was written without metadata.
    """
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as archive:
        state = {k: archive[k] for k in archive.files if k != _META_KEY}
        meta = None
        if _META_KEY in archive.files:
            meta = json.loads(archive[_META_KEY].tobytes().decode("utf-8"))
    return state, meta
