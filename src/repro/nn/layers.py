"""Basic feed-forward layers: Linear, Embedding, Dropout."""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import init
from .module import Module, Parameter
from .tensor import Tensor


class Linear(Module):
    """Affine map ``y = x @ W + b``.

    ``weight`` has shape ``(in_features, out_features)`` so the forward is
    a plain matmul over the trailing axis of any-rank inputs.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform(rng, (in_features, out_features)))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Token embedding table of shape ``(num_embeddings, dim)``.

    Lookup is a gather (:meth:`Tensor.take_rows`), so gradients for
    repeated tokens in a batch are accumulated correctly.  ``tokens`` may
    have any shape; passing a whole time-major ``(T, B)`` batch performs
    the fused gather (one tape node with one scatter-add backward instead
    of T separate nodes) that the sequence-fused RNN path builds on.
    """

    def __init__(self, num_embeddings: int, dim: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(init.uniform(rng, (num_embeddings, dim), 0.1))

    def forward(self, tokens: np.ndarray) -> Tensor:
        tokens = np.asarray(tokens)
        if tokens.min(initial=0) < 0 or (tokens.size and tokens.max() >= self.num_embeddings):
            raise IndexError(
                f"token id out of range [0, {self.num_embeddings}): "
                f"min={tokens.min()}, max={tokens.max()}"
            )
        return self.weight.take_rows(tokens)

    def load_pretrained(self, vectors: np.ndarray, freeze: bool = False) -> None:
        """Initialize the table from pre-trained vectors (e.g. cell skip-gram).

        The paper initializes the embedding layer from the cell-learning
        step but keeps it trainable; pass ``freeze=True`` to pin it.
        """
        vectors = np.asarray(vectors, dtype=self.weight.data.dtype)
        if vectors.shape != self.weight.data.shape:
            raise ValueError(
                f"pretrained shape {vectors.shape} != table shape {self.weight.data.shape}"
            )
        self.weight.data = vectors.copy()
        self.weight.requires_grad = not freeze


class Dropout(Module):
    """Inverted dropout; identity when ``module.eval()`` is active."""

    def __init__(self, p: float = 0.0, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        # Build the scaled mask directly in the input dtype; a float64
        # intermediate would silently upcast (and double-copy) the whole
        # activation tensor under the float32 default.  Drawing the uniforms
        # in float32 also halves the RNG cost for the common case.
        rand_dtype = np.float32 if x.data.dtype == np.float32 else np.float64
        mask = (self._rng.random(x.shape, dtype=rand_dtype) < keep)
        mask = mask.astype(x.data.dtype)
        mask /= keep
        return x * Tensor(mask)
