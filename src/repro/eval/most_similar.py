"""Most-similar-trajectory-search experiments (paper Section V-C1).

Protocol (Figure 4): every trajectory ``Tb`` is split into two
sub-trajectories ``Ta`` (odd points) and ``Ta'`` (even points) that share
the underlying route.  Queries are the ``Ta`` of a query set Q; the
database is ``{Ta'}`` of Q plus ``{Ta'}`` of a filler set P.  A perfect
measure ranks each query's counterpart first; the reported metric is the
mean rank over all queries.

Three experiments reuse the machinery:

* Experiment 1 (Table III): vary the database size.
* Experiment 2 (Table IV): down-sample queries and database with rate r1.
* Experiment 3 (Table V): distort queries and database with rate r2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..baselines.base import TrajectoryDistance
from ..data.trajectory import Trajectory
from ..data.transforms import alternating_split, degrade
from ..telemetry import get_registry


@dataclass(frozen=True)
class MostSimilarSetup:
    """A materialized query/database instance of the Figure-4 protocol."""

    queries: List[Trajectory]
    database: List[Trajectory]
    target_indices: np.ndarray  # database index of each query's counterpart


def build_setup(
    query_pool: Sequence[Trajectory],
    filler_pool: Sequence[Trajectory],
    num_queries: int,
    dropping_rate: float = 0.0,
    distorting_rate: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> MostSimilarSetup:
    """Create queries DQ and database D'Q ∪ D'P, optionally degraded.

    Degradation (r1/r2) is applied to queries *and* database entries,
    matching Experiments 2 and 3.  Trajectories too short to split or
    degrade safely are skipped.
    """
    rng = rng or np.random.default_rng()

    def transform(traj: Trajectory) -> Trajectory:
        return degrade(traj, dropping_rate, distorting_rate, rng)

    queries: List[Trajectory] = []
    database: List[Trajectory] = []
    targets: List[int] = []
    for traj in query_pool:
        if len(queries) >= num_queries:
            break
        if len(traj) < 8:
            continue
        ta, ta_prime = alternating_split(traj)
        queries.append(transform(ta))
        targets.append(len(database))
        database.append(transform(ta_prime))
    if not queries:
        raise ValueError("query pool produced no usable queries")
    for traj in filler_pool:
        if len(traj) < 8:
            continue
        _, ta_prime = alternating_split(traj)
        database.append(transform(ta_prime))
    return MostSimilarSetup(queries=queries, database=database,
                            target_indices=np.asarray(targets))


def mean_rank(measure: TrajectoryDistance, setup: MostSimilarSetup) -> float:
    """Mean rank of the true counterpart over all queries (lower = better).

    All queries are served by one :meth:`TrajectoryDistance.rank_of_many`
    call — for vector-space measures that is a single batched search over
    the whole query block instead of a per-query python loop.
    """
    reg = get_registry()
    with reg.span("eval.mean_rank", record_histogram=False,
                  measure=measure.name, queries=len(setup.queries)):
        with reg.span("eval.rank_queries", queries=len(setup.queries)):
            ranks = measure.rank_of_many(setup.queries, setup.database,
                                         setup.target_indices)
        reg.counter("eval.queries").inc(len(setup.queries))
    return float(np.mean(ranks))


def experiment_db_size(
    measures: Sequence[TrajectoryDistance],
    query_pool: Sequence[Trajectory],
    filler_pool: Sequence[Trajectory],
    num_queries: int,
    db_sizes: Sequence[int],
    seed: int = 0,
) -> Dict[str, List[float]]:
    """Experiment 1 (Table III): mean rank as the database grows."""
    results: Dict[str, List[float]] = {m.name: [] for m in measures}
    for size in db_sizes:
        rng = np.random.default_rng(seed)
        setup = build_setup(query_pool, filler_pool[:size], num_queries, rng=rng)
        for measure in measures:
            results[measure.name].append(mean_rank(measure, setup))
    return results


def experiment_downsampling(
    measures: Sequence[TrajectoryDistance],
    query_pool: Sequence[Trajectory],
    filler_pool: Sequence[Trajectory],
    num_queries: int,
    dropping_rates: Sequence[float],
    seed: int = 0,
) -> Dict[str, List[float]]:
    """Experiment 2 (Table IV): mean rank as r1 grows (fixed database)."""
    results: Dict[str, List[float]] = {m.name: [] for m in measures}
    for r1 in dropping_rates:
        rng = np.random.default_rng(seed)
        setup = build_setup(query_pool, filler_pool, num_queries,
                            dropping_rate=r1, rng=rng)
        for measure in measures:
            results[measure.name].append(mean_rank(measure, setup))
    return results


def experiment_distortion(
    measures: Sequence[TrajectoryDistance],
    query_pool: Sequence[Trajectory],
    filler_pool: Sequence[Trajectory],
    num_queries: int,
    distorting_rates: Sequence[float],
    seed: int = 0,
) -> Dict[str, List[float]]:
    """Experiment 3 (Table V): mean rank as r2 grows (fixed database)."""
    results: Dict[str, List[float]] = {m.name: [] for m in measures}
    for r2 in distorting_rates:
        rng = np.random.default_rng(seed)
        setup = build_setup(query_pool, filler_pool, num_queries,
                            distorting_rate=r2, rng=rng)
        for measure in measures:
            results[measure.name].append(mean_rank(measure, setup))
    return results
