"""Scalability experiment (paper Section V-D, Figure 6).

Measures mean k-NN query wall time as the target database grows.  For
t2vec the database is encoded *offline* (as the paper does: "the
encoding process can also be done offline"), so query time is the O(N·|v|)
vector scan; the DP baselines pay their O(n²)-per-pair cost online.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence


from ..baselines.base import TrajectoryDistance
from ..data.trajectory import Trajectory
from ..telemetry import get_registry


def time_knn_queries(
    measure: TrajectoryDistance,
    queries: Sequence[Trajectory],
    database: Sequence[Trajectory],
    k: int = 50,
    warmup: Optional[Callable[[], None]] = None,
) -> float:
    """Mean seconds per k-NN query over the given database.

    ``warmup`` runs once before timing — used to let encoder-based
    measures build their (offline) vector caches so the timed section
    reflects online query cost only.  Per-query latency also feeds the
    ``eval.knn_query_s`` histogram in the default metrics registry.
    """
    reg = get_registry()
    if warmup is not None:
        with reg.span("eval.knn_warmup", record_histogram=False,
                      measure=measure.name, db_size=len(database)):
            warmup()
    histogram = reg.histogram("eval.knn_query_s")
    total = 0.0
    for query in queries:
        start = time.perf_counter()
        measure.knn(query, database, k)
        elapsed = time.perf_counter() - start
        histogram.observe(elapsed)
        total += elapsed
    mean_s = total / len(queries)
    if mean_s > 0:
        reg.gauge("eval.knn_queries_per_s").set(1.0 / mean_s)
    return mean_s


def experiment_scalability(
    measures: Sequence[TrajectoryDistance],
    queries: Sequence[Trajectory],
    database: Sequence[Trajectory],
    db_sizes: Sequence[int],
    k: int = 50,
) -> Dict[str, List[float]]:
    """Figure 6: mean query seconds per measure per database size.

    Encoder-based measures (anything exposing ``encode_many``) get their
    database encodings precomputed outside the timed region.
    """
    results: Dict[str, List[float]] = {m.name: [] for m in measures}
    for size in db_sizes:
        db = list(database[:size])
        for measure in measures:
            warmup = None
            encode_many = getattr(measure, "encode_many", None)
            if callable(encode_many):
                def warmup(db=db, fn=encode_many):
                    fn(db)
            results[measure.name].append(
                time_knn_queries(measure, queries, db, k=k, warmup=warmup))
    return results
