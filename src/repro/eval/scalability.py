"""Scalability experiment (paper Section V-D, Figure 6).

Measures mean k-NN query wall time as the target database grows.  For
t2vec the database is encoded *offline* (as the paper does: "the
encoding process can also be done offline"), so query time is the O(N·|v|)
vector scan; the DP baselines pay their O(n²)-per-pair cost online.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..baselines.base import TrajectoryDistance
from ..data.trajectory import Trajectory


def time_knn_queries(
    measure: TrajectoryDistance,
    queries: Sequence[Trajectory],
    database: Sequence[Trajectory],
    k: int = 50,
    warmup: Optional[Callable[[], None]] = None,
) -> float:
    """Mean seconds per k-NN query over the given database.

    ``warmup`` runs once before timing — used to let encoder-based
    measures build their (offline) vector caches so the timed section
    reflects online query cost only.
    """
    if warmup is not None:
        warmup()
    start = time.perf_counter()
    for query in queries:
        measure.knn(query, database, k)
    return (time.perf_counter() - start) / len(queries)


def experiment_scalability(
    measures: Sequence[TrajectoryDistance],
    queries: Sequence[Trajectory],
    database: Sequence[Trajectory],
    db_sizes: Sequence[int],
    k: int = 50,
) -> Dict[str, List[float]]:
    """Figure 6: mean query seconds per measure per database size.

    Encoder-based measures (anything exposing ``encode_many``) get their
    database encodings precomputed outside the timed region.
    """
    results: Dict[str, List[float]] = {m.name: [] for m in measures}
    for size in db_sizes:
        db = list(database[:size])
        for measure in measures:
            warmup = None
            encode_many = getattr(measure, "encode_many", None)
            if callable(encode_many):
                def warmup(db=db, fn=encode_many):
                    fn(db)
            results[measure.name].append(
                time_knn_queries(measure, queries, db, k=k, warmup=warmup))
    return results
