"""Cross-similarity comparison (paper Section V-C2, Table VI).

A good measure must not only recognize variants of the *same* route
(self-similarity) — it must also preserve the distance between two
*different* trajectories regardless of the sampling strategy.  The
metric is the *cross-distance deviation*

    | d(Ta(r), Ta'(r)) - d(Tb, Tb') |  /  d(Tb, Tb')

where ``Tb`` and ``Tb'`` are two distinct original trajectories and
``Ta(r)``, ``Ta'(r)`` their degraded variants at dropping (or
distorting) rate ``r``.  Smaller is better.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines.base import TrajectoryDistance
from ..data.trajectory import Trajectory
from ..data.transforms import distort, downsample
from ..telemetry import get_registry


def cross_distance_deviation(
    measure: TrajectoryDistance,
    pairs: Sequence[Tuple[Trajectory, Trajectory]],
    rate: float,
    mode: str = "dropping",
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Mean cross-distance deviation at one degradation rate.

    ``mode`` selects whether ``rate`` is a dropping rate (r1) or a
    distorting rate (r2).  Pairs whose original distance is ~0 are
    skipped (the deviation is undefined on them).
    """
    if mode not in ("dropping", "distorting"):
        raise ValueError(f"mode must be 'dropping' or 'distorting', got {mode}")
    rng = rng or np.random.default_rng()
    deviations: List[float] = []
    reg = get_registry()
    with reg.span("eval.cross_deviation", record_histogram=False,
                  measure=measure.name, rate=rate, mode=mode):
        for tb, tb_prime in pairs:
            base = measure.distance(tb, tb_prime)
            if base <= 1e-9:
                continue
            if mode == "dropping":
                ta = downsample(tb, rate, rng)
                ta_prime = downsample(tb_prime, rate, rng)
            else:
                ta = distort(tb, rate, rng)
                ta_prime = distort(tb_prime, rate, rng)
            degraded = measure.distance(ta, ta_prime)
            deviations.append(abs(degraded - base) / base)
    if not deviations:
        raise ValueError("no valid pair had a nonzero base distance")
    return float(np.mean(deviations))


def experiment_cross_similarity(
    measures: Sequence[TrajectoryDistance],
    trajectories: Sequence[Trajectory],
    num_pairs: int,
    rates: Sequence[float],
    mode: str = "dropping",
    seed: int = 0,
) -> Dict[str, List[float]]:
    """Table VI: deviation per measure per rate, over random trajectory pairs."""
    rng = np.random.default_rng(seed)
    indices = rng.choice(len(trajectories), size=(num_pairs, 2))
    indices = indices[indices[:, 0] != indices[:, 1]]
    pairs = [(trajectories[i], trajectories[j]) for i, j in indices]
    results: Dict[str, List[float]] = {m.name: [] for m in measures}
    for rate in rates:
        pair_rng = np.random.default_rng(seed + 1)
        for measure in measures:
            results[measure.name].append(
                cross_distance_deviation(measure, pairs, rate, mode, pair_rng))
    return results
