"""k-NN self-consistency precision (paper Section V-C3, Figure 5).

Ground truth: each method's own k-NN results on the *clean* queries and
database.  Queries and database are then degraded (down-sampled or
distorted) and the k-NN search repeated; precision is the fraction of
ground-truth neighbours recovered.  A robust measure should return
nearly the same neighbours despite the degradation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..baselines.base import TrajectoryDistance
from ..data.trajectory import Trajectory
from ..data.transforms import degrade
from ..telemetry import get_registry


def ground_truth_knn(measure: TrajectoryDistance,
                     queries: Sequence[Trajectory],
                     database: Sequence[Trajectory],
                     k: int) -> List[set]:
    """Each query's clean k-NN set — the per-measure ground truth.

    One :meth:`TrajectoryDistance.knn_batch` call serves every query.
    """
    return [set(row.tolist())
            for row in measure.knn_batch(list(queries), list(database), k)]


def knn_precision(
    measure: TrajectoryDistance,
    queries: Sequence[Trajectory],
    database: Sequence[Trajectory],
    k: int,
    dropping_rate: float = 0.0,
    distorting_rate: float = 0.0,
    rng: Optional[np.random.Generator] = None,
    truth: Optional[List[set]] = None,
) -> float:
    """Mean precision of degraded k-NN against clean k-NN ground truth.

    ``truth`` may carry precomputed :func:`ground_truth_knn` sets (it does
    not depend on the degradation rate, so sweeps reuse it).
    """
    rng = rng or np.random.default_rng()
    reg = get_registry()
    if truth is None:
        truth = ground_truth_knn(measure, queries, database, k)
    degraded_queries = [degrade(q, dropping_rate, distorting_rate, rng)
                        for q in queries]
    degraded_db = [degrade(t, dropping_rate, distorting_rate, rng)
                   for t in database]
    precisions: List[float] = []
    with reg.span("eval.knn_precision", record_histogram=False,
                  measure=measure.name, k=k):
        found_rows = measure.knn_batch(degraded_queries, degraded_db, k)
        for found, truth_set in zip(found_rows, truth):
            precisions.append(len(truth_set & set(found.tolist())) / k)
        reg.counter("eval.precision_queries").inc(len(degraded_queries))
    return float(np.mean(precisions))


def experiment_knn_precision(
    measures: Sequence[TrajectoryDistance],
    queries: Sequence[Trajectory],
    database: Sequence[Trajectory],
    ks: Sequence[int],
    rates: Sequence[float],
    mode: str = "dropping",
    seed: int = 0,
) -> Dict[int, Dict[str, List[float]]]:
    """Figure 5: precision per k, per measure, per degradation rate.

    Returns ``{k: {measure: [precision per rate]}}`` — one sub-figure per
    k value, one series per measure, as in Figures 5a–5f.
    """
    if mode not in ("dropping", "distorting"):
        raise ValueError(f"mode must be 'dropping' or 'distorting', got {mode}")
    results: Dict[int, Dict[str, List[float]]] = {
        k: {m.name: [] for m in measures} for k in ks}
    for k in ks:
        # Ground truth is rate-independent: compute once per (measure, k).
        truths = {m.name: ground_truth_knn(m, queries, database, k)
                  for m in measures}
        for rate in rates:
            r1 = rate if mode == "dropping" else 0.0
            r2 = rate if mode == "distorting" else 0.0
            for measure in measures:
                precision = knn_precision(measure, queries, database, k,
                                          dropping_rate=r1, distorting_rate=r2,
                                          rng=np.random.default_rng(seed),
                                          truth=truths[measure.name])
                results[k][measure.name].append(precision)
    return results
