"""Evaluation harness reproducing the paper's experiment protocols.

* :mod:`most_similar` — Experiments 1–3 (Tables III, IV, V).
* :mod:`cross_similarity` — cross-distance deviation (Table VI).
* :mod:`knn_precision` — k-NN self-consistency (Figure 5).
* :mod:`scalability` — query-time scaling (Figure 6).
* :mod:`reporting` — paper-style text tables.
"""

from .ascii_chart import line_chart
from .cross_similarity import cross_distance_deviation, experiment_cross_similarity
from .knn_precision import (experiment_knn_precision, ground_truth_knn,
                            knn_precision)
from .most_similar import (MostSimilarSetup, build_setup, experiment_db_size,
                           experiment_distortion, experiment_downsampling,
                           mean_rank)
from .reporting import format_table
from .scalability import experiment_scalability, time_knn_queries

__all__ = [
    "MostSimilarSetup",
    "build_setup",
    "cross_distance_deviation",
    "experiment_cross_similarity",
    "experiment_db_size",
    "experiment_distortion",
    "experiment_downsampling",
    "experiment_knn_precision",
    "experiment_scalability",
    "format_table",
    "ground_truth_knn",
    "knn_precision",
    "line_chart",
    "mean_rank",
    "time_knn_queries",
]
