"""ASCII line charts for the figure-style experiments.

The paper's Figures 5–7 are line charts; the benches print their data as
tables *and* as terminal-renderable charts so the shape (who is on top,
where curves cross) is visible at a glance without a plotting stack.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Union

Number = Union[int, float]

#: Per-series plot markers, assigned in insertion order.
MARKERS = "ox+*#@%&"


def line_chart(
    title: str,
    x_values: Sequence[Number],
    series: Dict[str, List[float]],
    width: int = 60,
    height: int = 16,
    logy: bool = False,
    y_label: str = "",
) -> str:
    """Render ``{name: [y per x]}`` as a multi-series ASCII line chart.

    Parameters
    ----------
    x_values:
        Shared x positions (plotted with even spacing, labelled at the
        first/last column).
    logy:
        Plot ``log10(y)`` — useful for the scalability figure where the
        paper's claim is an order-of-magnitude gap.
    """
    if not series:
        raise ValueError("line_chart needs at least one series")
    if len(series) > len(MARKERS):
        raise ValueError(f"at most {len(MARKERS)} series supported")
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(ys)} points for {len(x_values)} x values")
        if logy and any(y <= 0 for y in ys):
            raise ValueError(f"log scale requires positive values ({name!r})")

    def transform(y: float) -> float:
        return math.log10(y) if logy else y

    all_y = [transform(y) for ys in series.values() for y in ys]
    lo, hi = min(all_y), max(all_y)
    if hi - lo < 1e-12:
        hi = lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    n = len(x_values)
    for marker, (name, ys) in zip(MARKERS, series.items()):
        previous = None
        for i, y in enumerate(ys):
            col = 0 if n == 1 else round(i * (width - 1) / (n - 1))
            row = height - 1 - round(
                (transform(y) - lo) / (hi - lo) * (height - 1))
            if previous is not None:
                _draw_segment(grid, previous, (row, col))
            grid[row][col] = marker
            previous = (row, col)

    def y_tick(row: int) -> float:
        value = hi - row * (hi - lo) / (height - 1)
        return 10 ** value if logy else value

    lines = [title]
    if y_label:
        lines.append(f"[y: {y_label}{' (log scale)' if logy else ''}]")
    label_width = max(len(_fmt(y_tick(r))) for r in range(height))
    for row in range(height):
        label = (_fmt(y_tick(row)).rjust(label_width)
                 if row % max(1, height // 4) == 0 or row == height - 1
                 else " " * label_width)
        lines.append(f"{label} |" + "".join(grid[row]))
    axis = " " * label_width + " +" + "-" * width
    lines.append(axis)
    first, last = _fmt(x_values[0]), _fmt(x_values[-1])
    gap = max(1, width - len(first) - len(last))
    lines.append(" " * (label_width + 2) + first + " " * gap + last)
    legend = "   ".join(f"{marker}={name}"
                        for marker, name in zip(MARKERS, series))
    lines.append(" " * (label_width + 2) + legend)
    return "\n".join(lines)


def _draw_segment(grid, start, end) -> None:
    """Connect consecutive points with light interpolation dots."""
    (r0, c0), (r1, c1) = start, end
    steps = max(abs(r1 - r0), abs(c1 - c0))
    for s in range(1, steps):
        r = round(r0 + (r1 - r0) * s / steps)
        c = round(c0 + (c1 - c0) * s / steps)
        if grid[r][c] == " ":
            grid[r][c] = "."


def _fmt(value: Number) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) < 0.01 or abs(value) >= 10000):
            return f"{value:.1e}"
        return f"{value:g}"
    if isinstance(value, int) and value >= 1000 and value % 1000 == 0:
        return f"{value // 1000}k"
    return str(value)
