"""Plain-text rendering of experiment results in the paper's table style."""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

Number = Union[int, float]


def format_table(
    title: str,
    column_header: str,
    columns: Sequence[Number],
    rows: Dict[str, List[float]],
    precision: int = 2,
) -> str:
    """Render ``{row_name: [value per column]}`` as an aligned text table.

    Mirrors the layout of the paper's tables: one row per method, one
    column per parameter value (database size, r1, r2, ...).
    """
    for name, values in rows.items():
        if len(values) != len(columns):
            raise ValueError(
                f"row {name!r} has {len(values)} values for {len(columns)} columns")
    col_labels = [_fmt_col(c) for c in columns]
    name_width = max([len(column_header)] + [len(name) for name in rows])
    widths = []
    for j, label in enumerate(col_labels):
        cell_width = max([len(label)] + [
            len(f"{values[j]:.{precision}f}") for values in rows.values()])
        widths.append(cell_width)

    lines = [title]
    header = column_header.ljust(name_width) + "  " + "  ".join(
        label.rjust(w) for label, w in zip(col_labels, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for name, values in rows.items():
        cells = "  ".join(f"{v:.{precision}f}".rjust(w)
                          for v, w in zip(values, widths))
        lines.append(name.ljust(name_width) + "  " + cells)
    return "\n".join(lines)


def _fmt_col(value: Number) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    if isinstance(value, int) and value >= 1000 and value % 1000 == 0:
        return f"{value // 1000}k"
    return str(value)
