"""Geodesy helpers: lon/lat ↔ local metric coordinates.

The paper partitions space into equal-size cells measured in meters
(default 100 m).  To do that on lon/lat data we project onto a local
equirectangular plane anchored at a reference point — accurate to well
under a meter at city scale, which is all trajectory gridding needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

EARTH_RADIUS_M = 6_371_000.0
"""Mean Earth radius in meters."""


@dataclass(frozen=True)
class Projection:
    """Local equirectangular projection anchored at ``(lon0, lat0)``.

    ``to_xy`` maps degrees to meters east/north of the anchor; ``to_lonlat``
    inverts it.  Both accept ``(n, 2)`` arrays or single points.
    """

    lon0: float
    lat0: float

    @property
    def _meters_per_deg_lon(self) -> float:
        return np.pi / 180.0 * EARTH_RADIUS_M * np.cos(np.deg2rad(self.lat0))

    @property
    def _meters_per_deg_lat(self) -> float:
        return np.pi / 180.0 * EARTH_RADIUS_M

    def to_xy(self, lonlat: np.ndarray) -> np.ndarray:
        lonlat = np.asarray(lonlat, dtype=float)
        xy = np.empty_like(lonlat)
        xy[..., 0] = (lonlat[..., 0] - self.lon0) * self._meters_per_deg_lon
        xy[..., 1] = (lonlat[..., 1] - self.lat0) * self._meters_per_deg_lat
        return xy

    def to_lonlat(self, xy: np.ndarray) -> np.ndarray:
        xy = np.asarray(xy, dtype=float)
        lonlat = np.empty_like(xy)
        lonlat[..., 0] = xy[..., 0] / self._meters_per_deg_lon + self.lon0
        lonlat[..., 1] = xy[..., 1] / self._meters_per_deg_lat + self.lat0
        return lonlat

    @classmethod
    def for_points(cls, lonlat: np.ndarray) -> "Projection":
        """Anchor a projection at the centroid of a point cloud."""
        lonlat = np.asarray(lonlat, dtype=float).reshape(-1, 2)
        if lonlat.size == 0:
            raise ValueError("cannot build a projection from zero points")
        return cls(float(lonlat[:, 0].mean()), float(lonlat[:, 1].mean()))


def haversine(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Great-circle distance in meters between lon/lat points (broadcasting)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    lon1, lat1 = np.deg2rad(a[..., 0]), np.deg2rad(a[..., 1])
    lon2, lat2 = np.deg2rad(b[..., 0]), np.deg2rad(b[..., 1])
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = np.sin(dlat / 2.0) ** 2 + np.cos(lat1) * np.cos(lat2) * np.sin(dlon / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_M * np.arcsin(np.sqrt(h))


def euclidean(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Euclidean distance between projected (meter) points (broadcasting)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return np.sqrt(((a - b) ** 2).sum(axis=-1))


def bounding_box(points: np.ndarray, margin: float = 0.0) -> Tuple[float, float, float, float]:
    """Return ``(min_x, min_y, max_x, max_y)`` of a point cloud with a margin."""
    points = np.asarray(points, dtype=float).reshape(-1, 2)
    if points.size == 0:
        raise ValueError("cannot compute a bounding box of zero points")
    return (
        float(points[:, 0].min() - margin),
        float(points[:, 1].min() - margin),
        float(points[:, 0].max() + margin),
        float(points[:, 1].max() + margin),
    )
