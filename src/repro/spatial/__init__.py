"""Spatial substrate: projections, grids, and the hot-cell vocabulary.

The paper discretizes the lon/lat plane into equal-size cells (tokens)
and keeps only *hot* cells as the vocabulary (Section IV-B).  This
package provides:

* :class:`Projection` — lon/lat ↔ local metric coordinates.
* :class:`Grid` — equal-size cell partitioning.
* :class:`CellVocabulary` — hot cells, nearest-hot-cell tokenization, and
  the spatial proximity kernels used by the losses and pretraining.
"""

from .geo import EARTH_RADIUS_M, Projection, bounding_box, euclidean, haversine
from .grid import Grid
from .proximity import ProximityVocabulary
from .vocab import BOS, EOS, NUM_SPECIALS, PAD, UNK, CellVocabulary

__all__ = [
    "BOS",
    "CellVocabulary",
    "ProximityVocabulary",
    "EARTH_RADIUS_M",
    "EOS",
    "Grid",
    "NUM_SPECIALS",
    "PAD",
    "Projection",
    "UNK",
    "bounding_box",
    "euclidean",
    "haversine",
]
