"""Hot-cell vocabulary (paper Section IV-B).

Cells hit by at least ``min_hits`` (δ) sample points form the vocabulary;
every sample point is represented by its *nearest* hot cell, which both
denoises isolated GPS errors and bounds the token space.

The proximity-kernel machinery shared with the losses and pretraining
lives in :class:`repro.spatial.proximity.ProximityVocabulary`; this class
adds the grid-specific construction (hot-cell counting, cell-id mapping).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from .grid import Grid
from .proximity import (BOS, EOS, NUM_SPECIALS, PAD, UNK,
                        ProximityVocabulary)

__all__ = ["BOS", "EOS", "NUM_SPECIALS", "PAD", "UNK", "CellVocabulary"]


class CellVocabulary(ProximityVocabulary):
    """Token vocabulary over the hot cells of a :class:`Grid`."""

    def __init__(self, grid: Grid, hot_cells: np.ndarray,
                 hit_counts: Optional[np.ndarray] = None):
        hot_cells = np.asarray(hot_cells, dtype=np.int64)
        if hot_cells.size == 0:
            raise ValueError("vocabulary needs at least one hot cell")
        if len(np.unique(hot_cells)) != len(hot_cells):
            raise ValueError("hot cell ids must be unique")
        self.grid = grid
        self.hot_cells = hot_cells
        self.hit_counts = (np.asarray(hit_counts, dtype=np.int64)
                           if hit_counts is not None else None)
        self._cell_to_token: Dict[int, int] = {
            int(cell): NUM_SPECIALS + i for i, cell in enumerate(hot_cells)
        }
        super().__init__(grid.centroid(hot_cells))  # (num_hot, 2) meters

    @classmethod
    def build(cls, grid: Grid, points: np.ndarray, min_hits: int = 1) -> "CellVocabulary":
        """Count point hits per cell and keep cells with ``>= min_hits``.

        ``points`` is an ``(n, 2)`` array in grid (meter) coordinates —
        typically every sample point of the training trajectories.
        """
        points = np.asarray(points, dtype=float).reshape(-1, 2)
        cell_ids = grid.cell_of(points)
        cells, counts = np.unique(cell_ids, return_counts=True)
        keep = counts >= min_hits
        if not keep.any():
            raise ValueError(
                f"no cell reaches min_hits={min_hits}; densest cell has "
                f"{counts.max() if counts.size else 0} hits"
            )
        cells, counts = cells[keep], counts[keep]
        order = np.argsort(-counts, kind="stable")
        return cls(grid, cells[order], counts[order])

    def token_of_cell(self, cell_id: int) -> Optional[int]:
        """Token of an exact cell id, or ``None`` if the cell is not hot."""
        return self._cell_to_token.get(int(cell_id))
