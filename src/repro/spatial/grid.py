"""Equal-size cell partitioning of the plane (paper Section IV-B).

A :class:`Grid` tiles a bounding box with square cells of ``cell_size``
meters.  Cells are identified by a single integer id in row-major order
(``id = row * n_cols + col``).  Points outside the box are clamped to the
border cells — real GPS data always contains a few strays, and clamping
matches the behaviour of production grid indexes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class Grid:
    """Uniform grid over ``[min_x, max_x) x [min_y, max_y)`` in meters."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float
    cell_size: float

    def __post_init__(self):
        if self.cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {self.cell_size}")
        if self.max_x <= self.min_x or self.max_y <= self.min_y:
            raise ValueError("grid bounds are empty")

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def n_cols(self) -> int:
        return max(1, int(np.ceil((self.max_x - self.min_x) / self.cell_size)))

    @property
    def n_rows(self) -> int:
        return max(1, int(np.ceil((self.max_y - self.min_y) / self.cell_size)))

    @property
    def num_cells(self) -> int:
        return self.n_rows * self.n_cols

    # ------------------------------------------------------------------
    # Point → cell
    # ------------------------------------------------------------------
    def cell_of(self, points: np.ndarray) -> np.ndarray:
        """Map ``(n, 2)`` (or single) points to cell ids, clamping to bounds."""
        points = np.asarray(points, dtype=float)
        cols = np.floor((points[..., 0] - self.min_x) / self.cell_size).astype(np.int64)
        rows = np.floor((points[..., 1] - self.min_y) / self.cell_size).astype(np.int64)
        cols = np.clip(cols, 0, self.n_cols - 1)
        rows = np.clip(rows, 0, self.n_rows - 1)
        return rows * self.n_cols + cols

    def rowcol_of(self, cell_ids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        cell_ids = np.asarray(cell_ids, dtype=np.int64)
        self._check_ids(cell_ids)
        return cell_ids // self.n_cols, cell_ids % self.n_cols

    def centroid(self, cell_ids: np.ndarray) -> np.ndarray:
        """Centroid coordinates (meters) of cells; shape ``ids.shape + (2,)``."""
        rows, cols = self.rowcol_of(cell_ids)
        x = self.min_x + (cols + 0.5) * self.cell_size
        y = self.min_y + (rows + 0.5) * self.cell_size
        return np.stack([x, y], axis=-1)

    def _check_ids(self, cell_ids: np.ndarray) -> None:
        if cell_ids.size and (cell_ids.min() < 0 or cell_ids.max() >= self.num_cells):
            raise IndexError(
                f"cell id out of range [0, {self.num_cells}): "
                f"min={cell_ids.min()}, max={cell_ids.max()}"
            )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def covering(cls, points: np.ndarray, cell_size: float, margin: float = 0.0) -> "Grid":
        """Build the smallest grid covering a point cloud (plus a margin)."""
        points = np.asarray(points, dtype=float).reshape(-1, 2)
        if points.size == 0:
            raise ValueError("cannot build a grid over zero points")
        return cls(
            min_x=float(points[:, 0].min() - margin),
            min_y=float(points[:, 1].min() - margin),
            # Tiny epsilon keeps max-coordinate points inside the last cell.
            max_x=float(points[:, 0].max() + margin + 1e-9),
            max_y=float(points[:, 1].max() + margin + 1e-9),
            cell_size=cell_size,
        )
