"""Generic proximity-aware token vocabulary.

The losses (Eq. 5/7) and cell pretraining (Eq. 8) only need three things
from a vocabulary: a *centroid* per content token, K-nearest-token
queries, and exponential proximity kernels over the centroid distances.
None of that is trajectory-specific — the same machinery discretizes any
metric domain (2-D cells for trajectories, 1-D value bins for generic
time series, paper §VI future work 2).

:class:`ProximityVocabulary` implements the shared machinery over an
arbitrary ``(num_tokens, dim)`` centroid matrix; subclasses add domain
construction (hot grid cells, quantile bins, ...).

Token id layout (shared by every subclass)::

    0  PAD   (mini-batch padding)
    1  BOS   (decoder start-of-sequence)
    2  EOS   (end-of-sequence, paper Figure 2)
    3  UNK   (reserved)
    4+ content tokens
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np
from scipy.spatial import cKDTree

PAD, BOS, EOS, UNK = 0, 1, 2, 3
NUM_SPECIALS = 4


class ProximityVocabulary:
    """Token space with metric structure (base for cell/bin vocabularies)."""

    def __init__(self, centroids: np.ndarray):
        centroids = np.asarray(centroids, dtype=float)
        if centroids.ndim != 2 or len(centroids) == 0:
            raise ValueError(
                f"centroids must be a non-empty (n, d) matrix, got {centroids.shape}")
        self.centroids = centroids
        self._tree = cKDTree(centroids)
        self._knn_cache: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def num_hot_cells(self) -> int:
        """Number of content tokens (named after the trajectory case)."""
        return len(self.centroids)

    @property
    def size(self) -> int:
        """Total token count, including the special tokens."""
        return self.num_hot_cells + NUM_SPECIALS

    def is_special(self, token: int) -> bool:
        return token < NUM_SPECIALS

    # ------------------------------------------------------------------
    # Point / token mapping
    # ------------------------------------------------------------------
    def tokenize_points(self, points: np.ndarray) -> np.ndarray:
        """Map ``(n, dim)`` coordinates to their nearest content token."""
        points = np.asarray(points, dtype=float).reshape(-1, self.centroids.shape[1])
        _, nearest = self._tree.query(points)
        return (nearest + NUM_SPECIALS).astype(np.int64)

    def centroid_of_tokens(self, tokens: np.ndarray) -> np.ndarray:
        """Centroid of each token; special tokens are invalid."""
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.size and tokens.min() < NUM_SPECIALS:
            raise ValueError("special tokens have no centroid")
        return self.centroids[tokens - NUM_SPECIALS]

    def token_distance(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Euclidean distance between token centroids."""
        ca = self.centroid_of_tokens(a)
        cb = self.centroid_of_tokens(b)
        return np.sqrt(((ca - cb) ** 2).sum(axis=-1))

    # ------------------------------------------------------------------
    # K-nearest-token machinery (Eq. 5 / Eq. 7 / Eq. 8 kernels)
    # ------------------------------------------------------------------
    def knn_table(self, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """For every content token, its ``k`` nearest tokens and distances.

        Row ``i`` describes token ``i + NUM_SPECIALS``; the token itself is
        always the first neighbour (distance 0).  Cached per ``k``.
        """
        k = min(k, self.num_hot_cells)
        if k not in self._knn_cache:
            dists, idx = self._tree.query(self.centroids, k=k)
            if k == 1:
                dists = dists[:, None]
                idx = idx[:, None]
            self._knn_cache[k] = (idx + NUM_SPECIALS, dists)
        return self._knn_cache[k]

    def proximity_candidates(
        self,
        targets: np.ndarray,
        k: int,
        theta: float,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """K-nearest candidates and Eq. 7 weights for target tokens.

        Returns ``(candidates, weights)``, both ``(batch, k')`` where
        ``k' = min(k, num_tokens)``.  Special-token targets (EOS) get a
        one-hot row on themselves; their remaining candidate slots are
        filled with *distinct* content tokens of zero weight (duplicates
        would corrupt dense scatter writes in the loss).
        """
        if theta <= 0:
            raise ValueError("theta must be positive")
        targets = np.asarray(targets, dtype=np.int64)
        knn_tokens, knn_dists = self.knn_table(k)
        k_eff = knn_tokens.shape[1]
        batch = targets.shape[0]
        candidates = np.empty((batch, k_eff), dtype=np.int64)
        weights = np.zeros((batch, k_eff))

        special = targets < NUM_SPECIALS
        hot = ~special
        if hot.any():
            rows = targets[hot] - NUM_SPECIALS
            candidates[hot] = knn_tokens[rows]
            kernel = np.exp(-knn_dists[rows] / theta)
            weights[hot] = kernel / kernel.sum(axis=1, keepdims=True)
        if special.any():
            fillers = np.arange(NUM_SPECIALS, NUM_SPECIALS + k_eff - 1)
            candidates[special, 0] = targets[special]
            candidates[special, 1:] = fillers[None, :]
            weights[special, 0] = 1.0
        return candidates, weights

    def full_weights(self, targets: np.ndarray, theta: float) -> np.ndarray:
        """Exact Eq. 5 weight rows over the whole vocabulary (for L2).

        Shape ``(batch, vocab_size)``; weights on special columns are zero
        except for special targets, which get weight 1 on themselves.
        """
        if theta <= 0:
            raise ValueError("theta must be positive")
        targets = np.asarray(targets, dtype=np.int64)
        batch = targets.shape[0]
        weights = np.zeros((batch, self.size))
        special = targets < NUM_SPECIALS
        hot = ~special
        if hot.any():
            target_xy = self.centroids[targets[hot] - NUM_SPECIALS]
            diff = target_xy[:, None, :] - self.centroids[None, :, :]
            dists = np.sqrt((diff ** 2).sum(axis=2))
            kernel = np.exp(-dists / theta)
            kernel /= kernel.sum(axis=1, keepdims=True)
            weights[np.flatnonzero(hot)[:, None],
                    np.arange(self.num_hot_cells)[None, :] + NUM_SPECIALS] = kernel
        if special.any():
            weights[special, targets[special]] = 1.0
        return weights

    def sample_noise(self, rng: np.random.Generator, batch: int, count: int,
                     exclude: Optional[np.ndarray] = None) -> np.ndarray:
        """Sample ``(batch, count)`` noise tokens uniformly from content tokens.

        ``exclude`` (``(batch, k)`` candidate ids) is honoured best-effort:
        colliding samples are resampled once; the paper's NCE noise
        distribution is uniform over the vocabulary and occasional residual
        collisions are harmless (weight on noise columns is zero).
        """
        low, high = NUM_SPECIALS, self.size
        noise = rng.integers(low, high, size=(batch, count))
        if exclude is not None:
            exclude = np.asarray(exclude)
            collision = (noise[:, :, None] == exclude[:, None, :]).any(axis=2)
            if collision.any():
                noise[collision] = rng.integers(low, high, size=int(collision.sum()))
        return noise

    def context_distribution(self, k: int, theta: float) -> Tuple[np.ndarray, np.ndarray]:
        """Eq. 8 sampling distribution for representation pretraining.

        Returns ``(neighbour_tokens, probabilities)``, both
        ``(num_tokens, k')``: for each content token, its K nearest tokens
        and the normalized exponential-kernel probabilities of drawing
        each as a skip-gram context.
        """
        if theta <= 0:
            raise ValueError("theta must be positive")
        knn_tokens, knn_dists = self.knn_table(k)
        kernel = np.exp(-knn_dists / theta)
        probs = kernel / kernel.sum(axis=1, keepdims=True)
        return knn_tokens, probs
