"""Dynamic Time Warping (Yi et al., ICDE 1998).

The classic local-time-shift measure.  The paper excludes DTW from its
experiment tables (it is dominated by EDR on trajectory data) but we
implement it for completeness — it is the canonical pairwise
point-matching baseline and useful for users comparing measures.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..data.trajectory import Trajectory
from .base import (INF, TrajectoryDistance, anti_diagonals,
                   batched_cost_tensor, point_dists, stack_padded)


class DTW(TrajectoryDistance):
    """Unconstrained DTW with Euclidean point costs."""

    name = "DTW"

    def distance(self, a: Trajectory, b: Trajectory) -> float:
        return float(self.distance_to_many(a, [b])[0])

    def reference_distance(self, a: Trajectory, b: Trajectory) -> float:
        cost = point_dists(a.points, b.points)
        n, m = cost.shape
        dp = np.full((n + 1, m + 1), INF)
        dp[0, 0] = 0.0
        for i in range(1, n + 1):
            for j in range(1, m + 1):
                dp[i, j] = cost[i - 1, j - 1] + min(
                    dp[i - 1, j], dp[i, j - 1], dp[i - 1, j - 1])
        return float(dp[n, m])

    def distance_to_many(self, query: Trajectory,
                         candidates: Sequence[Trajectory]) -> np.ndarray:
        points, lengths = stack_padded(candidates)
        cost = batched_cost_tensor(query.points, points)   # (N, n, L)
        big_n, n, max_len = cost.shape
        dp = np.full((big_n, n + 1, max_len + 1), INF)
        dp[:, 0, 0] = 0.0
        for i, j in anti_diagonals(n, max_len):
            prev = np.minimum(
                np.minimum(dp[:, i, j + 1], dp[:, i + 1, j]),
                dp[:, i, j])
            dp[:, i + 1, j + 1] = cost[:, i, j] + prev
        return dp[np.arange(big_n), n, lengths]
