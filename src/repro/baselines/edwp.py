"""Edit Distance with Projections (Ranu et al., ICDE 2015).

EDwP aligns trajectories *segment-wise* and, crucially, may insert the
projection of one trajectory's point onto the other's current segment
before matching — linear interpolation that makes the measure robust to
inconsistent sampling rates.  Costs are weighted by *coverage* (the
length of trajectory matched by an operation) so long segments carry
proportional weight.

Implementation note (see DESIGN.md §2): the authors' published algorithm
threads the inserted (continuous) projection point through subsequent
operations; a faithful implementation is not a finite DP.  Like other
public reimplementations we use the standard finite-state approximation:
all projection points are computed against the *original* polylines, and
the DP chooses among

* ``replacement`` — match edge ``e1_i`` with edge ``e2_j``; cost
  ``(d(p_i, q_j) + d(p_{i+1}, q_{j+1})) * (|e1_i| + |e2_j|)``;
* ``insert into T2`` — advance T1 alone; T1's edge is matched against
  the degenerate piece from ``q_j`` to the projection ``p̂`` of
  ``p_{i+1}`` onto segment ``(q_j, q_{j+1})``; cost
  ``(d(p_i, q_j) + d(p_{i+1}, p̂)) * (|e1_i| + |q_j→p̂|)``;
* ``insert into T1`` — symmetric.

The approximation preserves the property the experiments measure: two
trajectories sampled from the same curve at different rates incur
near-zero cost, while diverging curves pay proportionally to the
diverging length.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..data.trajectory import Trajectory
from .base import INF, TrajectoryDistance, anti_diagonals, stack_padded


def _project_onto_segments(points: np.ndarray, seg_start: np.ndarray,
                           seg_vec: np.ndarray) -> np.ndarray:
    """Project ``points[..., 2]`` onto segments, clamping to the segment.

    Shapes broadcast: the result is ``broadcast(points, seg_start) + (2,)``.
    Zero-length segments project onto their start point.
    """
    rel = points - seg_start
    ss = (seg_vec ** 2).sum(axis=-1)
    dot = (rel * seg_vec).sum(axis=-1)
    t = np.where(ss > 0, dot / np.where(ss > 0, ss, 1.0), 0.0)
    t = np.clip(t, 0.0, 1.0)
    return seg_start + t[..., None] * seg_vec


def _edge_vectors(points: np.ndarray) -> np.ndarray:
    """Edges of a polyline, with a trailing zero edge so shapes align.

    For padded batches the zero edge makes every out-of-range projection
    collapse to the last real point.
    """
    edges = np.diff(points, axis=-2)
    zero = np.zeros_like(points[..., :1, :])
    return np.concatenate([edges, zero], axis=-2)


class EDwP(TrajectoryDistance):
    """Edit Distance with Projections (coverage-weighted, unnormalized)."""

    name = "EDwP"

    def distance(self, a: Trajectory, b: Trajectory) -> float:
        return float(self.distance_to_many(a, [b])[0])

    def distance_to_many(self, query: Trajectory,
                         candidates: Sequence[Trajectory]) -> np.ndarray:
        p = query.points                                     # (n, 2)
        c, lengths = stack_padded(candidates)                # (N, L, 2)
        n = len(p)
        big_n, max_len, _ = c.shape

        p_edges = _edge_vectors(p)                           # (n, 2), last zero
        c_edges = _edge_vectors(c)                           # (N, L, 2)
        p_edge_len = np.sqrt((p_edges ** 2).sum(axis=-1))    # (n,)
        c_edge_len = np.sqrt((c_edges ** 2).sum(axis=-1))    # (N, L)

        # Pairwise point distances d(p_i, q_kj): (N, n, L).
        diff = p[None, :, None, :] - c[:, None, :, :]
        dist = np.sqrt((diff ** 2).sum(axis=3))

        # Replacement cost for edge pair (i, j): valid for i<n-1, j<L-1.
        rep = (dist[:, :-1, :-1] + dist[:, 1:, 1:]) * (
            p_edge_len[None, :-1, None] + c_edge_len[:, None, :-1])

        # Insert into T2: advance T1's edge i while T2 sits at q_j.
        # p̂ = projection of p_{i+1} onto segment (q_j, q_{j+1}).
        proj2 = _project_onto_segments(
            p[None, 1:, None, :], c[:, None, :, :], c_edges[:, None, :, :])
        d_next_proj2 = np.sqrt(((p[None, 1:, None, :] - proj2) ** 2).sum(axis=3))
        d_qj_proj2 = np.sqrt(((c[:, None, :, :] - proj2) ** 2).sum(axis=3))
        ins1 = (dist[:, :-1, :] + d_next_proj2) * (
            p_edge_len[None, :-1, None] + d_qj_proj2)        # (N, n-1, L)

        # Insert into T1: advance T2's edge j while T1 sits at p_i.
        proj1 = _project_onto_segments(
            c[:, None, 1:, :], p[None, :, None, :], p_edges[None, :, None, :])
        d_next_proj1 = np.sqrt(((c[:, None, 1:, :] - proj1) ** 2).sum(axis=3))
        d_pi_proj1 = np.sqrt(((p[None, :, None, :] - proj1) ** 2).sum(axis=3))
        ins2 = (dist[:, :, :-1] + d_next_proj1) * (
            c_edge_len[:, None, :-1] + d_pi_proj1)           # (N, n, L-1)

        # Dynamic program over point indices (i, j) in [0..n-1] x [0..L-1].
        dp = np.full((big_n, n, max_len), INF)
        dp[:, 0, 0] = 0.0
        for i, j in anti_diagonals(n, max_len):
            best = dp[:, i, j].copy()
            # replacement from (i-1, j-1)
            valid = (i >= 1) & (j >= 1)
            if valid.any():
                iv, jv = i[valid], j[valid]
                cand = dp[:, iv - 1, jv - 1] + rep[:, iv - 1, jv - 1]
                sel = np.ix_(np.arange(big_n), np.flatnonzero(valid))
                best[sel] = np.minimum(best[sel], cand)
            # insert into T2 from (i-1, j)
            valid = i >= 1
            if valid.any():
                iv, jv = i[valid], j[valid]
                cand = dp[:, iv - 1, jv] + ins1[:, iv - 1, jv]
                sel = np.ix_(np.arange(big_n), np.flatnonzero(valid))
                best[sel] = np.minimum(best[sel], cand)
            # insert into T1 from (i, j-1)
            valid = j >= 1
            if valid.any():
                iv, jv = i[valid], j[valid]
                cand = dp[:, iv, jv - 1] + ins2[:, iv, jv - 1]
                sel = np.ix_(np.arange(big_n), np.flatnonzero(valid))
                best[sel] = np.minimum(best[sel], cand)
            dp[:, i, j] = best
        return dp[np.arange(big_n), n - 1, lengths - 1]
