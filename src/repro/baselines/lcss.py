"""Longest Common SubSequence similarity (Vlachos et al., ICDE 2002).

Points match within ``epsilon`` per dimension; the similarity is the LCSS
length, turned into a distance ``1 - LCSS / min(n, m)`` so that all
measures in the library are "smaller = more similar".
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..data.trajectory import Trajectory
from .base import TrajectoryDistance, anti_diagonals, stack_padded


class LCSS(TrajectoryDistance):
    """LCSS distance with matching threshold ``epsilon`` (meters)."""

    name = "LCSS"

    def __init__(self, epsilon: float):
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.epsilon = epsilon

    def similarity(self, a: Trajectory, b: Trajectory) -> int:
        """Raw LCSS length (number of matched point pairs)."""
        lcss = (1.0 - self.distance_to_many(a, [b])[0]) * min(len(a), len(b))
        return int(round(lcss))

    def distance(self, a: Trajectory, b: Trajectory) -> float:
        return float(self.distance_to_many(a, [b])[0])

    def reference_distance(self, a: Trajectory, b: Trajectory) -> float:
        diff = np.abs(a.points[:, None, :] - b.points[None, :, :])
        match = (diff <= self.epsilon).all(axis=2)
        n, m = match.shape
        table = np.zeros((n + 1, m + 1), dtype=np.int64)
        for i in range(1, n + 1):
            for j in range(1, m + 1):
                if match[i - 1, j - 1]:
                    table[i, j] = table[i - 1, j - 1] + 1
                else:
                    table[i, j] = max(table[i - 1, j], table[i, j - 1])
        return 1.0 - int(table[n, m]) / min(n, m)

    def distance_to_many(self, query: Trajectory,
                         candidates: Sequence[Trajectory]) -> np.ndarray:
        points, lengths = stack_padded(candidates)
        diff = np.abs(query.points[None, :, None, :] - points[:, None, :, :])
        match = (diff <= self.epsilon).all(axis=3)         # (N, n, L)
        big_n, n, max_len = match.shape
        table = np.zeros((big_n, n + 1, max_len + 1))
        for i, j in anti_diagonals(n, max_len):
            extend = table[:, i, j] + 1.0
            skip = np.maximum(table[:, i, j + 1], table[:, i + 1, j])
            table[:, i + 1, j + 1] = np.where(match[:, i, j], extend, skip)
        lcss = table[np.arange(big_n), n, lengths]
        return 1.0 - lcss / np.minimum(len(query), lengths)
