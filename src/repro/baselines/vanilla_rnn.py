"""Vanilla RNN embedding baseline (vRNN in the paper's tables).

Same encoder architecture as t2vec, but trained as a next-cell language
model ("its parameters are set the same as our encoder-RNN except that it
is trained by predicting the next cell based on the cells it has already
seen", Section V-B) — no encoder-decoder, no spatial loss, no
pretraining.  A trajectory's representation is the final hidden state;
similarity is Euclidean distance between representations.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..data.dataset import pad_batch, tokenize
from ..data.trajectory import Trajectory
from ..nn import GRU, Adam, Embedding, Linear, clip_grad_norm, nll_loss
from ..nn.module import Module
from ..spatial.vocab import CellVocabulary
from .base import TrajectoryDistance


class _NextCellModel(Module):
    """GRU language model over cell tokens."""

    def __init__(self, vocab_size: int, embedding_size: int, hidden_size: int,
                 num_layers: int, rng: np.random.Generator):
        super().__init__()
        self.embedding = Embedding(vocab_size, embedding_size, rng=rng)
        self.rnn = GRU(embedding_size, hidden_size, num_layers=num_layers, rng=rng)
        self.proj = Linear(hidden_size, vocab_size, rng=rng)

    def forward(self, tokens: np.ndarray, mask: np.ndarray):
        steps = [self.embedding(tokens[t]) for t in range(tokens.shape[0])]
        outputs, state = self.rnn(steps, mask=mask)
        return outputs, state


class VanillaRNNEmbedding(TrajectoryDistance):
    """vRNN: next-cell GRU language model used as a trajectory encoder."""

    name = "vRNN"

    def __init__(self, vocab: CellVocabulary, embedding_size: int = 64,
                 hidden_size: int = 64, num_layers: int = 1, seed: int = 0):
        self.vocab = vocab
        self._rng = np.random.default_rng(seed)
        self.model = _NextCellModel(vocab.size, embedding_size, hidden_size,
                                    num_layers, self._rng)
        self._encodings: Dict[bytes, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(self, trajectories: Sequence[Trajectory], epochs: int = 5,
            batch_size: int = 32, lr: float = 1e-3,
            clip_norm: float = 5.0) -> List[float]:
        """Train the language model; returns the per-epoch mean loss."""
        sequences = [tokenize(t, self.vocab) for t in trajectories]
        sequences = [s for s in sequences if len(s) >= 2]
        if not sequences:
            raise ValueError("no trajectory produced a token sequence of length >= 2")
        optimizer = Adam(self.model.parameters(), lr=lr)
        history: List[float] = []
        order = np.arange(len(sequences))
        for _ in range(epochs):
            self._rng.shuffle(order)
            losses = []
            for start in range(0, len(order), batch_size):
                chunk = order[start:start + batch_size]
                batch, mask = pad_batch([sequences[i] for i in chunk])
                loss = self._step(batch, mask, optimizer, clip_norm)
                losses.append(loss)
            history.append(float(np.mean(losses)))
        self._encodings.clear()
        return history

    def _step(self, batch: np.ndarray, mask: np.ndarray,
              optimizer: Adam, clip_norm: float) -> float:
        inputs, targets = batch[:-1], batch[1:]
        target_mask = mask[1:]
        outputs, _ = self.model(inputs, mask[:-1])
        total, count = None, 0
        for t, hidden in enumerate(outputs):
            if target_mask[t].sum() == 0:
                continue
            logits = self.model.proj(hidden)
            step_loss = nll_loss(logits, targets[t], target_mask[t])
            total = step_loss if total is None else total + step_loss
            count += 1
        loss = total / count
        optimizer.zero_grad()
        loss.backward()
        clip_grad_norm(self.model.parameters(), clip_norm)
        optimizer.step()
        return loss.item()

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode(self, trajectory: Trajectory) -> np.ndarray:
        return self.encode_many([trajectory])[0]

    def encode_many(self, trajectories: Sequence[Trajectory]) -> np.ndarray:
        """Embed trajectories (batched); results are cached per object."""
        missing = [t for t in trajectories
                   if t.cache_key() not in self._encodings]
        if missing:
            self.model.eval()
            sequences = [tokenize(t, self.vocab) for t in missing]
            batch, mask = pad_batch(sequences)
            _, state = self.model(batch, mask)
            vectors = state[-1].numpy()
            for traj, vec in zip(missing, vectors):
                self._encodings[traj.cache_key()] = vec
            self.model.train()
        return np.stack([self._encodings[t.cache_key()] for t in trajectories])

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Write model weights + hyper-parameters (vocabulary not included)."""
        from ..nn.serialization import save_checkpoint
        meta = {
            "embedding_size": self.model.embedding.dim,
            "hidden_size": self.model.rnn.hidden_size,
            "num_layers": self.model.rnn.num_layers,
        }
        save_checkpoint(path, self.model.state_dict(), meta)

    @classmethod
    def load(cls, path, vocab: CellVocabulary) -> "VanillaRNNEmbedding":
        """Restore a model written by :meth:`save` (pass the same vocabulary)."""
        from ..nn.serialization import load_checkpoint
        state, meta = load_checkpoint(path)
        if meta is None:
            raise ValueError(f"{path} has no vRNN metadata")
        instance = cls(vocab, embedding_size=meta["embedding_size"],
                       hidden_size=meta["hidden_size"],
                       num_layers=meta["num_layers"])
        instance.model.load_state_dict(state)
        return instance

    # ------------------------------------------------------------------
    # Distance interface
    # ------------------------------------------------------------------
    def distance(self, a: Trajectory, b: Trajectory) -> float:
        va, vb = self.encode_many([a, b])
        return float(np.sqrt(((va - vb) ** 2).sum()))

    def distance_to_many(self, query: Trajectory,
                         candidates: Sequence[Trajectory]) -> np.ndarray:
        vq = self.encode(query)
        vc = self.encode_many(candidates)
        return np.sqrt(((vc - vq[None, :]) ** 2).sum(axis=1))
