"""Common machinery for trajectory distance measures.

Every measure implements :class:`TrajectoryDistance`:

* ``distance(a, b)`` — reference implementation for one pair.
* ``distance_to_many(query, candidates)`` — vectorized batch version used
  by the evaluation harness; computes the query's distance to an entire
  database in one shot by padding candidates and running the dynamic
  program over anti-diagonal wavefronts with numpy.

Subclasses must keep the two paths consistent; the test suite checks
``distance_to_many`` against ``distance`` pair by pair.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence, Tuple

import numpy as np

from ..data.trajectory import Trajectory

INF = np.inf


def point_dists(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise Euclidean distances: ``(n, 2) x (m, 2) -> (n, m)``."""
    diff = a[:, None, :] - b[None, :, :]
    return np.sqrt((diff ** 2).sum(axis=2))


def stack_padded(trajectories: Sequence[Trajectory]) -> Tuple[np.ndarray, np.ndarray]:
    """Stack trajectories into ``(N, L_max, 2)`` padded with the last point.

    Padding with the final point (rather than zeros) keeps vectorized cost
    tensors finite; the DP reads results at each trajectory's true length,
    so padded cells never influence the answer.
    """
    lengths = np.array([len(t) for t in trajectories], dtype=np.int64)
    max_len = int(lengths.max())
    out = np.empty((len(trajectories), max_len, 2))
    for k, traj in enumerate(trajectories):
        n = len(traj)
        out[k, :n] = traj.points
        out[k, n:] = traj.points[-1]
    return out, lengths


def batched_cost_tensor(query: np.ndarray, candidates: np.ndarray) -> np.ndarray:
    """Distance tensor ``(N, n, L)``: query point i vs candidate k point j."""
    diff = query[None, :, None, :] - candidates[:, None, :, :]
    return np.sqrt((diff ** 2).sum(axis=3))


def anti_diagonals(n: int, m: int):
    """Yield ``(I, J)`` index vectors for each anti-diagonal of an (n, m) grid."""
    for d in range(n + m - 1):
        lo = max(0, d - m + 1)
        hi = min(n - 1, d)
        i = np.arange(lo, hi + 1)
        yield i, d - i


class TrajectoryDistance(ABC):
    """Interface shared by t2vec and all baselines."""

    #: Short display name used in experiment tables.
    name: str = "distance"

    @abstractmethod
    def distance(self, a: Trajectory, b: Trajectory) -> float:
        """Distance between one pair of trajectories (lower = more similar)."""

    def reference_distance(self, a: Trajectory, b: Trajectory) -> float:
        """Independent single-pair implementation used as a test oracle.

        Measures whose ``distance`` delegates to the batched kernel
        override this with the plain (loop-based) dynamic program so the
        batched-vs-single parity tests stay meaningful.
        """
        return self.distance(a, b)

    def distance_to_many(self, query: Trajectory,
                         candidates: Sequence[Trajectory]) -> np.ndarray:
        """Distances from ``query`` to every candidate.

        The base implementation loops; DP measures override it with a
        vectorized wavefront version.
        """
        return np.array([self.distance(query, c) for c in candidates])

    def distance_matrix(self, queries: Sequence[Trajectory],
                        candidates: Sequence[Trajectory]) -> np.ndarray:
        """All query-candidate distances as a ``(Q, N)`` matrix.

        The base implementation runs ``distance_to_many`` per query (the
        DP measures' batching axis is the candidate set); vector-space
        measures override it with one blocked GEMM over encoded queries.
        """
        if len(queries) == 0:
            return np.zeros((0, len(candidates)))
        return np.stack([self.distance_to_many(q, candidates)
                         for q in queries])

    def knn(self, query: Trajectory, candidates: Sequence[Trajectory],
            k: int) -> np.ndarray:
        """Indices of the k nearest candidates, nearest first."""
        dists = self.distance_to_many(query, candidates)
        k = min(k, len(dists))
        idx = np.argpartition(dists, k - 1)[:k]
        return idx[np.argsort(dists[idx], kind="stable")]

    def knn_batch(self, queries: Sequence[Trajectory],
                  candidates: Sequence[Trajectory], k: int) -> np.ndarray:
        """k nearest candidates for every query: ``(Q, min(k, N))`` indices.

        Row ``i`` equals ``knn(queries[i], candidates, k)`` — the per-row
        partition and stable sort are the same operations the single-query
        path applies, so results (ties included) are identical.
        """
        dists = self.distance_matrix(queries, candidates)
        k = min(k, dists.shape[1])
        if k < 1:
            return np.zeros((len(queries), 0), dtype=np.int64)
        if k < dists.shape[1]:
            idx = np.argpartition(dists, k - 1, axis=1)[:, :k]
        else:
            idx = np.broadcast_to(np.arange(k), (len(queries), k))
        rows = np.arange(len(queries))[:, None]
        order = np.argsort(dists[rows, idx], axis=1, kind="stable")
        return np.ascontiguousarray(idx[rows, order])

    def rank_of(self, query: Trajectory, candidates: Sequence[Trajectory],
                target_index: int) -> int:
        """1-based rank of ``candidates[target_index]`` in the query's result list.

        Ties are counted optimistically (strictly smaller distances only),
        which treats all measures uniformly in the mean-rank experiments.
        """
        dists = self.distance_to_many(query, candidates)
        return int((dists < dists[target_index]).sum()) + 1

    def rank_of_many(self, queries: Sequence[Trajectory],
                     candidates: Sequence[Trajectory],
                     target_indices: Sequence[int]) -> np.ndarray:
        """1-based rank of each query's target, computed in one batch.

        Same optimistic tie rule as :meth:`rank_of`; one ``distance_matrix``
        call serves every query.
        """
        dists = self.distance_matrix(queries, candidates)
        targets = np.asarray(target_indices, dtype=np.int64)
        own = dists[np.arange(len(dists)), targets]
        return (dists < own[:, None]).sum(axis=1).astype(np.int64) + 1
