"""Common-set (CMS) baseline.

The paper's sanity-check baseline: map trajectories to hot cells and
compare their *sets* of cells, ignoring order.  If a sequence model only
ever exploited shared cells, CMS would perform as well — Table III shows
it performs worst, which is the evidence that t2vec learns more than cell
overlap.

We use the Jaccard distance ``1 - |A ∩ B| / |A ∪ B|``.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..data.trajectory import Trajectory
from ..spatial.vocab import CellVocabulary
from .base import TrajectoryDistance


class CMS(TrajectoryDistance):
    """Jaccard distance over hot-cell token sets."""

    name = "CMS"

    def __init__(self, vocab: CellVocabulary):
        self.vocab = vocab
        self._cache: Dict[bytes, frozenset] = {}

    def _token_set(self, trajectory: Trajectory) -> frozenset:
        key = trajectory.cache_key()
        cached = self._cache.get(key)
        if cached is None:
            cached = frozenset(self.vocab.tokenize_points(trajectory.points).tolist())
            self._cache[key] = cached
        return cached

    def distance(self, a: Trajectory, b: Trajectory) -> float:
        sa, sb = self._token_set(a), self._token_set(b)
        union = len(sa | sb)
        if union == 0:
            return 0.0
        return 1.0 - len(sa & sb) / union

    def distance_to_many(self, query: Trajectory,
                         candidates: Sequence[Trajectory]) -> np.ndarray:
        sq = self._token_set(query)
        out = np.empty(len(candidates))
        for k, cand in enumerate(candidates):
            sc = self._token_set(cand)
            union = len(sq | sc)
            out[k] = 0.0 if union == 0 else 1.0 - len(sq & sc) / union
        return out
