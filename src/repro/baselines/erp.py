"""Edit distance with Real Penalty (Chen & Ng, VLDB 2004).

ERP is a metric: gaps are penalized by the distance to a fixed gap point
``g`` (here the centroid of the data, or a user-supplied point), and
substitutions by the real inter-point distance.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..data.trajectory import Trajectory
from .base import TrajectoryDistance, anti_diagonals, batched_cost_tensor, point_dists, stack_padded


class ERP(TrajectoryDistance):
    """ERP with gap point ``g`` (defaults to the origin of the meter plane)."""

    name = "ERP"

    def __init__(self, gap_point: Optional[np.ndarray] = None):
        self.gap_point = (np.zeros(2) if gap_point is None
                          else np.asarray(gap_point, dtype=float).reshape(2))

    def _gap_costs(self, points: np.ndarray) -> np.ndarray:
        return np.sqrt(((points - self.gap_point) ** 2).sum(axis=-1))

    def distance(self, a: Trajectory, b: Trajectory) -> float:
        return float(self.distance_to_many(a, [b])[0])

    def reference_distance(self, a: Trajectory, b: Trajectory) -> float:
        cost = point_dists(a.points, b.points)
        gap_a = self._gap_costs(a.points)
        gap_b = self._gap_costs(b.points)
        n, m = cost.shape
        dp = np.zeros((n + 1, m + 1))
        dp[1:, 0] = np.cumsum(gap_a)
        dp[0, 1:] = np.cumsum(gap_b)
        for i in range(1, n + 1):
            for j in range(1, m + 1):
                dp[i, j] = min(
                    dp[i - 1, j - 1] + cost[i - 1, j - 1],
                    dp[i - 1, j] + gap_a[i - 1],
                    dp[i, j - 1] + gap_b[j - 1],
                )
        return float(dp[n, m])

    def distance_to_many(self, query: Trajectory,
                         candidates: Sequence[Trajectory]) -> np.ndarray:
        points, lengths = stack_padded(candidates)
        cost = batched_cost_tensor(query.points, points)   # (N, n, L)
        gap_q = self._gap_costs(query.points)              # (n,)
        gap_c = self._gap_costs(points)                    # (N, L)
        big_n, n, max_len = cost.shape
        dp = np.zeros((big_n, n + 1, max_len + 1))
        dp[:, 1:, 0] = np.cumsum(gap_q)[None, :]
        dp[:, 0, 1:] = np.cumsum(gap_c, axis=1)
        for i, j in anti_diagonals(n, max_len):
            best = np.minimum(
                dp[:, i, j] + cost[:, i, j],
                np.minimum(dp[:, i, j + 1] + gap_q[i],
                           dp[:, i + 1, j] + gap_c[:, j]),
            )
            dp[:, i + 1, j + 1] = best
        return dp[np.arange(big_n), n, lengths]
