"""Baseline trajectory similarity measures.

Every measure implements the :class:`TrajectoryDistance` interface so
the evaluation harness treats them and t2vec uniformly:

* :class:`DTW` — dynamic time warping (dominated by EDR; completeness).
* :class:`EDR` — edit distance on real sequences (threshold ε).
* :class:`LCSS` — longest common subsequence (threshold ε).
* :class:`ERP` — edit distance with real penalty (metric; completeness).
* :class:`EDwP` — edit distance with projections (state-of-the-art
  pairwise baseline for inconsistent sampling rates).
* :class:`CMS` — common hot-cell set (Jaccard) — order-blind control.
* :class:`VanillaRNNEmbedding` — next-cell GRU language model (vRNN).
"""

from .base import TrajectoryDistance, point_dists, stack_padded
from .cms import CMS
from .dissim import DISSIM
from .dtw import DTW
from .edr import EDR, suggest_epsilon
from .edwp import EDwP
from .erp import ERP
from .lcss import LCSS
from .vanilla_rnn import VanillaRNNEmbedding

__all__ = [
    "CMS",
    "DISSIM",
    "DTW",
    "EDR",
    "EDwP",
    "ERP",
    "LCSS",
    "TrajectoryDistance",
    "VanillaRNNEmbedding",
    "point_dists",
    "stack_padded",
    "suggest_epsilon",
]
