"""Edit Distance on Real sequences (Chen et al., SIGMOD 2005).

Two points match when they fall within ``epsilon`` in *both* coordinates
(the original paper's per-dimension threshold — this is the implicit
space partitioning the introduction of t2vec describes).  The distance is
the minimum number of insert/delete/substitute operations.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..data.trajectory import Trajectory
from .base import TrajectoryDistance, anti_diagonals, stack_padded


def suggest_epsilon(trajectories: Sequence[Trajectory], fraction: float = 0.25) -> float:
    """Heuristic from the EDR paper: a fraction of the pooled coordinate std.

    Chen et al. report that ``eps`` equal to a quarter of the (minimum)
    coordinate standard deviation works well across datasets.
    """
    points = np.concatenate([t.points for t in trajectories], axis=0)
    return float(fraction * min(points[:, 0].std(), points[:, 1].std()))


class EDR(TrajectoryDistance):
    """EDR with matching threshold ``epsilon`` (meters)."""

    name = "EDR"

    def __init__(self, epsilon: float):
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.epsilon = epsilon

    def _matches(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """(n, m) boolean: per-dimension |Δ| <= eps on both axes."""
        diff = np.abs(a[:, None, :] - b[None, :, :])
        return (diff <= self.epsilon).all(axis=2)

    def distance(self, a: Trajectory, b: Trajectory) -> float:
        return float(self.distance_to_many(a, [b])[0])

    def reference_distance(self, a: Trajectory, b: Trajectory) -> float:
        match = self._matches(a.points, b.points)
        n, m = match.shape
        dp = np.zeros((n + 1, m + 1))
        dp[:, 0] = np.arange(n + 1)
        dp[0, :] = np.arange(m + 1)
        for i in range(1, n + 1):
            for j in range(1, m + 1):
                sub = dp[i - 1, j - 1] + (0.0 if match[i - 1, j - 1] else 1.0)
                dp[i, j] = min(sub, dp[i - 1, j] + 1.0, dp[i, j - 1] + 1.0)
        return float(dp[n, m])

    def distance_to_many(self, query: Trajectory,
                         candidates: Sequence[Trajectory]) -> np.ndarray:
        points, lengths = stack_padded(candidates)
        diff = np.abs(query.points[None, :, None, :] - points[:, None, :, :])
        match = (diff <= self.epsilon).all(axis=3)         # (N, n, L)
        big_n, n, max_len = match.shape
        dp = np.zeros((big_n, n + 1, max_len + 1))
        dp[:, :, 0] = np.arange(n + 1)[None, :]
        dp[:, 0, :] = np.arange(max_len + 1)[None, :]
        for i, j in anti_diagonals(n, max_len):
            sub = dp[:, i, j] + (1.0 - match[:, i, j])
            gap = np.minimum(dp[:, i, j + 1], dp[:, i + 1, j]) + 1.0
            dp[:, i + 1, j + 1] = np.minimum(sub, gap)
        return dp[np.arange(big_n), n, lengths]
