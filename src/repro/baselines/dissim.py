"""DISSIM — dissimilarity as a time integral (Frentzos et al., ICDE 2007).

DISSIM treats trajectories as moving points and integrates the Euclidean
distance between them over time:

    DISSIM(T1, T2) = ∫ d(T1(t), T2(t)) dt

with linear interpolation between sample points and the trapezoidal rule
over the union of both trajectories' timestamps.  The paper's related
work cites it as one of the classic measures (reference [16]); it is not
part of the experiment tables but completes the baseline family.

Two alignment modes:

* ``"rescale"`` (default) — both trajectories are linearly rescaled to a
  common [0, 1] time domain, so trajectories of different durations (or
  without timestamps, using point indices) remain comparable.  The result
  is the *average* distance over the common domain.
* ``"absolute"`` — integrate over the overlap of the real time windows;
  trajectories that never coexist raise ``ValueError``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..data.trajectory import Trajectory
from .base import TrajectoryDistance

# numpy 2.x renamed trapz -> trapezoid.
_trapezoid = getattr(np, "trapezoid", None) or np.trapz


def _times_of(trajectory: Trajectory, mode: str) -> np.ndarray:
    if trajectory.timestamps is None:
        if mode == "absolute":
            raise ValueError("absolute DISSIM needs timestamps")
        return np.linspace(0.0, 1.0, len(trajectory))
    times = trajectory.timestamps.astype(float)
    if mode == "rescale":
        span = times[-1] - times[0]
        if span <= 0:
            return np.linspace(0.0, 1.0, len(trajectory))
        return (times - times[0]) / span
    return times


def _interp(points: np.ndarray, times: np.ndarray, at: np.ndarray) -> np.ndarray:
    x = np.interp(at, times, points[:, 0])
    y = np.interp(at, times, points[:, 1])
    return np.stack([x, y], axis=1)


class DISSIM(TrajectoryDistance):
    """Integral-of-distance dissimilarity with linear interpolation."""

    name = "DISSIM"

    def __init__(self, align: str = "rescale"):
        if align not in ("rescale", "absolute"):
            raise ValueError(f"align must be 'rescale' or 'absolute', got {align}")
        self.align = align

    def distance(self, a: Trajectory, b: Trajectory) -> float:
        times_a = _times_of(a, self.align)
        times_b = _times_of(b, self.align)
        start = max(times_a[0], times_b[0])
        stop = min(times_a[-1], times_b[-1])
        if stop <= start:
            raise ValueError(
                "trajectories have no overlapping time window; "
                "use align='rescale' for asynchronous trajectories")
        grid = np.union1d(times_a, times_b)
        grid = grid[(grid >= start) & (grid <= stop)]
        if grid[0] > start:
            grid = np.concatenate([[start], grid])
        if grid[-1] < stop:
            grid = np.concatenate([grid, [stop]])
        pa = _interp(a.points, times_a, grid)
        pb = _interp(b.points, times_b, grid)
        dists = np.sqrt(((pa - pb) ** 2).sum(axis=1))
        return float(_trapezoid(dists, grid))

    def distance_to_many(self, query: Trajectory,
                         candidates: Sequence[Trajectory]) -> np.ndarray:
        # Interpolation grids differ per pair; the simple loop is already
        # O(n+m) per pair so there is no DP to vectorize away.
        return np.array([self.distance(query, c) for c in candidates])
