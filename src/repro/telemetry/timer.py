"""Wall-clock timing: a plain :class:`Timer` and registry-backed spans."""

from __future__ import annotations

import time
from typing import Any, Dict, Optional

from .registry import MetricsRegistry, Span


class Timer:
    """A manual stopwatch, also usable as a context manager::

        with Timer() as t:
            work()
        print(t.elapsed_s)
    """

    def __init__(self):
        self._start: Optional[float] = None
        self.elapsed_s: float = 0.0

    def start(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        self.elapsed_s = time.perf_counter() - self._start
        self._start = None
        return self.elapsed_s

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class SpanTimer:
    """Context manager created by :meth:`MetricsRegistry.span`.

    Tracks nesting through the registry's span stack: the parent of a
    span is whatever span was open when it started.  On exit the
    completed :class:`Span` is appended to ``registry.spans`` and (by
    default) its duration is observed into the histogram of the same
    name, so repeated spans get percentiles without extra code.
    """

    # Registry creation order gives a stable epoch for start offsets.
    _epoch = time.perf_counter()

    def __init__(self, registry: MetricsRegistry, name: str,
                 record_histogram: bool = True,
                 meta: Optional[Dict[str, Any]] = None):
        self.registry = registry
        self.name = name
        self.record_histogram = record_histogram
        self.meta = dict(meta or {})
        self._start: Optional[float] = None
        self.span: Optional[Span] = None

    def __enter__(self) -> "SpanTimer":
        stack = self.registry._span_stack
        self.span = Span(
            name=self.name,
            parent=stack[-1] if stack else None,
            depth=len(stack),
            start_s=time.perf_counter() - self._epoch,
            meta=self.meta,
        )
        stack.append(self.name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._start is not None and self.span is not None
        self.span.duration_s = time.perf_counter() - self._start
        stack = self.registry._span_stack
        if stack and stack[-1] == self.name:
            stack.pop()
        self.registry.spans.append(self.span)
        if self.record_histogram:
            self.registry.histogram(self.name).observe(self.span.duration_s)
