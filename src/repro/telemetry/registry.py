"""Metric primitives and the :class:`MetricsRegistry`.

Dependency-free observability for the reproduction: counters (monotonic
totals), gauges (last-value with history, e.g. per-epoch loss), and
histograms (latency distributions with p50/p95/p99).  A registry also
owns a stack of timing :class:`Span`s (see :mod:`repro.telemetry.timer`)
so nested phases of a run ("fit" > "fit.epoch" > "train.step") can be
reconstructed from the export.

Instrumented code takes an optional ``registry`` argument; ``None`` means
the process-wide default from :func:`get_registry`, so casual callers get
metrics without plumbing anything through.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


class Counter:
    """A monotonically increasing total (events, tokens, cache hits)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a gauge instead")
        self.value += amount

    def to_record(self) -> Dict[str, Any]:
        return {"type": "counter", "name": self.name, "value": self.value}


class Gauge:
    """A last-value metric that remembers its history.

    ``set`` appends to ``history``, so a gauge doubles as a cheap time
    series — per-epoch training loss, tokens/sec per epoch, and so on.
    """

    __slots__ = ("name", "history")

    def __init__(self, name: str):
        self.name = name
        self.history: List[float] = []

    @property
    def value(self) -> Optional[float]:
        return self.history[-1] if self.history else None

    def set(self, value: float) -> None:
        self.history.append(float(value))

    def to_record(self) -> Dict[str, Any]:
        return {"type": "gauge", "name": self.name, "value": self.value,
                "history": list(self.history)}


class Histogram:
    """A distribution of observations with exact percentiles.

    Observations are kept verbatim (runs here are thousands of events,
    not millions), so percentiles are exact order statistics computed
    with linear interpolation, matching ``numpy.percentile``'s default.
    """

    __slots__ = ("name", "values")

    def __init__(self, name: str):
        self.name = name
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else math.nan

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100) by linear interpolation."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self.values:
            return math.nan
        ordered = sorted(self.values)
        rank = (len(ordered) - 1) * q / 100.0
        lo = math.floor(rank)
        hi = math.ceil(rank)
        if lo == hi:
            return ordered[lo]
        weight = rank - lo
        return ordered[lo] * (1 - weight) + ordered[hi] * weight

    def summary(self) -> Dict[str, float]:
        if not self.values:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.mean,
            "min": min(self.values),
            "max": max(self.values),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def to_record(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {"type": "histogram", "name": self.name}
        record.update(self.summary())
        return record


@dataclass
class Span:
    """One completed timed section (see :meth:`MetricsRegistry.span`)."""

    name: str
    parent: Optional[str] = None
    depth: int = 0
    start_s: float = 0.0          # offset from the registry's epoch
    duration_s: float = 0.0
    meta: Dict[str, Any] = field(default_factory=dict)

    def to_record(self) -> Dict[str, Any]:
        record = {"type": "span", "name": self.name, "parent": self.parent,
                  "depth": self.depth, "start_s": self.start_s,
                  "duration_s": self.duration_s}
        if self.meta:
            record["meta"] = dict(self.meta)
        return record


class MetricsRegistry:
    """Namespace of counters, gauges, histograms, and completed spans.

    Metric accessors are create-on-first-use::

        reg = MetricsRegistry()
        reg.counter("encode.cache_hits").inc()
        reg.gauge("train.epoch_loss").set(1.25)
        reg.histogram("encode.latency_s").observe(0.004)
        with reg.span("fit"):
            with reg.span("fit.epoch"):
                ...
    """

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self.spans: List[Span] = []
        self._span_stack: List[str] = []  # names of open spans (nesting)

    # -- accessors ------------------------------------------------------
    def counter(self, name: str) -> Counter:
        return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._gauges.setdefault(name, Gauge(name))

    def histogram(self, name: str) -> Histogram:
        return self._histograms.setdefault(name, Histogram(name))

    def span(self, name: str, record_histogram: bool = True, **meta):
        """A context manager timing a (possibly nested) section.

        Every completed span is appended to :attr:`spans`; with
        ``record_histogram`` its duration also feeds the histogram of the
        same name, so repeated spans ("index.knn") get p50/p95 for free.
        """
        from .timer import SpanTimer  # local import avoids a module cycle
        return SpanTimer(self, name, record_histogram=record_histogram,
                         meta=meta)

    # -- introspection --------------------------------------------------
    @property
    def counters(self) -> Dict[str, float]:
        return {name: c.value for name, c in sorted(self._counters.items())}

    @property
    def gauges(self) -> Dict[str, Optional[float]]:
        return {name: g.value for name, g in sorted(self._gauges.items())}

    @property
    def histograms(self) -> Dict[str, Dict[str, float]]:
        return {name: h.summary()
                for name, h in sorted(self._histograms.items())}

    def snapshot(self) -> Dict[str, Any]:
        """Current state as one nested dict (counters/gauges/histograms)."""
        return {
            "counters": self.counters,
            "gauges": {name: {"value": g.value, "history": list(g.history)}
                       for name, g in sorted(self._gauges.items())},
            "histograms": self.histograms,
            "spans": [span.to_record() for span in self.spans],
        }

    def to_records(self) -> List[Dict[str, Any]]:
        """Flat JSONL-ready rows, one per metric / span."""
        records: List[Dict[str, Any]] = []
        for counter in self._counters.values():
            records.append(counter.to_record())
        for gauge in self._gauges.values():
            records.append(gauge.to_record())
        for histogram in self._histograms.values():
            records.append(histogram.to_record())
        for span in self.spans:
            records.append(span.to_record())
        return sorted(records, key=lambda r: (r["type"], r["name"]))

    def reset(self) -> None:
        """Drop all recorded metrics and spans (open spans survive)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self.spans.clear()


_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry used when ``registry=None``."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-wide default registry; returns the old one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous
