"""Exporters: registry → JSONL / dict, and a text summary renderer.

The JSONL schema is one JSON object per line with a ``type`` field:

* ``{"type": "counter", "name": ..., "value": ...}``
* ``{"type": "gauge", "name": ..., "value": ..., "history": [...]}``
* ``{"type": "histogram", "name": ..., "count": ..., "mean": ...,
  "min": ..., "max": ..., "p50": ..., "p95": ..., "p99": ...}``
* ``{"type": "span", "name": ..., "parent": ..., "depth": ...,
  "start_s": ..., "duration_s": ...}``

:func:`summarize` renders a list of such records back into the repo's
paper-style text tables (:mod:`repro.eval.reporting`) and ASCII charts
(:mod:`repro.eval.ascii_chart`) — the same machinery the experiment
drivers use, so ``repro stats`` output matches the benches.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, Iterable, List, Union

from .registry import MetricsRegistry

Pathish = Union[str, Path]


def to_records(registry: MetricsRegistry) -> List[Dict[str, Any]]:
    """Flat rows for the registry's current state (JSONL schema above)."""
    return registry.to_records()


def write_jsonl(registry: MetricsRegistry, path: Pathish) -> int:
    """Write one JSON object per line; returns the number of records."""
    records = to_records(registry)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")
    return len(records)


def read_jsonl(path: Pathish) -> List[Dict[str, Any]]:
    """Load records written by :func:`write_jsonl` (blank lines skipped)."""
    records = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _fmt_value(value: float) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "n/a"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    if value != 0 and (abs(value) < 0.001 or abs(value) >= 100000):
        return f"{value:.3e}"
    return f"{value:.4f}"


def summarize(records: Iterable[Dict[str, Any]], width: int = 60) -> str:
    """Render exported records as text tables plus loss-curve charts."""
    from ..eval.ascii_chart import line_chart
    from ..eval.reporting import format_table

    records = list(records)
    sections: List[str] = []

    counters = [r for r in records if r.get("type") == "counter"]
    if counters:
        lines = ["counters"]
        name_width = max(len(r["name"]) for r in counters)
        for r in sorted(counters, key=lambda r: r["name"]):
            lines.append(f"  {r['name'].ljust(name_width)}  "
                         f"{_fmt_value(r['value'])}")
        sections.append("\n".join(lines))

    gauges = [r for r in records if r.get("type") == "gauge"]
    if gauges:
        lines = ["gauges (last value)"]
        name_width = max(len(r["name"]) for r in gauges)
        for r in sorted(gauges, key=lambda r: r["name"]):
            lines.append(f"  {r['name'].ljust(name_width)}  "
                         f"{_fmt_value(r['value'])}")
        sections.append("\n".join(lines))

    histograms = [r for r in records
                  if r.get("type") == "histogram" and r.get("count", 0) > 0]
    if histograms:
        columns = ["count", "mean", "p50", "p95", "p99", "max"]
        rows = {r["name"]: [float(r.get(c, math.nan)) for c in columns]
                for r in sorted(histograms, key=lambda r: r["name"])}
        sections.append(format_table("histograms (seconds unless noted)",
                                     "histogram", columns, rows, precision=4))

    # Gauge histories with >= 2 points plot as curves (loss trajectories).
    curves = {r["name"]: [float(v) for v in r.get("history", [])]
              for r in gauges if len(r.get("history", [])) >= 2}
    for name, history in sorted(curves.items()):
        sections.append(line_chart(
            f"{name} per observation", list(range(1, len(history) + 1)),
            {name: history}, width=width, height=10))

    spans = [r for r in records if r.get("type") == "span"]
    if spans:
        totals: Dict[str, List[float]] = {}
        for r in spans:
            totals.setdefault(r["name"], []).append(float(r["duration_s"]))
        lines = ["spans (total seconds / count)"]
        name_width = max(len(name) for name in totals)
        for name, durations in sorted(totals.items()):
            lines.append(f"  {name.ljust(name_width)}  "
                         f"{sum(durations):.4f}s / {len(durations)}")
        sections.append("\n".join(lines))

    if not sections:
        return "no metrics recorded"
    return "\n\n".join(sections)


def cache_hit_rate(records: Iterable[Dict[str, Any]],
                   prefix: str = "encode.cache") -> float:
    """Hit rate implied by ``<prefix>_hits`` / ``<prefix>_misses`` counters."""
    hits = misses = 0.0
    for r in records:
        if r.get("type") != "counter":
            continue
        if r.get("name") == f"{prefix}_hits":
            hits = float(r["value"])
        elif r.get("name") == f"{prefix}_misses":
            misses = float(r["value"])
    total = hits + misses
    return hits / total if total else math.nan
