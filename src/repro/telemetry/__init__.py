"""Dependency-free observability for the t2vec reproduction.

* :class:`MetricsRegistry` — counters, gauges, histograms (p50/p95/p99),
  plus nested timing spans; a process-wide default lives behind
  :func:`get_registry` / :func:`set_registry`.
* :class:`Timer` / :meth:`MetricsRegistry.span` — wall-clock timing.
* :mod:`~repro.telemetry.export` — JSONL/dict exporters and the text
  summary used by ``python -m repro stats``.
* :class:`Callback` / :class:`ProgressLogger` — the trainer hook API
  (``Trainer.fit(..., callbacks=[...])``).

See ``docs/observability.md`` for the full metric schema.
"""

from .callbacks import (Callback, CallbackList, HistoryCallback,
                        ProgressLogger, StopTraining)
from .export import (cache_hit_rate, read_jsonl, summarize, to_records,
                     write_jsonl)
from .registry import (Counter, Gauge, Histogram, MetricsRegistry, Span,
                       get_registry, set_registry)
from .timer import Timer

__all__ = [
    "Callback",
    "CallbackList",
    "Counter",
    "Gauge",
    "Histogram",
    "HistoryCallback",
    "MetricsRegistry",
    "ProgressLogger",
    "Span",
    "StopTraining",
    "Timer",
    "cache_hit_rate",
    "get_registry",
    "read_jsonl",
    "set_registry",
    "summarize",
    "to_records",
    "write_jsonl",
]
