"""The trainer callback API.

:class:`Callback` is the extension point of :meth:`repro.core.Trainer.fit`:
subclass it (all hooks are no-ops) and pass instances via
``fit(..., callbacks=[...])``.  Hook order per fit::

    on_fit_start
      on_epoch_start            # once per epoch
        on_batch_end            # once per optimizer step
      on_epoch_end              # logs: train_loss, val_loss, tokens_per_s,
                                #       epoch_time_s, steps
    on_fit_end

Hooks receive the :class:`~repro.core.Trainer` itself, so a callback can
inspect the model, adjust the optimizer, or stop training by raising
:class:`StopTraining`.
"""

from __future__ import annotations

import sys
from typing import Any, Dict, List, Optional


class StopTraining(Exception):
    """Raise inside a callback hook to end :meth:`Trainer.fit` cleanly."""


class Callback:
    """Base class for trainer callbacks; every hook defaults to a no-op."""

    def on_fit_start(self, trainer) -> None:
        """Called once before the first epoch."""

    def on_epoch_start(self, trainer, epoch: int) -> None:
        """Called at the top of each epoch (0-based)."""

    def on_batch_end(self, trainer, step: int, loss: float,
                     tokens: int) -> None:
        """Called after each optimizer step.

        ``step`` counts from 0 across the whole fit; ``tokens`` is the
        number of real (unpadded) source+target positions in the batch.
        """

    def on_epoch_end(self, trainer, epoch: int,
                     logs: Dict[str, Any]) -> None:
        """Called after each epoch with that epoch's derived metrics."""

    def on_fit_end(self, trainer, result) -> None:
        """Called once after training (including early stops)."""


class CallbackList(Callback):
    """Dispatches every hook to an ordered list of callbacks."""

    def __init__(self, callbacks: Optional[List[Callback]] = None):
        self.callbacks = list(callbacks or [])

    def on_fit_start(self, trainer) -> None:
        for cb in self.callbacks:
            cb.on_fit_start(trainer)

    def on_epoch_start(self, trainer, epoch: int) -> None:
        for cb in self.callbacks:
            cb.on_epoch_start(trainer, epoch)

    def on_batch_end(self, trainer, step: int, loss: float,
                     tokens: int) -> None:
        for cb in self.callbacks:
            cb.on_batch_end(trainer, step, loss, tokens)

    def on_epoch_end(self, trainer, epoch: int,
                     logs: Dict[str, Any]) -> None:
        for cb in self.callbacks:
            cb.on_epoch_end(trainer, epoch, logs)

    def on_fit_end(self, trainer, result) -> None:
        for cb in self.callbacks:
            cb.on_fit_end(trainer, result)


class ProgressLogger(Callback):
    """Prints one line per epoch: loss, validation loss, and throughput."""

    def __init__(self, stream=None, every: int = 1):
        if every < 1:
            raise ValueError("every must be >= 1")
        self.stream = stream
        self.every = every

    def _print(self, message: str) -> None:
        print(message, file=self.stream or sys.stderr)

    def on_fit_start(self, trainer) -> None:
        cfg = trainer.config
        self._print(f"fit: max_epochs={cfg.max_epochs} "
                    f"batch_size={cfg.batch_size} lr={cfg.lr}")

    def on_epoch_end(self, trainer, epoch: int,
                     logs: Dict[str, Any]) -> None:
        if (epoch + 1) % self.every:
            return
        val = logs.get("val_loss")
        val_text = f" val={val:.4f}" if val is not None else ""
        self._print(f"epoch {epoch + 1:>3}: loss={logs['train_loss']:.4f}"
                    f"{val_text} {logs['tokens_per_s']:.0f} tok/s "
                    f"({logs['epoch_time_s']:.2f}s)")

    def on_fit_end(self, trainer, result) -> None:
        self._print(f"fit done: {result.epochs_run} epochs, "
                    f"{result.steps} steps, {result.wall_time_s:.2f}s"
                    f"{' (early stop)' if result.stopped_early else ''}")


class HistoryCallback(Callback):
    """Accumulates every ``on_epoch_end`` logs dict (handy in tests)."""

    def __init__(self):
        self.history: List[Dict[str, Any]] = []

    def on_epoch_end(self, trainer, epoch: int,
                     logs: Dict[str, Any]) -> None:
        self.history.append(dict(logs, epoch=epoch))
