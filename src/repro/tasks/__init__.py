"""Downstream tasks built on learned trajectory representations.

The paper's conclusion (§VI) proposes using the representations for
downstream analyses; this package implements the first of them —
trajectory clustering — with its own k-means and cluster-quality metrics.
"""

from .clustering import (KMeans, cluster_purity, cluster_trajectories,
                         normalized_mutual_information)

__all__ = [
    "KMeans",
    "cluster_purity",
    "cluster_trajectories",
    "normalized_mutual_information",
]
