"""Trajectory clustering on learned representations (paper §VI, item 1).

Because t2vec reduces similarity search to Euclidean distance between
vectors, clustering a trajectory archive becomes ordinary vector
clustering — the use case the paper highlights as intractable for the
O(n²) pairwise measures.  This module provides:

* :class:`KMeans` — Lloyd's algorithm with k-means++ seeding and empty-
  cluster reseeding, written from scratch on numpy.
* :func:`cluster_purity` / :func:`normalized_mutual_information` —
  agreement between a clustering and ground-truth labels (the synthetic
  generator's route ids).
* :func:`cluster_trajectories` — one-call convenience wiring a fitted
  :class:`~repro.core.t2vec.T2Vec` to :class:`KMeans`.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional, Sequence

import numpy as np


class KMeans:
    """Lloyd's algorithm with k-means++ initialization."""

    def __init__(self, n_clusters: int, max_iters: int = 100,
                 tol: float = 1e-6, seed: int = 0):
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        self.n_clusters = n_clusters
        self.max_iters = max_iters
        self.tol = tol
        self.seed = seed
        self.centers: Optional[np.ndarray] = None
        self.inertia: Optional[float] = None
        self.iterations_run: int = 0

    # ------------------------------------------------------------------
    def fit(self, vectors: np.ndarray) -> "KMeans":
        vectors = np.asarray(vectors, dtype=float)
        if vectors.ndim != 2:
            raise ValueError(f"vectors must be (n, d), got {vectors.shape}")
        if len(vectors) < self.n_clusters:
            raise ValueError(
                f"{len(vectors)} points cannot form {self.n_clusters} clusters")
        rng = np.random.default_rng(self.seed)
        centers = self._plus_plus_init(vectors, rng)
        for iteration in range(self.max_iters):
            labels = self._assign(vectors, centers)
            new_centers = centers.copy()
            for cluster in range(self.n_clusters):
                members = vectors[labels == cluster]
                if len(members):
                    new_centers[cluster] = members.mean(axis=0)
                else:
                    # Reseed an empty cluster at the point farthest from
                    # its current center (standard fix-up).
                    dists = self._distances(vectors, centers).min(axis=1)
                    new_centers[cluster] = vectors[int(dists.argmax())]
            shift = float(np.sqrt(((new_centers - centers) ** 2).sum(axis=1)).max())
            centers = new_centers
            self.iterations_run = iteration + 1
            if shift < self.tol:
                break
        self.centers = centers
        labels = self._assign(vectors, centers)
        self.inertia = float(((vectors - centers[labels]) ** 2).sum())
        return self

    def predict(self, vectors: np.ndarray) -> np.ndarray:
        if self.centers is None:
            raise RuntimeError("KMeans is not fitted")
        return self._assign(np.asarray(vectors, dtype=float), self.centers)

    def fit_predict(self, vectors: np.ndarray) -> np.ndarray:
        return self.fit(vectors).predict(vectors)

    # ------------------------------------------------------------------
    def _plus_plus_init(self, vectors: np.ndarray,
                        rng: np.random.Generator) -> np.ndarray:
        n = len(vectors)
        centers = [vectors[rng.integers(n)]]
        for _ in range(1, self.n_clusters):
            dists = self._distances(vectors, np.asarray(centers)).min(axis=1)
            total = dists.sum()
            if total <= 0:  # all points identical to a center
                centers.append(vectors[rng.integers(n)])
                continue
            probs = dists / total
            centers.append(vectors[rng.choice(n, p=probs)])
        return np.asarray(centers)

    @staticmethod
    def _distances(vectors: np.ndarray, centers: np.ndarray) -> np.ndarray:
        diff = vectors[:, None, :] - centers[None, :, :]
        return (diff ** 2).sum(axis=2)

    def _assign(self, vectors: np.ndarray, centers: np.ndarray) -> np.ndarray:
        return self._distances(vectors, centers).argmin(axis=1)


# ----------------------------------------------------------------------
# Cluster quality against ground-truth labels
# ----------------------------------------------------------------------
def cluster_purity(labels: Sequence[int], truth: Sequence[int]) -> float:
    """Mean over clusters of the dominant ground-truth label's share."""
    labels = np.asarray(labels)
    truth = np.asarray(truth)
    if labels.shape != truth.shape:
        raise ValueError("labels and truth must align")
    if labels.size == 0:
        raise ValueError("cannot score an empty clustering")
    dominant = 0
    for cluster in np.unique(labels):
        members = truth[labels == cluster]
        dominant += Counter(members.tolist()).most_common(1)[0][1]
    return dominant / len(labels)


def normalized_mutual_information(labels: Sequence[int],
                                  truth: Sequence[int]) -> float:
    """NMI in [0, 1]; 1 means the clustering matches the labels exactly."""
    labels = np.asarray(labels)
    truth = np.asarray(truth)
    if labels.shape != truth.shape:
        raise ValueError("labels and truth must align")
    n = len(labels)
    if n == 0:
        raise ValueError("cannot score an empty clustering")

    def entropy(values):
        _, counts = np.unique(values, return_counts=True)
        p = counts / n
        return float(-(p * np.log(p)).sum())

    h_labels = entropy(labels)
    h_truth = entropy(truth)
    if h_labels == 0.0 and h_truth == 0.0:
        return 1.0
    mutual = 0.0
    for cluster in np.unique(labels):
        mask = labels == cluster
        p_cluster = mask.mean()
        for label in np.unique(truth[mask]):
            p_joint = ((labels == cluster) & (truth == label)).mean()
            p_label = (truth == label).mean()
            mutual += p_joint * np.log(p_joint / (p_cluster * p_label))
    denom = np.sqrt(h_labels * h_truth)
    return float(mutual / denom) if denom > 0 else 0.0


def cluster_trajectories(model, trajectories, n_clusters: int,
                         seed: int = 0) -> np.ndarray:
    """Cluster trajectories by their t2vec representations.

    ``model`` is any object with ``encode_many`` (a fitted
    :class:`~repro.core.t2vec.T2Vec`); returns per-trajectory labels.
    """
    vectors = model.encode_many(trajectories)
    return KMeans(n_clusters, seed=seed).fit_predict(vectors)
