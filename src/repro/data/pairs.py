"""Training-pair synthesis (paper Sections IV-B and V-A).

For each original trajectory ``Tb``, the paper creates its degraded
variants ``Ta`` for every combination of dropping rate r1 in
``[0, 0.2, 0.4, 0.6]`` and distorting rate r2 in ``[0, 0.2, 0.4, 0.6]`` —
16 pairs per original.  The model is trained to maximize P(Tb | Ta).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .trajectory import Trajectory
from .transforms import degrade

DEFAULT_DROPPING_RATES: Tuple[float, ...] = (0.0, 0.2, 0.4, 0.6)
DEFAULT_DISTORTING_RATES: Tuple[float, ...] = (0.0, 0.2, 0.4, 0.6)


def _defensive_source(source: Trajectory, original: Trajectory) -> Trajectory:
    """A source that never aliases the original's point storage.

    ``degrade`` returns its input unchanged for r1 = r2 = 0 (and when no
    point happens to be selected), which would hand out the *same*
    ``Trajectory`` as both source and target — downstream mutation of
    ``source.points`` would silently corrupt the reconstruction target.
    """
    if source.points is not original.points:
        return source
    return Trajectory(
        points=original.points.copy(),
        timestamps=(None if original.timestamps is None
                    else original.timestamps.copy()),
        traj_id=original.traj_id,
        route_id=original.route_id,
    )


@dataclass(frozen=True)
class TrainingPair:
    """A (source, target) trajectory pair: degraded ``Ta`` → original ``Tb``."""

    source: Trajectory
    target: Trajectory
    dropping_rate: float
    distorting_rate: float


def build_training_pairs(
    originals: Sequence[Trajectory],
    dropping_rates: Sequence[float] = DEFAULT_DROPPING_RATES,
    distorting_rates: Sequence[float] = DEFAULT_DISTORTING_RATES,
    rng: Optional[np.random.Generator] = None,
) -> List[TrainingPair]:
    """Materialize the full r1 x r2 grid of pairs for every original."""
    rng = rng or np.random.default_rng()
    pairs: List[TrainingPair] = []
    for original in originals:
        for r1 in dropping_rates:
            for r2 in distorting_rates:
                source = _defensive_source(degrade(original, r1, r2, rng),
                                           original)
                pairs.append(TrainingPair(source=source, target=original,
                                          dropping_rate=r1, distorting_rate=r2))
    return pairs


def iter_training_pairs(
    originals: Sequence[Trajectory],
    dropping_rates: Sequence[float] = DEFAULT_DROPPING_RATES,
    distorting_rates: Sequence[float] = DEFAULT_DISTORTING_RATES,
    rng: Optional[np.random.Generator] = None,
) -> Iterator[TrainingPair]:
    """Lazy variant of :func:`build_training_pairs` for large archives."""
    rng = rng or np.random.default_rng()
    for original in originals:
        for r1 in dropping_rates:
            for r2 in distorting_rates:
                source = _defensive_source(degrade(original, r1, r2, rng),
                                           original)
                yield TrainingPair(source=source, target=original,
                                   dropping_rate=r1, distorting_rate=r2)
