"""Data substrate: trajectories, the synthetic city, transforms, batching.

Replaces the paper's Porto/Harbin GPS archives with a synthetic city
whose route popularity is Zipf-skewed (DESIGN.md §2); a loader for the
real Porto CSV is provided for users who have the file.
"""

from .archive import load_archive, save_archive
from .dataset import (Batch, BatchSource, PairDataset, TokenPairDataset,
                      make_batch, pad_batch, tokenize)
from .generator import (CityConfig, SyntheticCity, dataset_statistics,
                        harbin_like, porto_like)
from .pairs import (DEFAULT_DISTORTING_RATES, DEFAULT_DROPPING_RATES,
                    TrainingPair, build_training_pairs, iter_training_pairs)
from .pipeline import (Prefetcher, TrainingDataPipeline, pair_rng,
                       synthesize_token_pairs)
from .porto import load_porto
from .roadnet import RoadNetwork
from .trajectory import Trajectory
from .transforms import (DISTORTION_RADIUS_M, alternating_split, degrade,
                         distort, downsample)

__all__ = [
    "Batch",
    "BatchSource",
    "CityConfig",
    "DEFAULT_DISTORTING_RATES",
    "DEFAULT_DROPPING_RATES",
    "DISTORTION_RADIUS_M",
    "PairDataset",
    "Prefetcher",
    "RoadNetwork",
    "SyntheticCity",
    "TokenPairDataset",
    "TrainingDataPipeline",
    "Trajectory",
    "TrainingPair",
    "alternating_split",
    "build_training_pairs",
    "dataset_statistics",
    "degrade",
    "distort",
    "downsample",
    "harbin_like",
    "iter_training_pairs",
    "load_archive",
    "load_porto",
    "make_batch",
    "pair_rng",
    "save_archive",
    "pad_batch",
    "porto_like",
    "synthesize_token_pairs",
    "tokenize",
]
