"""Synthetic trajectory generator — the stand-in for the Porto/Harbin archives.

The paper's experiments need a large archive of *dense, uniformly sampled*
taxi trips whose underlying routes are shared and skewed in popularity
(Section IV-A: "transition patterns between locations are often highly
skewed").  This module synthesizes such an archive:

1. Build a perturbed street grid (:class:`repro.data.roadnet.RoadNetwork`).
2. Draw a catalogue of routes: origin–destination shortest paths.
3. Assign route popularity from a Zipf law, so a few routes dominate —
   exactly the transition-pattern skew t2vec exploits.
4. For each trip, move along the route polyline at a per-trip speed and
   emit a sample every ``sample_interval`` seconds (Porto taxis: 15 s),
   plus small GPS noise.

Trips therefore play the role of the paper's high-sampling-rate original
trajectories ``Tb``; the down-sampling/distortion transforms in
:mod:`repro.data.transforms` derive the degraded variants ``Ta``.

Two presets, :func:`porto_like` and :func:`harbin_like`, mirror the
paper's two cities with different geometry and trip statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .roadnet import RoadNetwork
from .trajectory import Trajectory


@dataclass(frozen=True)
class CityConfig:
    """Parameters of a synthetic city and its taxi fleet."""

    name: str = "synthetic"
    grid_cols: int = 12
    grid_rows: int = 12
    spacing: float = 200.0          # block size, meters
    jitter: float = 0.25            # node position jitter (fraction of spacing)
    edge_removal: float = 0.15      # fraction of street edges removed
    num_routes: int = 120           # size of the route catalogue (OD pairs)
    zipf_exponent: float = 1.05     # route popularity skew (>1 = heavy head)
    variants_per_route: int = 4     # alternative paths per OD pair
    route_sigma: float = 0.3        # edge-weight noise when drawing variants
    min_route_nodes: int = 6        # discard too-short OD paths
    speed_mean: float = 8.0         # m/s (~29 km/h city traffic)
    speed_std: float = 2.0
    speed_walk: float = 0.15        # intra-trip speed random-walk step (fraction)
    sample_interval: float = 15.0   # seconds between samples (Porto: 15 s)
    gps_noise: float = 8.0          # std-dev of per-point GPS jitter, meters
    min_points: int = 20            # discard trips shorter than this
    seed: int = 7


def _arc_lengths(polyline: np.ndarray) -> np.ndarray:
    """Cumulative arc length at each vertex of a polyline (starts at 0)."""
    segments = np.sqrt((np.diff(polyline, axis=0) ** 2).sum(axis=1))
    return np.concatenate([[0.0], np.cumsum(segments)])


def _sample_along(polyline: np.ndarray, distances: np.ndarray) -> np.ndarray:
    """Positions at the given arc-length distances along a polyline."""
    cumlen = _arc_lengths(polyline)
    x = np.interp(distances, cumlen, polyline[:, 0])
    y = np.interp(distances, cumlen, polyline[:, 1])
    return np.stack([x, y], axis=1)


class SyntheticCity:
    """A road network plus a skewed route demand model."""

    def __init__(self, config: CityConfig = CityConfig()):
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self.network = RoadNetwork.perturbed_grid(
            config.grid_cols,
            config.grid_rows,
            config.spacing,
            jitter=config.jitter,
            edge_removal=config.edge_removal,
            rng=self._rng,
        )
        # Route catalogue: each entry is an OD pair with several plausible
        # path variants (perturbed-weight shortest paths), so trips sharing
        # a route are similar but not identical — like real traffic.
        self.routes: List[List[np.ndarray]] = []
        for _ in range(config.num_routes):
            path = self.network.random_route(self._rng, min_nodes=config.min_route_nodes)
            origin, destination = path[0], path[-1]
            variants = {tuple(path): self.network.path_polyline(path)}
            for _ in range(config.variants_per_route - 1):
                alt = self.network.perturbed_shortest_path(
                    origin, destination, self._rng, sigma=config.route_sigma)
                variants.setdefault(tuple(alt), self.network.path_polyline(alt))
            self.routes.append(list(variants.values()))
        ranks = np.arange(1, config.num_routes + 1, dtype=float)
        popularity = ranks ** (-config.zipf_exponent)
        self.route_probs = popularity / popularity.sum()

    # ------------------------------------------------------------------
    # Trip synthesis
    # ------------------------------------------------------------------
    def generate_trip(self, rng: Optional[np.random.Generator] = None,
                      traj_id: Optional[int] = None) -> Trajectory:
        """One dense trip along a popularity-sampled route."""
        rng = rng or self._rng
        cfg = self.config
        route_id = int(rng.choice(len(self.routes), p=self.route_probs))
        variants = self.routes[route_id]
        polyline = variants[int(rng.integers(len(variants)))]
        total = _arc_lengths(polyline)[-1]

        # The vehicle's speed drifts during the trip (traffic, lights), so
        # samples taken at a fixed time interval are non-uniformly spaced
        # along the route — the sampling irregularity the paper targets.
        base_speed = max(1.0, rng.normal(cfg.speed_mean, cfg.speed_std))
        max_samples = int(np.ceil(total / (base_speed * cfg.sample_interval))) + 3
        walk = np.cumsum(rng.normal(0.0, cfg.speed_walk, size=max_samples * 2))
        speeds = base_speed * np.exp(np.clip(walk, -1.0, 1.0))
        steps = np.maximum(1.0, speeds) * cfg.sample_interval
        offset = rng.uniform(0.0, steps[0] * 0.5)
        distances = offset + np.cumsum(steps)
        distances = np.concatenate([[offset], distances])
        distances = distances[distances < total]
        distances = np.append(distances, total)
        points = _sample_along(polyline, distances)
        points += rng.normal(0.0, cfg.gps_noise, size=points.shape)
        timestamps = np.arange(len(distances)) * cfg.sample_interval
        return Trajectory(points=points, timestamps=timestamps,
                          traj_id=traj_id, route_id=route_id)

    def generate(self, n_trips: int,
                 rng: Optional[np.random.Generator] = None) -> List[Trajectory]:
        """Generate trips, keeping only those with >= ``min_points`` samples.

        Mirrors the paper's preprocessing ("we remove trajectories with
        length less than 30"); short routes simply yield more attempts.
        """
        rng = rng or self._rng
        trips: List[Trajectory] = []
        attempts = 0
        max_attempts = 50 * n_trips
        while len(trips) < n_trips:
            attempts += 1
            if attempts > max_attempts:
                raise RuntimeError(
                    f"only {len(trips)}/{n_trips} trips reached "
                    f"min_points={self.config.min_points}; routes too short?")
            trip = self.generate_trip(rng, traj_id=len(trips))
            if len(trip) >= self.config.min_points:
                trips.append(trip)
        return trips

    def all_points(self, trips: List[Trajectory]) -> np.ndarray:
        """Stack every sample point of a trip collection, ``(n, 2)``."""
        return np.concatenate([t.points for t in trips], axis=0)


def dataset_statistics(trips: List[Trajectory]) -> dict:
    """Table II statistics: #points, #trips, mean length."""
    lengths = np.array([len(t) for t in trips])
    return {
        "num_points": int(lengths.sum()),
        "num_trips": len(trips),
        "mean_length": float(lengths.mean()) if len(trips) else 0.0,
    }


def porto_like(seed: int = 7) -> SyntheticCity:
    """A Porto-flavoured city: compact grid, 15 s sampling, medium trips."""
    return SyntheticCity(CityConfig(
        name="porto-syn",
        grid_cols=14, grid_rows=14, spacing=200.0,
        num_routes=150, zipf_exponent=1.05,
        speed_mean=8.0, sample_interval=15.0,
        min_points=30, min_route_nodes=10, seed=seed,
    ))


def harbin_like(seed: int = 17) -> SyntheticCity:
    """A Harbin-flavoured city: larger sprawl, longer trips (paper mean 121)."""
    return SyntheticCity(CityConfig(
        name="harbin-syn",
        grid_cols=16, grid_rows=11, spacing=250.0,
        num_routes=170, zipf_exponent=1.1,
        speed_mean=7.0, sample_interval=15.0,
        min_points=35, min_route_nodes=11, seed=seed,
    ))
