"""The :class:`Trajectory` value type.

A trajectory is a sequence of sample points from an underlying route
(paper Definitions 1–2).  Points are stored in *projected meter*
coordinates — every algorithm in this library works in the metric plane;
lon/lat data is projected on ingestion (see :mod:`repro.data.porto`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class Trajectory:
    """An immutable sequence of 2-D sample points.

    Attributes
    ----------
    points:
        ``(n, 2)`` float array of x/y meter coordinates.
    timestamps:
        Optional ``(n,)`` float array of seconds; must be non-decreasing.
    traj_id:
        Optional identifier (generator route id, CSV trip id, ...).
    route_id:
        Optional id of the underlying route that generated the trajectory
        (known for synthetic data; useful as clustering ground truth).
    """

    points: np.ndarray
    timestamps: Optional[np.ndarray] = None
    traj_id: Optional[int] = None
    route_id: Optional[int] = None

    def __post_init__(self):
        points = np.asarray(self.points, dtype=float)
        if points.ndim != 2 or points.shape[1] != 2:
            raise ValueError(f"points must be (n, 2), got {points.shape}")
        if len(points) < 2:
            raise ValueError("a trajectory needs at least two points")
        object.__setattr__(self, "points", points)
        if self.timestamps is not None:
            ts = np.asarray(self.timestamps, dtype=float)
            if ts.shape != (len(points),):
                raise ValueError(
                    f"timestamps shape {ts.shape} does not match {len(points)} points")
            if np.any(np.diff(ts) < 0):
                raise ValueError("timestamps must be non-decreasing")
            object.__setattr__(self, "timestamps", ts)

    def __len__(self) -> int:
        return len(self.points)

    @property
    def start(self) -> np.ndarray:
        return self.points[0]

    @property
    def end(self) -> np.ndarray:
        return self.points[-1]

    def length_meters(self) -> float:
        """Total arc length of the polyline through the sample points."""
        segs = np.diff(self.points, axis=0)
        return float(np.sqrt((segs ** 2).sum(axis=1)).sum())

    def subsequence(self, indices: np.ndarray) -> "Trajectory":
        """A new trajectory restricted to the given (sorted) point indices."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size < 2:
            raise ValueError("a subsequence needs at least two points")
        if np.any(np.diff(indices) <= 0):
            raise ValueError("indices must be strictly increasing")
        return Trajectory(
            points=self.points[indices],
            timestamps=None if self.timestamps is None else self.timestamps[indices],
            traj_id=self.traj_id,
            route_id=self.route_id,
        )

    def cache_key(self) -> bytes:
        """A content-based key for memoizing per-trajectory computations.

        ``id()`` is unsafe as a cache key (CPython reuses addresses of
        collected objects), so encoders key their caches on the raw
        coordinate bytes instead.
        """
        return self.points.tobytes()

    def with_points(self, points: np.ndarray) -> "Trajectory":
        """A new trajectory with replaced coordinates (same metadata).

        Timestamps are kept only when the point count is unchanged.
        """
        points = np.asarray(points, dtype=float)
        timestamps = self.timestamps if len(points) == len(self.points) else None
        return Trajectory(points=points, timestamps=timestamps,
                          traj_id=self.traj_id, route_id=self.route_id)
