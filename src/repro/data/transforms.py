"""The paper's trajectory degradation transforms (Sections IV-B and V-A).

* :func:`downsample` — drop interior points with probability ``r1``,
  always keeping the first and last points ("the start and end points of
  Tb are preserved in Ta to avoid changing the underlying route").
* :func:`distort` — pick a fraction ``r2`` of points and add Gaussian
  noise with a 30 m radius (Eq. 3).
* :func:`alternating_split` — Figure 4: split ``Tb`` into ``Ta`` (odd
  points) and ``Ta'`` (even points); the two halves share the underlying
  route, which is the basis of the most-similar-search experiments.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .trajectory import Trajectory

DISTORTION_RADIUS_M = 30.0
"""Gaussian noise radius used by the paper (Eq. 3)."""


def downsample(trajectory: Trajectory, rate: float,
               rng: Optional[np.random.Generator] = None) -> Trajectory:
    """Randomly drop interior points with probability ``rate`` (r1).

    Endpoints are always preserved.  ``rate=0`` returns the trajectory
    unchanged.
    """
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropping rate must be in [0, 1), got {rate}")
    if rate == 0.0 or len(trajectory) <= 2:
        return trajectory
    rng = rng or np.random.default_rng()
    n = len(trajectory)
    keep = rng.random(n) >= rate
    keep[0] = True
    keep[-1] = True
    indices = np.flatnonzero(keep)
    return trajectory.subsequence(indices)


def distort(trajectory: Trajectory, rate: float,
            rng: Optional[np.random.Generator] = None,
            radius: float = DISTORTION_RADIUS_M) -> Trajectory:
    """Distort a random fraction ``rate`` (r2) of the points (Eq. 3).

    Each selected point ``(px, py)`` becomes ``(px + radius * dx,
    py + radius * dy)`` with ``dx, dy ~ N(0, 1)``.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"distorting rate must be in [0, 1], got {rate}")
    if rate == 0.0:
        return trajectory
    rng = rng or np.random.default_rng()
    n = len(trajectory)
    selected = rng.random(n) < rate
    if not selected.any():
        return trajectory
    points = trajectory.points.copy()
    noise = rng.standard_normal((int(selected.sum()), 2)) * radius
    points[selected] += noise
    return trajectory.with_points(points)


def degrade(trajectory: Trajectory, dropping_rate: float, distorting_rate: float,
            rng: Optional[np.random.Generator] = None,
            radius: float = DISTORTION_RADIUS_M) -> Trajectory:
    """Down-sample then distort — the full Ta construction of Section IV-B."""
    rng = rng or np.random.default_rng()
    return distort(downsample(trajectory, dropping_rate, rng),
                   distorting_rate, rng, radius=radius)


def alternating_split(trajectory: Trajectory) -> Tuple[Trajectory, Trajectory]:
    """Figure 4: ``Ta`` takes points 0, 2, 4, ...; ``Ta'`` takes 1, 3, 5, ...

    Both halves are sampled from the same underlying route, so in the
    most-similar-search experiments ``Ta'`` is the ground-truth top-1
    neighbour of ``Ta``.
    """
    if len(trajectory) < 4:
        raise ValueError(
            f"alternating split needs >= 4 points, got {len(trajectory)}")
    odd = np.arange(0, len(trajectory), 2)
    even = np.arange(1, len(trajectory), 2)
    return trajectory.subsequence(odd), trajectory.subsequence(even)
