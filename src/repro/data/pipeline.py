"""Parallel streaming training-data pipeline (degrade → tokenize → batch).

The paper's pair synthesis (Section IV-B: the r1 × r2 grid of
downsampled/distorted variants, 16 per original) was the last serial,
eagerly-materialized stage of the training stack.  This module streams
it instead:

* **Sharded synthesis.**  Originals are split into chunks and sharded
  round-robin across worker processes.  Each original is degraded and
  tokenized with its *own* RNG, derived as
  ``SeedSequence(seed, spawn_key=(epoch, original_index))`` — the stream
  is bit-identical for a given seed regardless of ``num_workers``
  (including the ``num_workers=0`` in-process mode), because the seed
  depends only on the original's position, never on which worker
  happened to process it.
* **Fused per-original work.**  The target is tokenized once per
  original (the materialized path tokenized it once per pair — 16×),
  and all variants' points go through a single KD-tree query, so even
  the in-process mode is several times faster than
  ``build_training_pairs`` + :class:`~repro.data.dataset.PairDataset`.
* **Bounded streaming.**  Workers push ``(chunk_index, pairs)`` results
  through a bounded queue; the consumer restores original order with a
  small reorder buffer (chunks are round-robin, so no worker can run
  unboundedly ahead of the in-order cursor while the queue exerts
  backpressure).
* **Length-bucketed batching.**  Token pairs accumulate into a window
  of ``bucket_batches`` batches, are stable-sorted by source length,
  chunked, and the chunk order is shuffled — long sequences pad against
  long ones, so the fused RNN kernels burn far fewer FLOPs on PAD
  positions than shuffle-only batching, without a global length
  curriculum.
* **Double-buffered prefetch.**  A background thread (:class:`Prefetcher`)
  keeps ``prefetch_batches`` assembled batches ready so the optimizer
  never waits on padding work.

Telemetry (recorded into the registry passed at construction, or the
process default): ``data.queue.depth`` gauge, ``data.worker.wait_s`` /
``data.worker.produce_s`` histograms, and ``data.tokens.real`` /
``data.tokens.pad`` / ``data.pairs`` / ``data.batches`` counters.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import threading
import time
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..spatial.vocab import CellVocabulary
from ..telemetry import MetricsRegistry, get_registry
from .dataset import Batch, TokenPairDataset, make_batch
from .pairs import DEFAULT_DISTORTING_RATES, DEFAULT_DROPPING_RATES
from .trajectory import Trajectory
from .transforms import DISTORTION_RADIUS_M

#: One tokenized training pair: (degraded source tokens, target tokens).
TokenPair = Tuple[np.ndarray, np.ndarray]


# ----------------------------------------------------------------------
# Deterministic synthesis (shared by workers and the in-process mode)
# ----------------------------------------------------------------------
def pair_rng(seed: int, original_index: int, epoch: int = 0) -> np.random.Generator:
    """The RNG that degrades original ``original_index`` in ``epoch``.

    Spawned from the pipeline seed by ``(epoch, original_index)`` alone,
    so any worker (or the in-process mode) reproduces the exact same
    variant stream for that original.
    """
    return np.random.default_rng(
        np.random.SeedSequence(seed, spawn_key=(epoch, original_index)))


def _degraded_points(points: np.ndarray, dropping_rate: float,
                     distorting_rate: float, rng: np.random.Generator,
                     radius: float = DISTORTION_RADIUS_M) -> np.ndarray:
    """Raw-array twin of :func:`repro.data.transforms.degrade`.

    Draw-for-draw identical to ``degrade(Trajectory(points), r1, r2, rng)``
    (pinned by tests), minus the per-variant ``Trajectory`` construction
    and validation overhead.
    """
    n = len(points)
    if dropping_rate > 0.0 and n > 2:
        keep = rng.random(n) >= dropping_rate
        keep[0] = True
        keep[-1] = True
        points = points[keep]
    if distorting_rate > 0.0:
        selected = rng.random(len(points)) < distorting_rate
        if selected.any():
            points = points.copy()
            noise = rng.standard_normal((int(selected.sum()), 2)) * radius
            points[selected] += noise
    return points


def _dedup_consecutive(tokens: np.ndarray) -> np.ndarray:
    """Collapse runs of identical tokens (same rule as ``tokenize``)."""
    if len(tokens) > 1:
        keep = np.concatenate([[True], tokens[1:] != tokens[:-1]])
        tokens = tokens[keep]
    return tokens


def synthesize_token_pairs(original: Trajectory, vocab: CellVocabulary,
                           dropping_rates: Sequence[float],
                           distorting_rates: Sequence[float],
                           rng: np.random.Generator,
                           dedup_consecutive: bool = False) -> List[TokenPair]:
    """Degrade → tokenize the full r1 × r2 grid for one original.

    The target is tokenized once and shared (read-only) across the
    grid's pairs; all variants' points go through one KD-tree query.
    """
    points = original.points
    target = vocab.tokenize_points(points)
    if dedup_consecutive:
        target = _dedup_consecutive(target)
    variants: List[np.ndarray] = []
    for r1 in dropping_rates:
        for r2 in distorting_rates:
            variants.append(_degraded_points(points, r1, r2, rng))
    lengths = [len(v) for v in variants]
    tokens = vocab.tokenize_points(np.concatenate(variants, axis=0))
    offsets = np.concatenate([[0], np.cumsum(lengths)])
    pairs: List[TokenPair] = []
    for i in range(len(variants)):
        source = tokens[offsets[i]:offsets[i + 1]].copy()
        if dedup_consecutive:
            source = _dedup_consecutive(source)
        pairs.append((source, target))
    return pairs


def _synthesize_chunk(originals: Sequence[Trajectory], start_index: int,
                      vocab: CellVocabulary,
                      dropping_rates: Sequence[float],
                      distorting_rates: Sequence[float],
                      seed: int, epoch: int,
                      dedup_consecutive: bool) -> List[TokenPair]:
    """All token pairs for one contiguous chunk of originals."""
    pairs: List[TokenPair] = []
    for offset, original in enumerate(originals):
        rng = pair_rng(seed, start_index + offset, epoch)
        pairs.extend(synthesize_token_pairs(
            original, vocab, dropping_rates, distorting_rates, rng,
            dedup_consecutive))
    return pairs


def _worker_main(work_items, vocab, dropping_rates, distorting_rates,
                 seed, epoch, dedup_consecutive, out_queue) -> None:
    """Worker process: synthesize assigned chunks, stream them back.

    Each result is ``("chunk", chunk_index, pairs, produce_seconds)``;
    a final ``("done", ...)`` sentinel (or ``("error", ...)`` carrying
    the formatted exception) tells the consumer the shard is finished.
    Module-level so the ``spawn`` start method (macOS, Windows) can
    pickle it.
    """
    try:
        for chunk_index, start_index, originals in work_items:
            started = time.perf_counter()
            pairs = _synthesize_chunk(originals, start_index, vocab,
                                      dropping_rates, distorting_rates,
                                      seed, epoch, dedup_consecutive)
            out_queue.put(("chunk", chunk_index, pairs,
                           time.perf_counter() - started))
        out_queue.put(("done", None, None, None))
    except BaseException as exc:  # surface worker failures in the consumer
        out_queue.put(("error", None, f"{type(exc).__name__}: {exc}", None))


# ----------------------------------------------------------------------
# Background prefetch
# ----------------------------------------------------------------------
_SENTINEL = object()


class Prefetcher:
    """Double-buffered background iteration over ``source``.

    A daemon thread drains ``source`` into a bounded queue of ``depth``
    items so the consumer always finds the next item (batch) assembled.
    Exceptions raised by the source re-raise in the consumer; ``close``
    stops the thread early and closes the source generator (which tears
    down any worker processes it owns).
    """

    def __init__(self, source: Iterator, depth: int = 2):
        if depth < 1:
            raise ValueError(f"prefetch depth must be >= 1, got {depth}")
        self._source = source
        self._queue: "queue_mod.Queue" = queue_mod.Queue(maxsize=depth)
        self._stop = threading.Event()
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._fill, daemon=True,
                                        name="repro-data-prefetch")
        self._thread.start()

    def _fill(self) -> None:
        try:
            for item in self._source:
                if not self._put(item):
                    return
        except BaseException as exc:
            self._error = exc
        finally:
            close = getattr(self._source, "close", None)
            if close is not None:
                close()
            self._put(_SENTINEL)

    def _put(self, item) -> bool:
        """Put with stop-polling; False when closed before the put."""
        while not self._stop.is_set():
            try:
                self._queue.put(item, timeout=0.05)
                return True
            except queue_mod.Full:
                continue
        return False

    def __iter__(self) -> "Prefetcher":
        return self

    def __next__(self):
        if self._stop.is_set():
            raise StopIteration
        item = self._queue.get()
        if item is _SENTINEL:
            if self._error is not None:
                error, self._error = self._error, None
                raise error
            raise StopIteration
        return item

    def close(self) -> None:
        """Stop the fill thread and release the source."""
        self._stop.set()
        try:
            while True:
                self._queue.get_nowait()
        except queue_mod.Empty:
            pass
        self._thread.join(timeout=10)


# ----------------------------------------------------------------------
# The pipeline
# ----------------------------------------------------------------------
class TrainingDataPipeline:
    """Streams length-bucketed training batches from original trajectories.

    Implements the :class:`~repro.data.dataset.BatchSource` protocol, so
    :meth:`repro.core.trainer.Trainer.fit` consumes it exactly like a
    materialized :class:`~repro.data.dataset.TokenPairDataset`.

    Parameters
    ----------
    num_workers:
        ``0`` synthesizes in-process (the reference mode); ``n > 0``
        shards chunk synthesis across ``n`` processes.  The token-pair
        stream is bit-identical either way.
    chunk_size:
        Originals per work item (amortizes queue/pickle overhead).
    bucket_batches:
        Length-bucketing window, in batches.  ``None`` buffers the whole
        epoch, which makes the batch stream exactly reproduce
        ``TokenPairDataset.batches`` over the same token pairs.
    prefetch_batches:
        Assembled batches kept ready by the background prefetch thread
        (``0`` disables prefetching).
    queue_size:
        Bound on the inter-process result queue, in work items.
    bucketing:
        ``False`` switches to shuffle-only batching (no length sort) —
        kept for the padding-efficiency benchmark.
    fresh_each_epoch:
        Re-degrade originals with new draws on every ``batches()`` call
        (epoch-indexed seeds).  Leave ``False`` for validation pipelines
        and for parity with the materialize-once reference path.
    start_method:
        Multiprocessing start method (``"fork"``, ``"spawn"``,
        ``"forkserver"``); ``None`` uses the platform default.  The
        stream is bit-identical under every method.
    """

    def __init__(self, originals: Sequence[Trajectory],
                 vocab: CellVocabulary,
                 dropping_rates: Sequence[float] = DEFAULT_DROPPING_RATES,
                 distorting_rates: Sequence[float] = DEFAULT_DISTORTING_RATES,
                 seed: int = 0,
                 num_workers: int = 0,
                 chunk_size: int = 16,
                 bucket_batches: Optional[int] = 8,
                 prefetch_batches: int = 2,
                 queue_size: int = 8,
                 bucketing: bool = True,
                 fresh_each_epoch: bool = False,
                 dedup_consecutive: bool = False,
                 start_method: Optional[str] = None,
                 registry: Optional[MetricsRegistry] = None):
        if num_workers < 0:
            raise ValueError(f"num_workers must be >= 0, got {num_workers}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if bucket_batches is not None and bucket_batches < 1:
            raise ValueError(
                f"bucket_batches must be >= 1 or None, got {bucket_batches}")
        if prefetch_batches < 0:
            raise ValueError(
                f"prefetch_batches must be >= 0, got {prefetch_batches}")
        if queue_size < 1:
            raise ValueError(f"queue_size must be >= 1, got {queue_size}")
        self.originals = list(originals)
        self.vocab = vocab
        self.dropping_rates = tuple(dropping_rates)
        self.distorting_rates = tuple(distorting_rates)
        self.seed = seed
        self.num_workers = num_workers
        self.chunk_size = chunk_size
        self.bucket_batches = bucket_batches
        self.prefetch_batches = prefetch_batches
        self.queue_size = queue_size
        self.bucketing = bucketing
        self.fresh_each_epoch = fresh_each_epoch
        self.dedup_consecutive = dedup_consecutive
        self.start_method = start_method
        self.registry = registry
        self._epoch = 0

    def _registry(self) -> MetricsRegistry:
        return self.registry or get_registry()

    def __len__(self) -> int:
        """Number of training pairs per epoch (|originals| · |r1| · |r2|)."""
        return (len(self.originals)
                * len(self.dropping_rates) * len(self.distorting_rates))

    # ------------------------------------------------------------------
    # Token-pair stream
    # ------------------------------------------------------------------
    def _chunks(self):
        for chunk_index, start in enumerate(
                range(0, len(self.originals), self.chunk_size)):
            yield chunk_index, start, self.originals[start:start + self.chunk_size]

    def token_pairs(self, epoch: int = 0) -> Iterator[TokenPair]:
        """The deterministic (source, target) token stream, in original
        order — identical for every ``num_workers`` value."""
        if self.num_workers == 0:
            return self._serial_pairs(epoch)
        return self._parallel_pairs(epoch)

    def _serial_pairs(self, epoch: int) -> Iterator[TokenPair]:
        reg = self._registry()
        for _, start, chunk in self._chunks():
            started = time.perf_counter()
            pairs = _synthesize_chunk(chunk, start, self.vocab,
                                      self.dropping_rates,
                                      self.distorting_rates,
                                      self.seed, epoch,
                                      self.dedup_consecutive)
            reg.histogram("data.worker.produce_s").observe(
                time.perf_counter() - started)
            reg.counter("data.pairs").inc(len(pairs))
            for pair in pairs:
                yield pair

    def _parallel_pairs(self, epoch: int) -> Iterator[TokenPair]:
        reg = self._registry()
        ctx = mp.get_context(self.start_method)
        out_queue = ctx.Queue(maxsize=self.queue_size)
        items = list(self._chunks())
        shards = [items[w::self.num_workers] for w in range(self.num_workers)]
        processes = [
            ctx.Process(target=_worker_main,
                        args=(shard, self.vocab, self.dropping_rates,
                              self.distorting_rates, self.seed, epoch,
                              self.dedup_consecutive, out_queue),
                        daemon=True)
            for shard in shards if shard
        ]
        for process in processes:
            process.start()
        try:
            pending = {}
            next_index = 0
            finished = 0
            while finished < len(processes):
                waited = time.perf_counter()
                while True:
                    try:
                        kind, chunk_index, payload, produce_s = out_queue.get(
                            timeout=1.0)
                        break
                    except queue_mod.Empty:
                        dead = [p for p in processes
                                if not p.is_alive() and p.exitcode not in (0, None)]
                        if dead:
                            raise RuntimeError(
                                "data pipeline worker died with exit code "
                                f"{dead[0].exitcode} before finishing its "
                                "shard") from None
                reg.histogram("data.worker.wait_s").observe(
                    time.perf_counter() - waited)
                try:
                    reg.gauge("data.queue.depth").set(out_queue.qsize())
                except NotImplementedError:  # macOS has no Queue.qsize
                    pass
                if kind == "done":
                    finished += 1
                    continue
                if kind == "error":
                    raise RuntimeError(
                        f"data pipeline worker failed: {payload}")
                reg.counter("data.pairs").inc(len(payload))
                reg.histogram("data.worker.produce_s").observe(produce_s)
                pending[chunk_index] = payload
                while next_index in pending:
                    for pair in pending.pop(next_index):
                        yield pair
                    next_index += 1
        finally:
            for process in processes:
                if process.is_alive():
                    process.terminate()
            for process in processes:
                process.join(timeout=10)
            out_queue.close()
            out_queue.cancel_join_thread()

    def materialize(self, epoch: int = 0) -> TokenPairDataset:
        """Drain the stream into a materialized reference dataset.

        The result's ``batches(batch_size, default_rng(s))`` is the
        exact-parity oracle for this pipeline's whole-epoch-window batch
        stream (see tests/test_pipeline.py); it is also how validation
        sets are pinned — synthesized once, evaluated many times.
        """
        pairs = list(self.token_pairs(epoch))
        return TokenPairDataset([source for source, _ in pairs],
                                [target for _, target in pairs])

    # ------------------------------------------------------------------
    # Batch assembly
    # ------------------------------------------------------------------
    def batches(self, batch_size: int,
                rng: Optional[np.random.Generator] = None,
                shuffle: bool = True) -> Iterator[Batch]:
        """Yield padded, length-bucketed mini-batches for one epoch.

        Exactly one value is drawn from ``rng`` (synchronously, before
        the prefetch thread starts) to seed the window shuffles, so a
        trainer sharing its generator with the loss's noise sampling
        stays deterministic even with background prefetch.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        shuffle_seed: Optional[int] = None
        if shuffle:
            rng = rng or np.random.default_rng()
            shuffle_seed = int(rng.integers(np.iinfo(np.int64).max))
        epoch = self._epoch
        if self.fresh_each_epoch:
            self._epoch += 1
        assembled = self._assemble(batch_size, shuffle_seed, epoch)
        if self.prefetch_batches < 1:
            yield from assembled
            return
        prefetcher = Prefetcher(assembled, depth=self.prefetch_batches)
        try:
            yield from prefetcher
        finally:
            prefetcher.close()

    def _assemble(self, batch_size: int, shuffle_seed: Optional[int],
                  epoch: int) -> Iterator[Batch]:
        shuffle_rng = (np.random.default_rng(shuffle_seed)
                       if shuffle_seed is not None else None)
        window = (None if self.bucket_batches is None
                  else batch_size * self.bucket_batches)
        buffer: List[TokenPair] = []
        for pair in self.token_pairs(epoch):
            buffer.append(pair)
            if window is not None and len(buffer) >= window:
                yield from self._flush(buffer, batch_size, shuffle_rng)
                buffer = []
        if buffer:
            yield from self._flush(buffer, batch_size, shuffle_rng)

    def _flush(self, pairs: List[TokenPair], batch_size: int,
               shuffle_rng: Optional[np.random.Generator]) -> Iterator[Batch]:
        """Batch one bucketing window.

        With bucketing: stable length sort → consecutive chunks →
        shuffled chunk order (the same scheme as
        ``TokenPairDataset.batches``, per window).  Without: shuffled
        pair order → consecutive chunks.
        """
        reg = self._registry()
        if self.bucketing:
            order = np.argsort([len(source) for source, _ in pairs],
                               kind="stable")
            chunks = [order[i:i + batch_size]
                      for i in range(0, len(order), batch_size)]
            if shuffle_rng is not None:
                shuffle_rng.shuffle(chunks)
        else:
            order = np.arange(len(pairs))
            if shuffle_rng is not None:
                shuffle_rng.shuffle(order)
            chunks = [order[i:i + batch_size]
                      for i in range(0, len(order), batch_size)]
        for chunk in chunks:
            batch = make_batch([pairs[i][0] for i in chunk],
                               [pairs[i][1] for i in chunk])
            real = float(batch.src_mask.sum() + batch.tgt_mask.sum())
            total = float(batch.src_mask.size + batch.tgt_mask.size)
            reg.counter("data.tokens.real").inc(real)
            reg.counter("data.tokens.pad").inc(total - real)
            reg.counter("data.batches").inc()
            yield batch
