"""Persistence for trajectory archives.

Generating or preprocessing an archive can dominate experiment setup, so
collections of :class:`~repro.data.trajectory.Trajectory` can be written
to a single ``.npz`` file and read back losslessly (points, timestamps,
trip and route ids).  The layout is columnar: one flat coordinate array
plus offsets, which loads orders of magnitude faster than pickling
thousands of small arrays.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Sequence, Union

import numpy as np

from .trajectory import Trajectory

_FORMAT_VERSION = 1
_NO_ID = np.iinfo(np.int64).min  # sentinel for "id is None"


def save_archive(path: Union[str, Path],
                 trajectories: Sequence[Trajectory]) -> None:
    """Write trajectories to ``path`` (.npz)."""
    trajectories = list(trajectories)
    if not trajectories:
        raise ValueError("cannot save an empty archive")
    lengths = np.array([len(t) for t in trajectories], dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(lengths)])
    points = np.concatenate([t.points for t in trajectories], axis=0)

    has_timestamps = np.array([t.timestamps is not None for t in trajectories])
    timestamps = np.concatenate(
        [t.timestamps if t.timestamps is not None else np.zeros(len(t))
         for t in trajectories])
    traj_ids = np.array([t.traj_id if t.traj_id is not None else _NO_ID
                         for t in trajectories], dtype=np.int64)
    route_ids = np.array([t.route_id if t.route_id is not None else _NO_ID
                          for t in trajectories], dtype=np.int64)

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(
        path,
        version=np.int64(_FORMAT_VERSION),
        points=points,
        offsets=offsets,
        timestamps=timestamps,
        has_timestamps=has_timestamps,
        traj_ids=traj_ids,
        route_ids=route_ids,
    )


def load_archive(path: Union[str, Path]) -> List[Trajectory]:
    """Read trajectories written by :func:`save_archive`."""
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as archive:
        version = int(archive["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported archive version {version} "
                f"(this build reads version {_FORMAT_VERSION})")
        points = archive["points"]
        offsets = archive["offsets"]
        timestamps = archive["timestamps"]
        has_timestamps = archive["has_timestamps"]
        traj_ids = archive["traj_ids"]
        route_ids = archive["route_ids"]

    trajectories: List[Trajectory] = []
    for i in range(len(offsets) - 1):
        lo, hi = offsets[i], offsets[i + 1]
        trajectories.append(Trajectory(
            points=points[lo:hi],
            timestamps=timestamps[lo:hi] if has_timestamps[i] else None,
            traj_id=None if traj_ids[i] == _NO_ID else int(traj_ids[i]),
            route_id=None if route_ids[i] == _NO_ID else int(route_ids[i]),
        ))
    return trajectories
