"""Synthetic road network substrate.

The paper trains on real taxi GPS archives (Porto, Harbin), whose key
property is that *transition patterns between locations are highly
skewed* — a small set of routes carries most of the traffic (Section
IV-A).  We reproduce that property with a synthetic city: a perturbed
grid road network plus a Zipf-skewed route demand model (see
:mod:`repro.data.generator`).

The network is an undirected ``networkx`` graph whose nodes carry meter
coordinates; edges are weighted by their Euclidean length.  A fraction of
edges is removed (keeping the graph connected) so shortest paths bend and
overlap like real streets instead of being unique Manhattan staircases.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import networkx as nx
import numpy as np


class RoadNetwork:
    """A connected planar road graph with meter coordinates."""

    def __init__(self, graph: nx.Graph, positions: Dict[int, np.ndarray]):
        if graph.number_of_nodes() == 0:
            raise ValueError("road network is empty")
        if not nx.is_connected(graph):
            raise ValueError("road network must be connected")
        self.graph = graph
        self.positions = {node: np.asarray(pos, dtype=float)
                          for node, pos in positions.items()}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def perturbed_grid(
        cls,
        n_cols: int,
        n_rows: int,
        spacing: float,
        jitter: float = 0.25,
        edge_removal: float = 0.15,
        rng: Optional[np.random.Generator] = None,
    ) -> "RoadNetwork":
        """Build an ``n_cols x n_rows`` street grid with irregularities.

        Parameters
        ----------
        spacing:
            Block size in meters.
        jitter:
            Node positions are displaced by up to ``jitter * spacing``
            in each axis, so streets are not perfectly straight.
        edge_removal:
            Fraction of edges to *attempt* to remove; an edge is only
            removed when the graph stays connected, so some dead ends and
            detours appear without disconnecting the city.
        """
        if n_cols < 2 or n_rows < 2:
            raise ValueError("grid must be at least 2x2")
        if not 0.0 <= edge_removal < 1.0:
            raise ValueError("edge_removal must be in [0, 1)")
        rng = rng or np.random.default_rng()

        base = nx.grid_2d_graph(n_cols, n_rows)
        mapping = {node: i for i, node in enumerate(sorted(base.nodes()))}
        graph = nx.relabel_nodes(base, mapping)
        positions = {}
        for (col, row), node in mapping.items():
            offset = rng.uniform(-jitter, jitter, size=2) * spacing
            positions[node] = np.array([col * spacing, row * spacing]) + offset

        edges = list(graph.edges())
        rng.shuffle(edges)
        n_remove = int(edge_removal * len(edges))
        removed = 0
        for u, v in edges:
            if removed >= n_remove:
                break
            graph.remove_edge(u, v)
            if nx.has_path(graph, u, v):
                removed += 1
            else:
                graph.add_edge(u, v)

        network = cls(graph, positions)
        network._assign_lengths()
        return network

    def _assign_lengths(self) -> None:
        for u, v in self.graph.edges():
            length = float(np.linalg.norm(self.positions[u] - self.positions[v]))
            self.graph[u][v]["length"] = length

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def nodes(self) -> List[int]:
        return list(self.graph.nodes())

    def node_positions(self) -> np.ndarray:
        """Positions of all nodes in node-id order, ``(num_nodes, 2)``."""
        return np.stack([self.positions[n] for n in sorted(self.graph.nodes())])

    def shortest_path(self, origin: int, destination: int,
                      weight: str = "length") -> List[int]:
        """Dijkstra shortest path as a node list."""
        return nx.shortest_path(self.graph, origin, destination, weight=weight)

    def path_polyline(self, path: List[int]) -> np.ndarray:
        """Node path → ``(n, 2)`` polyline of meter coordinates."""
        if len(path) < 2:
            raise ValueError("a path needs at least two nodes")
        return np.stack([self.positions[n] for n in path])

    def perturbed_shortest_path(self, origin: int, destination: int,
                                rng: np.random.Generator,
                                sigma: float = 0.3) -> List[int]:
        """Shortest path under log-normally perturbed edge lengths.

        Re-running with different draws yields plausible alternative
        routes between the same origin and destination — the per-trip
        route variation real traffic exhibits.
        """
        def weight(u, v, attrs):
            return attrs["length"] * float(np.exp(sigma * rng.standard_normal()))

        return nx.shortest_path(self.graph, origin, destination, weight=weight)

    def random_route(self, rng: np.random.Generator,
                     min_nodes: int = 4, max_tries: int = 100) -> List[int]:
        """Sample an origin-destination shortest path with enough nodes.

        Used by the demand model to seed the route catalogue; raises after
        ``max_tries`` failed attempts (e.g. a degenerate network).
        """
        nodes = self.nodes
        for _ in range(max_tries):
            origin, destination = rng.choice(len(nodes), size=2, replace=False)
            path = self.shortest_path(nodes[origin], nodes[destination])
            if len(path) >= min_nodes:
                return path
        raise RuntimeError(
            f"could not sample a route with >= {min_nodes} nodes "
            f"in {max_tries} tries")
