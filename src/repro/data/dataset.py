"""Tokenization and mini-batch assembly for the seq2seq model.

Trajectories become token sequences through the hot-cell vocabulary
(:class:`repro.spatial.CellVocabulary`); pairs are batched time-major with
PAD, and the decoder side is framed as ``BOS + y`` → ``y + EOS``
(paper Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from ..nn.tensor import get_default_dtype
from ..spatial.vocab import BOS, EOS, PAD, CellVocabulary
from .pairs import TrainingPair
from .trajectory import Trajectory


def tokenize(trajectory: Trajectory, vocab: CellVocabulary,
             dedup_consecutive: bool = False) -> np.ndarray:
    """Map a trajectory to hot-cell tokens.

    ``dedup_consecutive`` collapses runs of identical tokens (several
    samples inside one cell); the paper keeps duplicates, so the default
    is ``False``.
    """
    tokens = vocab.tokenize_points(trajectory.points)
    if dedup_consecutive and len(tokens) > 1:
        keep = np.concatenate([[True], tokens[1:] != tokens[:-1]])
        tokens = tokens[keep]
    return tokens


def pad_batch(sequences: Sequence[np.ndarray],
              pad_value: int = PAD) -> Tuple[np.ndarray, np.ndarray]:
    """Pad 1-D int sequences into a time-major ``(T, B)`` batch.

    Returns ``(tokens, mask)`` where ``mask`` is 1.0 on real positions.
    The mask is allocated in the library's default tensor dtype so masked
    RNN steps do not silently upcast float32 activations to float64.
    """
    if not sequences:
        raise ValueError("cannot pad an empty batch")
    lengths = np.array([len(s) for s in sequences])
    max_len = int(lengths.max())
    batch = np.full((max_len, len(sequences)), pad_value, dtype=np.int64)
    mask = np.zeros((max_len, len(sequences)), dtype=get_default_dtype())
    for j, seq in enumerate(sequences):
        batch[: len(seq), j] = seq
        mask[: len(seq), j] = 1.0
    return batch, mask


@dataclass(frozen=True)
class Batch:
    """One training mini-batch (all arrays time-major)."""

    src: np.ndarray        # (T_src, B) encoder tokens
    src_mask: np.ndarray   # (T_src, B) 1.0 on real positions
    tgt_in: np.ndarray     # (T_tgt, B) decoder inputs, starts with BOS
    tgt_out: np.ndarray    # (T_tgt, B) decoder targets, ends with EOS
    tgt_mask: np.ndarray   # (T_tgt, B)

    @property
    def size(self) -> int:
        return self.src.shape[1]


def make_batch(sources: Sequence[np.ndarray],
               targets: Sequence[np.ndarray]) -> Batch:
    """Assemble one :class:`Batch` from aligned token sequences.

    Sources are padded as-is; targets are framed as ``BOS + y`` decoder
    inputs and ``y + EOS`` decoder outputs (paper Figure 2).  Shared by
    :class:`TokenPairDataset` and the streaming pipeline so both produce
    bit-identical batches from the same token pairs.
    """
    src, src_mask = pad_batch(list(sources))
    tgt_in, _ = pad_batch([np.concatenate([[BOS], t]) for t in targets])
    tgt_out, tgt_mask = pad_batch([np.concatenate([t, [EOS]]) for t in targets])
    return Batch(src=src, src_mask=src_mask,
                 tgt_in=tgt_in, tgt_out=tgt_out, tgt_mask=tgt_mask)


class BatchSource(Protocol):
    """Anything :class:`~repro.core.trainer.Trainer` can draw batches from.

    Implemented by :class:`TokenPairDataset` (materialized reference path)
    and :class:`repro.data.pipeline.TrainingDataPipeline` (parallel
    streaming path).
    """

    def __len__(self) -> int: ...

    def batches(self, batch_size: int,
                rng: Optional[np.random.Generator] = None,
                shuffle: bool = True) -> Iterator[Batch]: ...


class TokenPairDataset:
    """Generic tokenized (source, target) pairs with length-bucketed batching.

    Domain-agnostic: anything that produces aligned token sequences (grid
    cells, time-series value bins, ...) can train the encoder-decoder
    through this class.
    """

    def __init__(self, sources: Sequence[np.ndarray],
                 targets: Sequence[np.ndarray]):
        if len(sources) != len(targets):
            raise ValueError(
                f"{len(sources)} sources but {len(targets)} targets")
        self.sources: List[np.ndarray] = [np.asarray(s, dtype=np.int64)
                                          for s in sources]
        self.targets: List[np.ndarray] = [np.asarray(t, dtype=np.int64)
                                          for t in targets]

    def __len__(self) -> int:
        return len(self.sources)

    def batches(self, batch_size: int, rng: Optional[np.random.Generator] = None,
                shuffle: bool = True) -> Iterator[Batch]:
        """Yield padded mini-batches.

        Pairs are sorted by source length and chunked so batches have
        similar lengths (less padding waste); chunk order is shuffled each
        pass so the model does not see a length curriculum.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        order = np.argsort([len(s) for s in self.sources], kind="stable")
        chunks = [order[i:i + batch_size] for i in range(0, len(order), batch_size)]
        if shuffle:
            rng = rng or np.random.default_rng()
            rng.shuffle(chunks)
        for chunk in chunks:
            yield self._make_batch(chunk)

    def _make_batch(self, indices: np.ndarray) -> Batch:
        return make_batch([self.sources[i] for i in indices],
                          [self.targets[i] for i in indices])


class PairDataset(TokenPairDataset):
    """Trajectory training pairs tokenized through a cell vocabulary."""

    def __init__(self, pairs: Sequence[TrainingPair], vocab: CellVocabulary,
                 dedup_consecutive: bool = False):
        self.vocab = vocab
        super().__init__(
            sources=[tokenize(p.source, vocab, dedup_consecutive)
                     for p in pairs],
            targets=[tokenize(p.target, vocab, dedup_consecutive)
                     for p in pairs],
        )
