"""Loader for the real Porto taxi dataset (ECML/PKDD 2015 challenge CSV).

The experiments in this repository run on the synthetic city (no network
access, see DESIGN.md §2), but users who have the original
``train.csv`` from https://www.geolink.pt/ecmlpkdd2015-challenge can load
it here and reuse every other component unchanged.

Each CSV row stores the trip's GPS points in the ``POLYLINE`` column as a
JSON array of ``[lon, lat]`` pairs sampled every 15 seconds.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterator, List, Optional, Union

import numpy as np

from ..spatial.geo import Projection
from .trajectory import Trajectory

# Porto city-center bounding box used by the original t2vec code to drop
# out-of-town strays (lon_min, lat_min, lon_max, lat_max).
PORTO_BBOX = (-8.735, 41.085, -8.155, 41.25)


def iter_porto_polylines(path: Union[str, Path],
                         polyline_column: str = "POLYLINE") -> Iterator[np.ndarray]:
    """Yield ``(n, 2)`` lon/lat arrays from the challenge CSV, row by row."""
    path = Path(path)
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or polyline_column not in reader.fieldnames:
            raise ValueError(
                f"{path} has no {polyline_column!r} column; "
                f"found {reader.fieldnames}")
        for row in reader:
            polyline = json.loads(row[polyline_column])
            if len(polyline) >= 2:
                yield np.asarray(polyline, dtype=float)


def load_porto(
    path: Union[str, Path],
    min_length: int = 30,
    max_trips: Optional[int] = None,
    bbox: Optional[tuple] = PORTO_BBOX,
    projection: Optional[Projection] = None,
) -> List[Trajectory]:
    """Load Porto trips as projected-meter :class:`Trajectory` objects.

    Mirrors the paper's preprocessing: trips shorter than ``min_length``
    points are removed, and (optionally) trips leaving the city bounding
    box are dropped.
    """
    trips: List[Trajectory] = []
    anchor = projection
    for lonlat in iter_porto_polylines(path):
        if len(lonlat) < min_length:
            continue
        if bbox is not None:
            lon_ok = (lonlat[:, 0] >= bbox[0]) & (lonlat[:, 0] <= bbox[2])
            lat_ok = (lonlat[:, 1] >= bbox[1]) & (lonlat[:, 1] <= bbox[3])
            if not (lon_ok & lat_ok).all():
                continue
        if anchor is None:
            anchor = Projection.for_points(lonlat)
        points = anchor.to_xy(lonlat)
        timestamps = np.arange(len(points)) * 15.0  # 15 s sampling interval
        trips.append(Trajectory(points=points, timestamps=timestamps,
                                traj_id=len(trips)))
        if max_trips is not None and len(trips) >= max_trips:
            break
    return trips
