"""repro — a full reproduction of *Deep Representation Learning for
Trajectory Similarity Computation* (t2vec, ICDE 2018).

Top-level convenience imports cover the common workflow::

    from repro import T2Vec, porto_like

    city = porto_like()
    trips = city.generate(500)
    model = T2Vec()
    model.fit(trips)
    vector = model.encode(trips[0])

Sub-packages: :mod:`repro.nn` (numpy autograd + GRU substrate),
:mod:`repro.spatial` (grid + hot-cell vocabulary), :mod:`repro.data`
(synthetic city, transforms, batching), :mod:`repro.baselines`
(EDR/LCSS/EDwP/... comparison measures), :mod:`repro.core` (the t2vec
model), and :mod:`repro.eval` (the paper's experiment harness).
"""

from .core import (ExactIndex, LSHIndex, LossSpec, T2Vec, T2VecConfig,
                   TrainingConfig)
from .data import (SyntheticCity, Trajectory, alternating_split, distort,
                   downsample, harbin_like, porto_like)
from .spatial import CellVocabulary, Grid, Projection

__version__ = "1.0.0"

__all__ = [
    "CellVocabulary",
    "ExactIndex",
    "Grid",
    "LSHIndex",
    "LossSpec",
    "Projection",
    "SyntheticCity",
    "T2Vec",
    "T2VecConfig",
    "TrainingConfig",
    "Trajectory",
    "alternating_split",
    "distort",
    "downsample",
    "harbin_like",
    "porto_like",
    "__version__",
]
