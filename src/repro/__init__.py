"""repro — a full reproduction of *Deep Representation Learning for
Trajectory Similarity Computation* (t2vec, ICDE 2018).

Top-level convenience imports cover the common workflow::

    from repro import T2Vec, porto_like

    city = porto_like()
    trips = city.generate(500)
    model = T2Vec()
    model.fit(trips)
    vector = model.encode(trips[0])

Sub-packages: :mod:`repro.nn` (numpy autograd + GRU substrate),
:mod:`repro.spatial` (grid + hot-cell vocabulary), :mod:`repro.data`
(synthetic city, transforms, batching), :mod:`repro.baselines`
(EDR/LCSS/EDwP/... comparison measures), :mod:`repro.core` (the t2vec
model), :mod:`repro.eval` (the paper's experiment harness), and
:mod:`repro.telemetry` (metrics registry, spans, trainer callbacks).
"""

from .core import (ExactIndex, LSHIndex, LossSpec, T2Vec, T2VecConfig,
                   TrainingConfig)
from .data import (SyntheticCity, TrainingDataPipeline, Trajectory,
                   alternating_split, distort, downsample, harbin_like,
                   porto_like)
from .spatial import CellVocabulary, Grid, Projection
from .telemetry import (Callback, MetricsRegistry, ProgressLogger, Span,
                        Timer, get_registry, set_registry)

__version__ = "1.0.0"

__all__ = [
    "Callback",
    "CellVocabulary",
    "ExactIndex",
    "Grid",
    "LSHIndex",
    "LossSpec",
    "MetricsRegistry",
    "ProgressLogger",
    "Projection",
    "Span",
    "SyntheticCity",
    "T2Vec",
    "T2VecConfig",
    "Timer",
    "TrainingConfig",
    "TrainingDataPipeline",
    "Trajectory",
    "alternating_split",
    "distort",
    "downsample",
    "get_registry",
    "harbin_like",
    "porto_like",
    "set_registry",
    "__version__",
]
