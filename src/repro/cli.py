"""Command-line interface: ``python -m repro <command>``.

Wraps the library's main workflows for shell use:

* ``generate`` — synthesize a trajectory archive (or convert a Porto CSV).
* ``train``    — fit a t2vec model on an archive.
* ``encode``   — embed an archive into vectors with a trained model.
* ``knn``      — query the k most similar trajectories.
* ``evaluate`` — run the most-similar-search mean-rank experiment.
* ``stats``    — summarize a metrics JSONL file written by the above.

Every command reads/writes plain ``.npz`` files, so the steps compose::

    python -m repro generate --city porto --trips 400 --out trips.npz
    python -m repro train --data trips.npz --out model.npz --epochs 8
    python -m repro knn --model model.npz --data trips.npz --query 0 --k 5

``train``/``encode``/``knn``/``evaluate`` accept ``--metrics-out FILE``
to dump the run's telemetry (loss curve, tokens/sec, latency histograms,
cache hit counters) as JSONL; ``repro stats --metrics FILE`` renders it.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="t2vec trajectory similarity (ICDE 2018 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="synthesize a trajectory archive")
    gen.add_argument("--city", choices=["porto", "harbin"], default="porto")
    gen.add_argument("--trips", type=int, default=300)
    gen.add_argument("--seed", type=int, default=7)
    gen.add_argument("--porto-csv", default=None,
                     help="load this real Porto CSV instead of synthesizing")
    gen.add_argument("--out", required=True, help="output archive (.npz)")

    train = sub.add_parser("train", help="fit a t2vec model on an archive")
    train.add_argument("--data", required=True)
    train.add_argument("--out", required=True, help="output model (.npz)")
    train.add_argument("--cell-size", type=float, default=100.0)
    train.add_argument("--min-hits", type=int, default=5)
    train.add_argument("--hidden", type=int, default=64)
    train.add_argument("--layers", type=int, default=1)
    train.add_argument("--loss", choices=["L1", "L2", "L3"], default="L3")
    train.add_argument("--no-pretrain", action="store_true",
                       help="skip cell-embedding pretraining (CL)")
    train.add_argument("--epochs", type=int, default=10)
    train.add_argument("--batch-size", type=int, default=256)
    train.add_argument("--num-workers", type=int, default=0,
                       help="data-pipeline worker processes "
                            "(0 = synthesize pairs in-process)")
    train.add_argument("--bucket-batches", type=int, default=8,
                       help="length-bucketing window of the data "
                            "pipeline, in batches")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--progress", action="store_true",
                       help="print a per-epoch progress line to stderr")

    encode = sub.add_parser("encode", help="embed an archive into vectors")
    encode.add_argument("--model", required=True)
    encode.add_argument("--data", required=True)
    encode.add_argument("--out", required=True, help="output vectors (.npz)")

    knn = sub.add_parser("knn", help="k nearest trajectories to one query")
    knn.add_argument("--model", required=True)
    knn.add_argument("--data", required=True, help="database archive")
    knn.add_argument("--query", type=int, required=True,
                     help="index of the query trajectory in the archive")
    knn.add_argument("--k", type=int, default=5)

    evaluate = sub.add_parser(
        "evaluate", help="most-similar-search mean rank on an archive")
    evaluate.add_argument("--model", required=True)
    evaluate.add_argument("--data", required=True)
    evaluate.add_argument("--queries", type=int, default=20)
    evaluate.add_argument("--dropping-rate", type=float, default=0.0)
    evaluate.add_argument("--distorting-rate", type=float, default=0.0)
    evaluate.add_argument("--seed", type=int, default=7)

    for command in (train, encode, knn, evaluate):
        command.add_argument(
            "--metrics-out", default=None, metavar="FILE",
            help="write this run's telemetry as JSONL (see `repro stats`)")

    stats = sub.add_parser(
        "stats", help="summarize a metrics JSONL file (--metrics-out)")
    stats.add_argument("--metrics", required=True,
                       help="metrics JSONL written by --metrics-out")
    stats.add_argument("--width", type=int, default=60,
                       help="chart width for gauge-history curves")
    return parser


# ----------------------------------------------------------------------
# Command implementations
# ----------------------------------------------------------------------
def _cmd_generate(args) -> int:
    from .data import (dataset_statistics, harbin_like, load_porto,
                       porto_like, save_archive)
    if args.porto_csv:
        trips = load_porto(args.porto_csv, max_trips=args.trips)
    else:
        city = porto_like(args.seed) if args.city == "porto" else harbin_like(args.seed)
        trips = city.generate(args.trips)
    save_archive(args.out, trips)
    stats = dataset_statistics(trips)
    print(f"wrote {args.out}: {stats['num_trips']} trips, "
          f"{stats['num_points']} points, "
          f"mean length {stats['mean_length']:.1f}")
    return 0


def _cmd_train(args) -> int:
    from .core import LossSpec, T2Vec, T2VecConfig, TrainingConfig
    from .data import load_archive
    trips = load_archive(args.data)
    config = T2VecConfig(
        cell_size=args.cell_size, min_hits=args.min_hits,
        embedding_size=args.hidden, hidden_size=args.hidden,
        num_layers=args.layers,
        loss=LossSpec(kind=args.loss),
        pretrain_cells=not args.no_pretrain,
        training=TrainingConfig(batch_size=args.batch_size,
                                max_epochs=args.epochs,
                                num_workers=args.num_workers,
                                bucket_batches=args.bucket_batches),
        seed=args.seed,
    )
    model = T2Vec(config)
    callbacks = []
    if args.progress:
        from .telemetry import ProgressLogger
        callbacks.append(ProgressLogger())
    result = model.fit(trips, callbacks=callbacks)
    model.save(args.out)
    best = (f"{result.best_val_loss:.4f}"
            if np.isfinite(result.best_val_loss) else "n/a")
    print(f"wrote {args.out}: {result.epochs_run} epochs, "
          f"{result.steps} steps, best validation loss {best}, "
          f"{model.vocab.num_hot_cells} hot cells")
    return 0


def _cmd_encode(args) -> int:
    from .core import T2Vec
    from .data import load_archive
    model = T2Vec.load(args.model)
    trips = load_archive(args.data)
    vectors = model.encode_many(trips)
    np.savez(args.out, vectors=vectors)
    print(f"wrote {args.out}: {vectors.shape[0]} vectors "
          f"of dimension {vectors.shape[1]}")
    return 0


def _cmd_knn(args) -> int:
    from .core import ExactIndex, T2Vec
    from .data import load_archive
    model = T2Vec.load(args.model)
    trips = load_archive(args.data)
    if not 0 <= args.query < len(trips):
        print(f"error: query index {args.query} out of range "
              f"[0, {len(trips)})", file=sys.stderr)
        return 2
    index = ExactIndex(model.encode_many(trips))
    order, dists = index.knn(model.encode(trips[args.query]),
                             min(args.k, len(trips)))
    print(f"{'rank':>4}  {'index':>6}  {'distance':>9}")
    for rank, (idx, dist) in enumerate(zip(order, dists), start=1):
        print(f"{rank:>4}  {idx:>6}  {dist:>9.4f}")
    return 0


def _cmd_evaluate(args) -> int:
    from .core import T2Vec
    from .data import load_archive
    from .eval import build_setup, mean_rank
    model = T2Vec.load(args.model)
    trips = load_archive(args.data)
    n_queries = min(args.queries, max(1, len(trips) // 3))
    setup = build_setup(
        trips[:n_queries * 2], trips[n_queries * 2:], n_queries,
        dropping_rate=args.dropping_rate,
        distorting_rate=args.distorting_rate,
        rng=np.random.default_rng(args.seed))
    rank = mean_rank(model, setup)
    print(f"mean rank over {len(setup.queries)} queries "
          f"(db size {len(setup.database)}, r1={args.dropping_rate}, "
          f"r2={args.distorting_rate}): {rank:.2f}")
    return 0


def _cmd_stats(args) -> int:
    import math

    from .telemetry import cache_hit_rate, read_jsonl, summarize
    try:
        records = read_jsonl(args.metrics)
    except FileNotFoundError:
        print(f"error: no such metrics file: {args.metrics}", file=sys.stderr)
        return 2
    print(summarize(records, width=args.width))
    hit_rate = cache_hit_rate(records)
    if not math.isnan(hit_rate):
        print(f"\nencode cache hit rate: {hit_rate:.1%}")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "train": _cmd_train,
    "encode": _cmd_encode,
    "knn": _cmd_knn,
    "evaluate": _cmd_evaluate,
    "stats": _cmd_stats,
}


def main(argv: Optional[List[str]] = None) -> int:
    from .telemetry import MetricsRegistry, set_registry, write_jsonl

    args = build_parser().parse_args(argv)
    # Each CLI invocation gets a fresh default registry so --metrics-out
    # captures exactly this run (and repeated main() calls don't mix).
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        code = _COMMANDS[args.command](args)
        metrics_out = getattr(args, "metrics_out", None)
        if metrics_out and code == 0:
            count = write_jsonl(registry, metrics_out)
            print(f"wrote {metrics_out}: {count} metric records")
        return code
    finally:
        set_registry(previous)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
