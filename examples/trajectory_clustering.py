"""Trajectory clustering on learned representations (paper §VI future work 1).

The paper's conclusion proposes "employing the learned representations to
explore more downstream tasks, e.g., trajectory clustering".  Because
every synthetic trip carries its generating route id, we have clustering
ground truth: k-means on t2vec vectors should group trips by route far
better than k-means on a naive bag-of-cells representation.

Run:  python examples/trajectory_clustering.py
"""

import numpy as np

from repro import LossSpec, T2Vec, T2VecConfig, TrainingConfig, porto_like
from repro.tasks import KMeans, cluster_purity, normalized_mutual_information


def bag_of_cells(model, trips):
    """Naive baseline representation: normalized cell-visit histogram."""
    vocab = model.vocab
    out = np.zeros((len(trips), vocab.size))
    for i, trip in enumerate(trips):
        tokens = vocab.tokenize_points(trip.points)
        counts = np.bincount(tokens, minlength=vocab.size)
        out[i] = counts / counts.sum()
    return out


def main():
    city = porto_like(seed=7)
    trips = city.generate(400)
    train, heldout = trips[:300], trips[300:]

    print(f"training t2vec on {len(train)} trips...")
    model = T2Vec(T2VecConfig(
        min_hits=5, embedding_size=48, hidden_size=48, num_layers=1,
        loss=LossSpec(kind="L3", k_nearest=10, noise=48),
        training=TrainingConfig(batch_size=256, max_epochs=10, patience=4),
        seed=0,
    ))
    model.fit(train)

    route_ids = [t.route_id for t in heldout]
    n_clusters = min(20, len(set(route_ids)))
    print(f"clustering {len(heldout)} held-out trips from "
          f"{len(set(route_ids))} routes into {n_clusters} clusters\n")

    vectors = model.encode_many(heldout)
    labels_t2vec = KMeans(n_clusters, seed=0).fit_predict(vectors)
    labels_boc = KMeans(n_clusters, seed=0).fit_predict(
        bag_of_cells(model, heldout))

    print(f"{'representation':<18}  {'purity':>6}  {'NMI':>6}")
    for name, labels in (("t2vec vectors", labels_t2vec),
                         ("bag-of-cells", labels_boc)):
        purity = cluster_purity(labels, route_ids)
        nmi = normalized_mutual_information(labels, route_ids)
        print(f"{name:<18}  {purity:>6.3f}  {nmi:>6.3f}")
    print("\nNMI is the fairer score here (there are more routes than "
          "clusters, which inflates purity for fragmented clusterings); "
          "t2vec's vectors recover more route structure than the "
          "order-blind bag-of-cells representation.")


if __name__ == "__main__":
    main()
