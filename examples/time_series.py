"""Beyond trajectories: the same model on generic time series.

The paper's future-work item 2 proposes "extending the proposed method to
more general time series data beyond trajectories".  This example runs
:class:`repro.core.Series2Vec` — the t2vec pipeline with quantile-bin
tokens instead of grid cells — on three synthetic signal families and
shows that (a) nearest neighbours in representation space stay within a
family and (b) retrieval survives heavy down-sampling, exactly the
robustness t2vec exhibits on trajectories.

Run:  python examples/time_series.py
"""

import numpy as np

from repro.core import (Series2Vec, Series2VecConfig, TrainingConfig,
                        downsample_series)
from repro.core.losses import LossSpec


def make_series(kind: str, n: int, rng: np.random.Generator) -> np.ndarray:
    t = np.linspace(0, 4 * np.pi, n)
    phase = rng.uniform(0, 2 * np.pi)
    noise = 0.05 * rng.standard_normal(n)
    if kind == "sine":
        return np.sin(t + phase) + noise
    if kind == "ramp":
        return np.linspace(-1, 1, n) + 0.1 * np.sin(3 * t + phase) + noise
    return np.sign(np.sin(t + phase)) + noise  # square wave


def main():
    rng = np.random.default_rng(0)
    kinds = ["sine", "ramp", "square"]
    dataset = [(k, make_series(k, int(rng.integers(40, 70)), rng))
               for k in kinds for _ in range(40)]
    rng.shuffle(dataset)
    train = [s for _, s in dataset[:100]]
    heldout = dataset[100:]

    print(f"training Series2Vec on {len(train)} series...")
    model = Series2Vec(Series2VecConfig(
        num_bins=32, embedding_size=24, hidden_size=24,
        loss=LossSpec(k_nearest=8, noise=24),
        training=TrainingConfig(batch_size=128, max_epochs=6, patience=4),
        seed=0))
    result = model.fit(train)
    print(f"done: {result.epochs_run} epochs, "
          f"final train loss {result.train_losses[-1]:.3f}\n")

    labels = [k for k, _ in heldout]
    series = [s for _, s in heldout]

    print("1-NN family accuracy on held-out series:")
    correct = 0
    for i in range(len(series)):
        others = series[:i] + series[i + 1:]
        other_labels = labels[:i] + labels[i + 1:]
        nearest = model.knn(series[i], others, k=1)[0]
        correct += other_labels[nearest] == labels[i]
    print(f"  clean queries:        {correct / len(series):.2f}")

    correct = 0
    for i in range(len(series)):
        degraded = downsample_series(series[i], 0.6, rng)
        others = series[:i] + series[i + 1:]
        other_labels = labels[:i] + labels[i + 1:]
        nearest = model.knn(degraded, others, k=1)[0]
        correct += other_labels[nearest] == labels[i]
    print(f"  60%-downsampled:      {correct / len(series):.2f}")
    print("\nThe representation, trained only to reconstruct dense series "
          "from degraded ones, transfers the paper's robustness to a "
          "non-trajectory domain.")


if __name__ == "__main__":
    main()
