"""Quickstart: train t2vec on a synthetic city and run a similarity search.

This is the 2-minute tour of the library:

1. Generate a taxi-trip archive from the synthetic city (the stand-in for
   the paper's Porto dataset — see DESIGN.md §2).
2. Fit a small t2vec model: grid → hot cells → cell pretraining →
   seq2seq training with the L3 spatial-proximity loss.
3. Encode trajectories into vectors and run a k-nearest-neighbour query.
4. Show robustness: a heavily down-sampled variant of a trajectory still
   retrieves the original as its nearest neighbour.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import LossSpec, T2Vec, T2VecConfig, TrainingConfig, porto_like
from repro.data import dataset_statistics, downsample


def main():
    print("== 1. Generate a synthetic taxi archive ==")
    city = porto_like(seed=7)
    trips = city.generate(300)
    stats = dataset_statistics(trips)
    print(f"   {stats['num_trips']} trips, {stats['num_points']} GPS points, "
          f"mean length {stats['mean_length']:.1f}")

    print("== 2. Fit t2vec (small configuration for a quick demo) ==")
    config = T2VecConfig(
        cell_size=100.0, min_hits=5,
        embedding_size=48, hidden_size=48, num_layers=1,
        loss=LossSpec(kind="L3", k_nearest=10, theta=100.0, noise=48),
        training=TrainingConfig(batch_size=256, max_epochs=8, patience=4),
        seed=0,
    )
    model = T2Vec(config)
    result = model.fit(trips[:250])
    print(f"   trained {result.epochs_run} epochs "
          f"({result.steps} steps, {result.wall_time_s:.0f}s); "
          f"validation loss {result.val_losses[0]:.3f} -> "
          f"{result.best_val_loss:.3f}")
    print(f"   vocabulary: {model.vocab.num_hot_cells} hot cells")

    print("== 3. Encode and query ==")
    database = trips[250:]
    query = database[0]
    vector = model.encode(query)
    print(f"   representation v has shape {vector.shape} "
          f"(norm {np.linalg.norm(vector):.2f})")
    neighbours = model.knn(query, database, k=5)
    print(f"   5-NN of trip 0 in a {len(database)}-trip database: "
          f"{neighbours.tolist()} (index 0 = the query itself)")

    print("== 4. Robustness to low sampling rates ==")
    rng = np.random.default_rng(1)
    degraded = downsample(query, 0.6, rng)
    print(f"   query degraded from {len(query)} to {len(degraded)} points "
          f"(dropping rate 0.6)")
    rank = model.rank_of(degraded, database, 0)
    print(f"   the original still ranks #{rank} for its degraded variant")

    print("== 5. Save / load ==")
    model.save("/tmp/t2vec_quickstart.npz")
    restored = T2Vec.load("/tmp/t2vec_quickstart.npz")
    assert np.allclose(restored.encode(query), vector, atol=1e-6)
    print("   model round-trips through /tmp/t2vec_quickstart.npz")


if __name__ == "__main__":
    main()
