"""Most-similar trajectory search: t2vec versus the classic baselines.

Reproduces the protocol of the paper's Experiments 1-2 (Section V-C1) at
laptop scale: every trajectory is split into interleaved halves Ta / Ta'
(Figure 4), queries search for their counterpart in a database, and the
mean rank of the counterpart is reported for each similarity measure and
several down-sampling rates.

Run:  python examples/most_similar_search.py
"""

import numpy as np

from repro import LossSpec, T2Vec, T2VecConfig, TrainingConfig, porto_like
from repro.baselines import CMS, EDR, EDwP, LCSS
from repro.eval import build_setup, format_table, mean_rank


def main():
    city = porto_like(seed=7)
    trips = city.generate(500)
    train, test = trips[:400], trips[400:]

    print("training t2vec on "
          f"{len(train)} trips (a few minutes on CPU)...")
    model = T2Vec(T2VecConfig(
        min_hits=5, embedding_size=64, hidden_size=64, num_layers=1,
        loss=LossSpec(kind="L3", k_nearest=10, theta=100.0, noise=64),
        training=TrainingConfig(batch_size=256, max_epochs=12, patience=4),
        seed=0,
    ))
    result = model.fit(train)
    print(f"done: {result.epochs_run} epochs, "
          f"best validation loss {result.best_val_loss:.3f}\n")

    measures = [model, EDwP(), EDR(100.0), LCSS(100.0), CMS(model.vocab)]
    rates = [0.0, 0.2, 0.4, 0.6]
    rows = {m.name: [] for m in measures}
    for r1 in rates:
        setup = build_setup(test, train[:300], num_queries=40,
                            dropping_rate=r1, rng=np.random.default_rng(7))
        for measure in measures:
            rows[measure.name].append(mean_rank(measure, setup))

    print(format_table(
        "Mean rank of the true counterpart vs. dropping rate r1 "
        "(cf. paper Table IV)", "r1", rates, rows))
    print("\nlower is better; the paper's ordering at scale: "
          "t2vec < EDwP < EDR/LCSS < CMS")


if __name__ == "__main__":
    main()
