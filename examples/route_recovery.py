"""Route recovery: the decoder reconstructs a dense route from sparse input.

The heart of t2vec's design (Section IV-A) is training the decoder to
maximize P(Tb | Ta) — recovering the dense trajectory from a degraded
one.  This example makes that visible: it feeds heavily down-sampled
trajectories to a trained model, greedy-decodes the cell sequence, and
measures how close the reconstructed route lies to the original (never
seen) dense trajectory.

Run:  python examples/route_recovery.py
"""

import numpy as np

from repro import LossSpec, T2Vec, T2VecConfig, TrainingConfig, porto_like
from repro.data import downsample


def route_deviation(reconstruction, original_points):
    """Mean distance from reconstructed cells to the original polyline."""
    if len(reconstruction) == 0:
        return float("inf")
    dists = np.sqrt(((reconstruction[:, None, :] -
                      original_points[None, :, :]) ** 2).sum(axis=2))
    return float(dists.min(axis=1).mean())


def main():
    city = porto_like(seed=7)
    trips = city.generate(400)
    train, test = trips[:320], trips[320:]

    print(f"training t2vec on {len(train)} trips...")
    model = T2Vec(T2VecConfig(
        min_hits=5, embedding_size=64, hidden_size=64, num_layers=1,
        loss=LossSpec(kind="L3", k_nearest=10, noise=64),
        training=TrainingConfig(batch_size=256, max_epochs=12, patience=4),
        seed=0,
    ))
    model.fit(train)
    cell = model.config.cell_size

    rng = np.random.default_rng(3)
    print("\nreconstruction quality vs. input degradation "
          "(deviation in meters from the true route; cell size = "
          f"{cell:.0f} m):\n")
    print(f"{'r1':>4}  {'kept pts':>8}  {'greedy':>8}  {'beam(4)':>8}")
    for r1 in (0.0, 0.4, 0.6, 0.8):
        greedy_dev, beam_dev, kept = [], [], []
        for trip in test[:20]:
            degraded = downsample(trip, r1, rng)
            greedy = model.reconstruct_route(degraded, max_len=80)
            beam = model.reconstruct_route(degraded, max_len=80, beam_width=4)
            greedy_dev.append(route_deviation(greedy, trip.points))
            beam_dev.append(route_deviation(beam, trip.points))
            kept.append(len(degraded))
        print(f"{r1:>4}  {np.mean(kept):>8.1f}  "
              f"{np.mean(greedy_dev):>7.0f}m  {np.mean(beam_dev):>7.0f}m")

    print("\nEven at r1=0.8 — keeping only ~10 of ~45 points — the decoded "
          "route stays within a handful of cells of the original: the "
          "transition patterns were learned from the archive, exactly the "
          "paper's premise. (With a demo-size model greedy and beam decode "
          "perform similarly; beam pays off as the decoder gets sharper.)")


if __name__ == "__main__":
    main()
