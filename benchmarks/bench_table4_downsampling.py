"""Table IV — mean rank versus down-sampling rate r1 (Experiment 2).

Paper shape (Porto, 100k DB): EDR degrades fastest (160 -> 341); LCSS
and vRNN are flat-ish but high; EDwP holds until r1=0.6 then jumps;
t2vec stays lowest throughout (7.88 -> 15.99).
"""

import pytest

from repro.baselines import CMS, EDR, LCSS, EDwP
from repro.eval import experiment_downsampling, format_table

from .conftest import FAST, run_once, write_result

RATES = [0.2, 0.3, 0.4, 0.5, 0.6] if not FAST else [0.2, 0.6]
NUM_QUERIES = 40 if not FAST else 10
FILLERS = 400 if not FAST else 80


@pytest.mark.parametrize("city_fixture", ["porto_bench", "harbin_bench"])
def test_table4_mean_rank_vs_dropping_rate(benchmark, request, city_fixture):
    bench = request.getfixturevalue(city_fixture)
    measures = [bench.model, EDwP(), EDR(100.0), LCSS(100.0),
                bench.vrnn, CMS(bench.vocab)]

    def run():
        return experiment_downsampling(
            measures, bench.queries_pool, bench.filler_pool[:FILLERS],
            num_queries=NUM_QUERIES, dropping_rates=RATES, seed=7)

    results = run_once(benchmark, run)
    write_result(f"table4_downsampling_{bench.name}", format_table(
        f"Table IV ({bench.name}): mean rank vs dropping rate r1",
        "r1", RATES, results))

    # Shape: a weak baseline (CMS or vRNN) is worst on average, and no
    # method improves substantially under heavier down-sampling.
    means = {name: sum(r) / len(r) for name, r in results.items()}
    worst = max(means, key=means.get)
    assert worst in ("CMS", "vRNN"), worst
    for name, ranks in results.items():
        assert ranks[-1] >= ranks[0] - 0.35 * max(ranks[0], 10.0), name
