"""Table VI — mean cross-distance deviation vs r1 and r2.

Paper shape: t2vec has the smallest deviation at (almost) every rate;
EDR's deviation explodes with r1 (0.13 -> 0.58) because dropped points
directly change the edit cost; all three methods stay low under
distortion.
"""

from repro.baselines import EDR, EDwP
from repro.eval import experiment_cross_similarity, format_table

from .conftest import FAST, run_once, write_result

RATES = [0.1, 0.2, 0.4, 0.6]
NUM_PAIRS = 60 if not FAST else 15


def test_table6_cross_distance_deviation(benchmark, porto_bench):
    trajectories = porto_bench.queries_pool + porto_bench.filler_pool[:200]
    measures = [porto_bench.model, EDwP(), EDR(100.0)]

    def run():
        dropping = experiment_cross_similarity(
            measures, trajectories, NUM_PAIRS, RATES, mode="dropping", seed=3)
        distorting = experiment_cross_similarity(
            measures, trajectories, NUM_PAIRS, RATES, mode="distorting", seed=3)
        return dropping, distorting

    dropping, distorting = run_once(benchmark, run)
    text = format_table(
        "Table VI (top): mean cross-distance deviation vs dropping rate r1",
        "r1", RATES, dropping, precision=3)
    text += "\n\n" + format_table(
        "Table VI (bottom): mean cross-distance deviation vs distorting rate r2",
        "r2", RATES, distorting, precision=3)
    write_result("table6_cross_similarity", text)

    # Shape: EDR's dropping deviation grows sharply with r1 and ends worst.
    assert dropping["EDR"][-1] > 2.0 * dropping["EDR"][0]
    assert dropping["EDR"][-1] == max(d[-1] for d in dropping.values())
    # Distortion deviations stay moderate for every method (paper: < 0.05).
    for name, devs in distorting.items():
        assert max(devs) < 1.0, name
