"""Throughput gate: sequence-fused RNN kernels vs. the step-wise path.

Measures, for both ``rnn_type="gru"`` and ``"lstm"``:

* **train tokens/sec** — a full training step (encode, decode, loss,
  backward, Adam update) on a synthetic padded batch, with tokens counted
  the same way :class:`~repro.core.trainer.Trainer` counts them
  (``src_mask.sum() + tgt_mask.sum()``);
* **encode latency** — eval-mode ``model.encode`` wall time, recorded as
  a histogram so the JSON carries mean / p50 / p95.

Both the fused (``model.fused = True``, the default) and the step-wise
reference path (``model.fused = False`` — byte-for-byte the pre-fusion
per-timestep cell loop) are timed, so the report records the speedup of
this PR against the path the repo shipped before it.

Timing protocol: the host is a single contended CPU, so a single wall
clock sample can be ~2x off.  The two modes are interleaved round-robin
and each mode keeps its *minimum* step time — the minimum converges to
the uncontended cost and both modes see the same interference pattern.

Run standalone (writes ``BENCH_throughput.json`` at the repo root)::

    PYTHONPATH=src python benchmarks/bench_throughput.py [--smoke]

or under pytest (``pytest benchmarks/bench_throughput.py``), which runs
the smoke profile.  ``REPRO_BENCH_FAST=1`` also selects the smoke
profile, matching the other benches.  Per-mode metrics additionally land
in ``benchmarks/results/throughput_metrics.jsonl`` via the telemetry
registry.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.encoder_decoder import EncoderDecoder, ModelConfig
from repro.core.losses import LossSpec, sequence_loss
from repro.data.dataset import pad_batch
from repro.nn.optim import Adam
from repro.spatial.vocab import BOS, EOS
from repro.telemetry import MetricsRegistry, write_jsonl

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = Path(__file__).parent / "results"
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_throughput.json"

FAST = os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")

#: Synthetic workload profiles.  The full profile mirrors the paper's
#: regime (long trajectories, hundreds of points) at benchmark scale:
#: small online batches of long sequences are exactly where the
#: per-timestep tape overhead of the step-wise path dominates.
PROFILES = {
    "full": dict(vocab=200, max_len=150, batch=8, hidden=128, layers=3,
                 dropout=0.1, rounds=9, encode_rounds=20),
    "smoke": dict(vocab=64, max_len=24, batch=4, hidden=24, layers=2,
                  dropout=0.1, rounds=3, encode_rounds=5),
}

MODES = ("stepwise", "fused")


def make_batch(rng: np.random.Generator, vocab: int, max_len: int, batch: int):
    """A padded synthetic batch framed the way the Trainer frames one."""
    seqs = [rng.integers(4, vocab, size=int(rng.integers(max_len // 2, max_len)))
            for _ in range(batch)]
    src, src_mask = pad_batch(seqs)
    tgt_in, _ = pad_batch([np.concatenate(([BOS], s)) for s in seqs])
    tgt_out, tgt_mask = pad_batch([np.concatenate((s, [EOS])) for s in seqs])
    return src, src_mask, tgt_in, tgt_out, tgt_mask


def build_model(profile: dict, rnn_type: str) -> EncoderDecoder:
    return EncoderDecoder(ModelConfig(
        vocab_size=profile["vocab"],
        embedding_size=profile["hidden"],
        hidden_size=profile["hidden"],
        num_layers=profile["layers"],
        dropout=profile["dropout"],
        rnn_type=rnn_type,
        seed=0,
    ))


def bench_rnn_type(rnn_type: str, profile: dict,
                   registry: MetricsRegistry) -> dict:
    """Time train steps and encodes for one rnn_type, both modes."""
    rng = np.random.default_rng(0)
    src, src_mask, tgt_in, tgt_out, tgt_mask = make_batch(
        rng, profile["vocab"], profile["max_len"], profile["batch"])
    tokens = int(src_mask.sum() + tgt_mask.sum())

    model = build_model(profile, rnn_type)
    optimizer = Adam(model.parameters(), lr=1e-3)
    spec = LossSpec(kind="L1")

    def train_step() -> None:
        optimizer.zero_grad()
        _, state = model.encode(src, src_mask)
        hidden = model.decode(tgt_in, state, tgt_mask)
        loss = sequence_loss(model, hidden, tgt_out, tgt_mask, None, spec)
        loss.backward()
        optimizer.step()

    best_step = {mode: float("inf") for mode in MODES}
    model.train()
    for mode in MODES:                      # warm caches outside timing
        model.fused = mode == "fused"
        train_step()
    for _ in range(profile["rounds"]):
        for mode in MODES:
            model.fused = mode == "fused"
            start = time.perf_counter()
            train_step()
            elapsed = time.perf_counter() - start
            registry.histogram(f"{rnn_type}.{mode}.train.step_s").observe(elapsed)
            registry.counter(f"{rnn_type}.{mode}.train.tokens").inc(tokens)
            best_step[mode] = min(best_step[mode], elapsed)

    # Encode latency in eval mode (the similarity-query serving path).
    model.eval()
    encode_hists = {}
    for mode in MODES:
        model.fused = mode == "fused"
        model.encode(src, src_mask)         # warmup
    for _ in range(profile["encode_rounds"]):
        for mode in MODES:
            model.fused = mode == "fused"
            start = time.perf_counter()
            model.encode(src, src_mask)
            elapsed = time.perf_counter() - start
            hist = registry.histogram(f"{rnn_type}.{mode}.encode.latency_s")
            hist.observe(elapsed)
            encode_hists[mode] = hist

    result = {}
    for mode in MODES:
        tokens_per_s = tokens / best_step[mode]
        registry.gauge(f"{rnn_type}.{mode}.train.tokens_per_s").set(tokens_per_s)
        hist = encode_hists[mode]
        result[mode] = {
            "train_tokens_per_s": round(tokens_per_s, 1),
            "train_step_s": round(best_step[mode], 6),
            "encode_latency_s": {
                "min": round(min(hist.values), 6),
                "mean": round(hist.mean, 6),
                "p50": round(hist.percentile(50), 6),
                "p95": round(hist.percentile(95), 6),
            },
        }
    result["tokens_per_step"] = tokens
    result["train_speedup"] = round(
        result["fused"]["train_tokens_per_s"]
        / result["stepwise"]["train_tokens_per_s"], 2)
    result["encode_speedup"] = round(
        result["stepwise"]["encode_latency_s"]["min"]
        / result["fused"]["encode_latency_s"]["min"], 2)
    return result


def run(smoke: bool = False, output: Path = DEFAULT_OUTPUT) -> dict:
    profile = PROFILES["smoke" if smoke else "full"]
    registry = MetricsRegistry()
    results = {}
    for rnn_type in ("gru", "lstm"):
        results[rnn_type] = bench_rnn_type(rnn_type, profile, registry)

    report = {
        "benchmark": "bench_throughput",
        "profile": "smoke" if smoke else "full",
        "workload": {k: profile[k] for k in
                     ("vocab", "max_len", "batch", "hidden", "layers",
                      "dropout")},
        "timing": "interleaved rounds, per-mode minimum step time",
        "results": results,
        "summary": {
            "train_speedup": {rt: results[rt]["train_speedup"]
                              for rt in results},
            "encode_speedup": {rt: results[rt]["encode_speedup"]
                               for rt in results},
        },
    }
    output.write_text(json.dumps(report, indent=2) + "\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    write_jsonl(registry, RESULTS_DIR / "throughput_metrics.jsonl")

    lines = [f"throughput ({report['profile']} profile) — "
             "train tokens/sec, fused vs step-wise"]
    for rt, res in results.items():
        lines.append(
            f"  {rt:4s}: stepwise {res['stepwise']['train_tokens_per_s']:>9,.0f}"
            f"  fused {res['fused']['train_tokens_per_s']:>9,.0f}"
            f"  ({res['train_speedup']:.2f}x train, "
            f"{res['encode_speedup']:.2f}x encode)")
    print("\n".join(lines))
    return report


def test_throughput_smoke(tmp_path):
    """Smoke gate: both paths run end to end and the report is complete."""
    report = run(smoke=True, output=tmp_path / "BENCH_throughput.json")
    for rnn_type in ("gru", "lstm"):
        res = report["results"][rnn_type]
        for mode in MODES:
            assert res[mode]["train_tokens_per_s"] > 0
            assert res[mode]["encode_latency_s"]["p95"] > 0
        assert res["train_speedup"] > 0
    assert (tmp_path / "BENCH_throughput.json").exists()


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny profile for CI (also: REPRO_BENCH_FAST=1)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="where to write the JSON report")
    args = parser.parse_args(argv)
    run(smoke=args.smoke or FAST, output=args.output)


if __name__ == "__main__":
    main()
