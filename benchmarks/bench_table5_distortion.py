"""Table V — mean rank versus distorting rate r2 (Experiment 3).

Paper shape: unlike down-sampling, *no* method is very sensitive to
distortion (30 m Gaussian noise); t2vec stays best at every rate.
"""

import pytest

from repro.baselines import CMS, EDR, LCSS, EDwP
from repro.eval import experiment_distortion, format_table

from .conftest import FAST, run_once, write_result

RATES = [0.2, 0.3, 0.4, 0.5, 0.6] if not FAST else [0.2, 0.6]
NUM_QUERIES = 40 if not FAST else 10
FILLERS = 400 if not FAST else 80


@pytest.mark.parametrize("city_fixture", ["porto_bench", "harbin_bench"])
def test_table5_mean_rank_vs_distorting_rate(benchmark, request, city_fixture):
    bench = request.getfixturevalue(city_fixture)
    measures = [bench.model, EDwP(), EDR(100.0), LCSS(100.0),
                bench.vrnn, CMS(bench.vocab)]

    def run():
        return experiment_distortion(
            measures, bench.queries_pool, bench.filler_pool[:FILLERS],
            num_queries=NUM_QUERIES, distorting_rates=RATES, seed=7)

    results = run_once(benchmark, run)
    write_result(f"table5_distortion_{bench.name}", format_table(
        f"Table V ({bench.name}): mean rank vs distorting rate r2",
        "r2", RATES, results))

    # Shape: distortion is far gentler than down-sampling — the paper
    # observes no obvious degradation; allow each method a 3x envelope.
    for name, ranks in results.items():
        assert max(ranks) <= 3.0 * max(min(ranks), 1.0) + 5.0, name
