"""Figure 5 — k-NN precision under down-sampling and distortion.

Paper shape (six panels, k = 20/30/40): precision decreases as r1/r2
grow; EDR and LCSS sit lowest, EDwP clearly above them, t2vec on top;
distortion hurts less than down-sampling.
"""

from repro.baselines import EDR, LCSS, EDwP
from repro.eval import experiment_knn_precision, format_table, line_chart

from .conftest import FAST, run_once, write_result

KS = [20, 30, 40] if not FAST else [10]
RATES = [0.2, 0.4, 0.6] if not FAST else [0.4]
NUM_QUERIES = 25 if not FAST else 8
DB_SIZE = 300 if not FAST else 60


def test_fig5_knn_precision(benchmark, porto_bench):
    queries = porto_bench.queries_pool[:NUM_QUERIES]
    database = porto_bench.filler_pool[:DB_SIZE]
    measures = [porto_bench.model, EDwP(), EDR(100.0), LCSS(100.0)]

    def run():
        dropping = experiment_knn_precision(
            measures, queries, database, ks=KS, rates=RATES,
            mode="dropping", seed=5)
        distorting = experiment_knn_precision(
            measures, queries, database, ks=KS, rates=RATES,
            mode="distorting", seed=5)
        return dropping, distorting

    dropping, distorting = run_once(benchmark, run)

    sections = []
    for mode, results in (("dropping r1", dropping), ("distorting r2", distorting)):
        for k in KS:
            sections.append(format_table(
                f"Figure 5: k-NN precision vs {mode} (k={k})",
                "rate", RATES, results[k], precision=3))
            if len(RATES) > 1:
                sections.append(line_chart(
                    f"Figure 5 (chart): precision vs {mode} (k={k})",
                    RATES, results[k], height=12, y_label="precision"))
    write_result("fig5_knn_precision", "\n\n".join(sections))

    # Shape: precision within [0, 1]; down-sampling hurts more than
    # distortion at the highest rate for the point-matching methods.
    for results in (dropping, distorting):
        for k in KS:
            for name, precisions in results[k].items():
                assert all(0.0 <= p <= 1.0 for p in precisions), name
    k = KS[0]
    assert dropping[k]["EDR"][-1] <= distorting[k]["EDR"][-1] + 0.15
