"""Table II — dataset statistics (#points, #trips, mean length).

Paper (real data):        Porto 74.3M points / 1.23M trips / mean 60,
                          Harbin 184.8M points / 1.53M trips / mean 121.
Here (synthetic, ~100x scaled down): the same three statistics for the
two synthetic cities, plus the trip-generation throughput as the timed
benchmark.
"""

import numpy as np

from repro.data import dataset_statistics, porto_like

from .conftest import run_once, write_result


def test_table2_dataset_statistics(benchmark, porto_bench, harbin_bench):
    rows = []
    for bench in (porto_bench, harbin_bench):
        trips = bench.train + bench.extra
        stats = dataset_statistics(trips)
        rows.append((bench.name, stats))

    lines = ["Table II: dataset statistics (synthetic stand-ins)",
             f"{'Dataset':<10}  {'#Points':>9}  {'#Trips':>7}  {'Mean length':>11}"]
    lines.append("-" * len(lines[-1]))
    for name, stats in rows:
        lines.append(f"{name:<10}  {stats['num_points']:>9}  "
                     f"{stats['num_trips']:>7}  {stats['mean_length']:>11.1f}")
    write_result("table2_datasets", "\n".join(lines))

    # Timed section: trip synthesis throughput (the data substrate itself).
    city = porto_like(seed=99)

    def generate():
        return city.generate(50, rng=np.random.default_rng(0))

    trips = run_once(benchmark, generate)
    assert len(trips) == 50
    # Sanity on the statistics shape (mirrors the paper: Harbin trips longer).
    porto_stats = dataset_statistics(porto_bench.train)
    harbin_stats = dataset_statistics(harbin_bench.train)
    assert harbin_stats["mean_length"] > porto_stats["mean_length"]
