"""Figure 6 — k-NN query time versus database size.

Paper shape: t2vec answers k-NN queries at least one order of magnitude
faster than EDR and EDwP at every database size, and its query time
grows linearly (vector scan) while the DP methods pay O(n^2) per pair.
This bench also exercises the LSH extension (paper §VI future work 3).
"""

import numpy as np

from repro.baselines import EDR, EDwP
from repro.core import ExactIndex, LSHIndex
from repro.eval import experiment_scalability, format_table, line_chart
from repro.telemetry import MetricsRegistry, set_registry, write_jsonl

from .conftest import FAST, RESULTS_DIR, run_once, write_result

DB_SIZES = [200, 400, 800] if not FAST else [50, 100]
NUM_QUERIES = 10 if not FAST else 4
K = 50 if not FAST else 10


def test_fig6_knn_query_time(benchmark, porto_bench):
    queries = porto_bench.queries_pool[:NUM_QUERIES]
    database = porto_bench.filler_pool + porto_bench.train  # big pool
    measures = [porto_bench.model, EDwP(), EDR(100.0)]

    # Capture per-query latency percentiles alongside the table itself.
    registry = MetricsRegistry()
    previous = set_registry(registry)

    def run():
        return experiment_scalability(measures, queries, database,
                                      db_sizes=DB_SIZES, k=K)

    try:
        results = run_once(benchmark, run)
    finally:
        set_registry(previous)
    write_jsonl(registry, RESULTS_DIR / "fig6_scalability_metrics.jsonl")
    ms = {name: [t * 1000 for t in times] for name, times in results.items()}
    text = format_table(
        "Figure 6: mean k-NN query time (ms) vs database size",
        "DB size", DB_SIZES, ms, precision=2)
    if len(DB_SIZES) > 1:
        text += "\n\n" + line_chart(
            "Figure 6 (chart): query time vs DB size",
            DB_SIZES, ms, logy=True, height=12, y_label="ms")
    write_result("fig6_scalability", text)

    # Headline claim: with offline encoding, t2vec's online query is at
    # least 10x faster than both DP baselines at the largest size.
    t2vec_time = results["t2vec"][-1]
    assert results["EDR"][-1] > 10 * t2vec_time
    assert results["EDwP"][-1] > 10 * t2vec_time


def test_fig6_lsh_speedup(benchmark, porto_bench):
    """LSH index beats the exact vector scan once the index is large."""
    rng = np.random.default_rng(0)
    # Synthetic vector database stands in for millions of encoded trips.
    n = 20000 if not FAST else 2000
    dim = porto_bench.model.config.hidden_size
    vectors = rng.standard_normal((n, dim))
    exact = ExactIndex(vectors)
    lsh = LSHIndex(vectors, num_tables=8, num_bits=14, seed=0)
    query = vectors[123] + 0.01

    def lsh_query():
        return lsh.knn(query, k=10)

    idx, _ = run_once(benchmark, lsh_query)
    assert len(idx) == 10

    import time
    start = time.perf_counter()
    for _ in range(20):
        exact.knn(query, k=10)
    exact_time = (time.perf_counter() - start) / 20
    start = time.perf_counter()
    for _ in range(20):
        lsh.knn(query, k=10)
    lsh_time = (time.perf_counter() - start) / 20
    candidates = len(lsh.candidates(query))
    text = (f"LSH extension on {n} vectors (dim {dim}):\n"
            f"exact scan  {exact_time * 1e3:.3f} ms/query\n"
            f"lsh         {lsh_time * 1e3:.3f} ms/query "
            f"({candidates} candidates visited)")
    write_result("fig6_lsh_extension", text)
    assert candidates < n  # visits a strict subset
