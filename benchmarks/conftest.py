"""Shared benchmark fixtures: datasets, trained models, and caching.

Every bench regenerates one of the paper's tables or figures.  Training a
t2vec model on CPU takes minutes, so fitted models are cached on disk
under ``benchmarks/_cache/`` and reused across bench files and runs;
delete that directory to retrain from scratch.

Scales are ~100x smaller than the paper's (DESIGN.md §4): the paper used
0.8M training trips and 100k-entry databases on a Tesla K40; we use
hundreds-to-thousands of trips so the whole suite runs on a laptop CPU.
Set ``REPRO_BENCH_FAST=1`` to shrink everything further for smoke runs.
"""

from __future__ import annotations

import os
import warnings
from pathlib import Path

import pytest

from repro import LossSpec, MetricsRegistry, T2Vec, T2VecConfig, TrainingConfig
from repro.data import harbin_like, porto_like
from repro.telemetry import ProgressLogger, write_jsonl

CACHE_DIR = Path(__file__).parent / "_cache"
RESULTS_DIR = Path(__file__).parent / "results"

FAST = os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")

#: Scale profile: (train trips, test trips, epochs, hidden size)
PROFILE = {
    False: dict(train_trips=600, extra_trips=900, epochs=12, hidden=64),
    True: dict(train_trips=150, extra_trips=300, epochs=4, hidden=32),
}[FAST]


def bench_config(hidden: int = None, epochs: int = None, **overrides) -> T2VecConfig:
    """The benchmark-default t2vec configuration (L3 + cell pretraining)."""
    hidden = hidden or PROFILE["hidden"]
    epochs = epochs or PROFILE["epochs"]
    defaults = dict(
        cell_size=100.0, min_hits=5,
        embedding_size=hidden, hidden_size=hidden, num_layers=1, dropout=0.0,
        loss=LossSpec(kind="L3", k_nearest=10, theta=100.0, noise=64),
        training=TrainingConfig(batch_size=256, max_epochs=epochs,
                                patience=5, eval_batches=6),
        seed=0,
    )
    defaults.update(overrides)
    return T2VecConfig(**defaults)


def load_cached(path: Path, loader):
    """Load a cache file, discarding corrupt entries instead of crashing.

    Cache files can end up truncated (an interrupted run, a full disk);
    a bad ``.npz`` is deleted with a warning so the caller regenerates it,
    rather than failing the whole bench session.  Returns ``None`` when the
    file is absent or unreadable.
    """
    if not path.exists():
        return None
    try:
        return loader(path)
    except Exception as exc:
        warnings.warn(f"discarding corrupt bench cache {path.name}: {exc!r}; "
                      "regenerating")
        path.unlink(missing_ok=True)
        return None


def fit_cached(tag: str, config: T2VecConfig, train_trips) -> T2Vec:
    """Train a model or load it from the on-disk cache.

    Fresh training runs record their telemetry (loss curve, tokens/sec,
    phase spans) to ``results/train_<tag>_metrics.jsonl`` so the cost of
    every cached model stays inspectable via ``repro stats``.
    """
    CACHE_DIR.mkdir(exist_ok=True)
    path = CACHE_DIR / f"{tag}{'_fast' if FAST else ''}.npz"
    cached = load_cached(path, T2Vec.load)
    if cached is not None:
        return cached
    registry = MetricsRegistry()
    model = T2Vec(config, registry=registry)
    model.fit(train_trips, callbacks=[ProgressLogger()])
    model.save(path)
    RESULTS_DIR.mkdir(exist_ok=True)
    write_jsonl(registry,
                RESULTS_DIR / f"train_{tag}{'_fast' if FAST else ''}_metrics.jsonl")
    return model


def write_result(name: str, text: str) -> None:
    """Print a table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)


class CityBench:
    """One city's data + trained models, shared across bench files."""

    def __init__(self, name: str, city):
        self.name = name
        self.city = city
        total = PROFILE["train_trips"] + PROFILE["extra_trips"]
        trips = city.generate(total)
        self.train = trips[:PROFILE["train_trips"]]
        self.extra = trips[PROFILE["train_trips"]:]
        # Paper protocol: queries come from held-out (test) data; the
        # filler set P fills the database.
        self.queries_pool = self.extra[:len(self.extra) // 3]
        self.filler_pool = self.extra[len(self.extra) // 3:]
        self.model = fit_cached(f"t2vec_{name}", bench_config(), self.train)
        self.vrnn = self._fit_vrnn_cached()

    def _fit_vrnn_cached(self):
        """The vRNN baseline, trained once per city and cached like t2vec."""
        from repro.baselines import VanillaRNNEmbedding
        CACHE_DIR.mkdir(exist_ok=True)
        path = CACHE_DIR / f"vrnn_{self.name}{'_fast' if FAST else ''}.npz"
        hidden = PROFILE["hidden"]
        cached = load_cached(
            path, lambda p: VanillaRNNEmbedding.load(p, self.vocab))
        if cached is not None:
            return cached
        vrnn = VanillaRNNEmbedding(self.vocab, embedding_size=hidden,
                                   hidden_size=hidden, num_layers=1, seed=0)
        vrnn.fit(self.train, epochs=max(2, PROFILE["epochs"] // 3),
                 batch_size=128)
        vrnn.save(path)
        return vrnn

    @property
    def vocab(self):
        return self.model.vocab


@pytest.fixture(scope="session")
def porto_bench() -> CityBench:
    return CityBench("porto", porto_like(seed=7))


@pytest.fixture(scope="session")
def harbin_bench() -> CityBench:
    return CityBench("harbin", harbin_like(seed=17))


def run_once(benchmark, fn):
    """Run a heavy experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
