"""Table IX — effect of the hidden-layer size |v|.

Paper shape (|v| = 64...512): tiny representations are catastrophically
bad (|v|=64 gives mean rank 400 vs 12.7 at 256); quality improves
sharply up to a sweet spot, then slightly degrades (overfitting).
Scaled here to |v| in a laptop range with proportionally smaller data.
"""

import numpy as np

from repro.eval import build_setup, format_table, mean_rank

from .conftest import FAST, bench_config, fit_cached, run_once, write_result

HIDDEN_SIZES = [8, 16, 32, 64, 96] if not FAST else [8, 32]
TRIPS = 200 if not FAST else 60
EPOCHS = 6 if not FAST else 2
NUM_QUERIES = 30 if not FAST else 8
FILLERS = 250 if not FAST else 50
RATES = [0.5, 0.6]


def test_table9_hidden_size(benchmark, porto_bench):
    train = porto_bench.train[:TRIPS]
    rows = {}

    def run():
        for hidden in HIDDEN_SIZES:
            tag = f"ablate_hidden_{hidden}"
            model = fit_cached(tag, bench_config(
                hidden=hidden, epochs=EPOCHS), train)
            ranks = []
            for r1 in RATES:
                setup = build_setup(porto_bench.queries_pool,
                                    porto_bench.filler_pool[:FILLERS],
                                    NUM_QUERIES, dropping_rate=r1,
                                    rng=np.random.default_rng(17))
                ranks.append(mean_rank(model, setup))
            rows[f"|v|={hidden}"] = ranks
        return rows

    results = run_once(benchmark, run)
    write_result("table9_hidden_size", format_table(
        "Table IX: mean rank per hidden size (rows) at r1=0.5/0.6",
        "r1", RATES, results))

    # Shape: the smallest representation is clearly worse than the best one.
    smallest = np.mean(results[f"|v|={HIDDEN_SIZES[0]}"])
    best = min(np.mean(r) for r in results.values())
    assert smallest >= best
