"""Data-pipeline gate: parallel streaming synthesis vs. the legacy path.

The training pairs of the paper (Section IV-B: the r1 × r2 grid of
degraded variants, 16 per original) used to be materialized by
``build_training_pairs`` + ``PairDataset`` — per-pair ``Trajectory``
construction and a KD-tree query per pair (the target tokenized 16×).
This bench measures, on a synthetic Porto-like archive:

* **legacy** — the pre-pipeline path: ``build_training_pairs`` then
  ``PairDataset`` tokenization;
* **pipeline_w0** — ``TrainingDataPipeline`` in-process mode: fused
  per-original synthesis (target tokenized once, one KD-tree query for
  all 16 variants, raw-array degrade);
* **pipeline_w1 / pipeline_w4** — the same stream sharded across 1 / 4
  worker processes through the bounded result queue.

It also measures padding efficiency: padded-tokens-per-real-token of the
assembled batch stream with length bucketing versus shuffle-only
batching.

Timing protocol (same as the sibling benches): the host is a contended
CPU, so the modes are interleaved round-robin and each keeps its
*minimum* round time — the minimum converges to the uncontended cost and
every mode sees the same interference pattern.

Run standalone (writes ``BENCH_data.json`` at the repo root)::

    PYTHONPATH=src python benchmarks/bench_data.py [--smoke]

or under pytest (``pytest benchmarks/bench_data.py``), which runs the
smoke profile.  ``REPRO_BENCH_FAST=1`` also selects the smoke profile.
Per-mode metrics additionally land in
``benchmarks/results/data_metrics.jsonl``.

Full-profile gate (checked when run standalone): the 4-worker pipeline
must clear ≥2x the legacy path's pairs/sec, and bucketed batching must
pad less than shuffle-only batching.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.data import PairDataset, build_training_pairs
from repro.data.generator import porto_like
from repro.data.pipeline import TrainingDataPipeline
from repro.spatial import CellVocabulary, Grid
from repro.telemetry import MetricsRegistry, write_jsonl

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = Path(__file__).parent / "results"
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_data.json"

FAST = os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")

#: Workload profiles.  The full profile is a realistic training shard
#: (hundreds of trips, 16 pairs each); smoke keeps CI under a minute.
PROFILES = {
    "full": dict(trips=600, cell_size=100.0, min_hits=3, rounds=3,
                 batch_size=64, bucket_batches=8),
    "smoke": dict(trips=64, cell_size=100.0, min_hits=3, rounds=2,
                  batch_size=16, bucket_batches=8),
}

MODES = ("legacy", "pipeline_w0", "pipeline_w1", "pipeline_w4")
WORKERS = {"pipeline_w0": 0, "pipeline_w1": 1, "pipeline_w4": 4}


def make_workload(profile: dict):
    """A Porto-like archive plus the hot-cell vocabulary over it."""
    city = porto_like(seed=7)
    trips = city.generate(profile["trips"])
    points = city.all_points(trips)
    grid = Grid.covering(points, profile["cell_size"])
    vocab = CellVocabulary.build(grid, points, min_hits=profile["min_hits"])
    return trips, vocab


def pad_overhead(batches) -> float:
    """Padded tokens per real token over an assembled batch stream."""
    real = sum(float(b.src_mask.sum() + b.tgt_mask.sum()) for b in batches)
    total = sum(float(b.src_mask.size + b.tgt_mask.size) for b in batches)
    return (total - real) / real


def run(smoke: bool = False, output: Path = DEFAULT_OUTPUT) -> dict:
    profile = PROFILES["smoke" if smoke else "full"]
    registry = MetricsRegistry()
    trips, vocab = make_workload(profile)
    num_pairs = 16 * len(trips)

    def run_legacy():
        pairs = build_training_pairs(trips, rng=np.random.default_rng(0))
        return PairDataset(pairs, vocab)

    def make_runner(workers):
        pipeline = TrainingDataPipeline(trips, vocab, seed=0,
                                        num_workers=workers,
                                        registry=registry)
        return lambda: sum(1 for _ in pipeline.token_pairs())

    runners = {"legacy": run_legacy}
    for mode, workers in WORKERS.items():
        runners[mode] = make_runner(workers)

    for mode in MODES:                      # warm caches outside timing
        runners[mode]()
    best = {mode: float("inf") for mode in MODES}
    for _ in range(profile["rounds"]):
        for mode in MODES:
            start = time.perf_counter()
            runners[mode]()
            elapsed = time.perf_counter() - start
            best[mode] = min(best[mode], elapsed)
            registry.histogram(f"data.{mode}.epoch_s").observe(elapsed)

    report_modes = {}
    for mode in MODES:
        pairs_per_s = num_pairs / best[mode]
        registry.gauge(f"data.{mode}.pairs_per_s").set(pairs_per_s)
        report_modes[mode] = {
            "pairs_per_s": round(pairs_per_s, 1),
            "epoch_s": round(best[mode], 4),
        }

    # Padding efficiency: same pairs, bucketed vs shuffle-only batching.
    bucketed = TrainingDataPipeline(
        trips, vocab, seed=0, bucket_batches=profile["bucket_batches"],
        registry=registry)
    shuffled = TrainingDataPipeline(
        trips, vocab, seed=0, bucket_batches=profile["bucket_batches"],
        bucketing=False, registry=registry)
    rng = np.random.default_rng(1)
    bucketed_overhead = pad_overhead(
        list(bucketed.batches(profile["batch_size"], rng)))
    shuffled_overhead = pad_overhead(
        list(shuffled.batches(profile["batch_size"], rng)))
    registry.gauge("data.pad_overhead.bucketed").set(bucketed_overhead)
    registry.gauge("data.pad_overhead.shuffled").set(shuffled_overhead)

    report = {
        "benchmark": "bench_data",
        "profile": "smoke" if smoke else "full",
        "workload": {"trips": len(trips), "pairs": num_pairs,
                     "vocab_size": vocab.size,
                     "batch_size": profile["batch_size"],
                     "bucket_batches": profile["bucket_batches"]},
        "timing": "interleaved rounds, per-mode minimum round time",
        "results": report_modes,
        "padding": {
            "bucketed_pad_per_real_token": round(bucketed_overhead, 4),
            "shuffled_pad_per_real_token": round(shuffled_overhead, 4),
        },
        "summary": {
            "pipeline_w0_speedup": round(
                report_modes["pipeline_w0"]["pairs_per_s"]
                / report_modes["legacy"]["pairs_per_s"], 2),
            "pipeline_w4_speedup": round(
                report_modes["pipeline_w4"]["pairs_per_s"]
                / report_modes["legacy"]["pairs_per_s"], 2),
            "bucketing_pad_reduction": round(
                1.0 - bucketed_overhead / shuffled_overhead, 4),
        },
    }
    output.write_text(json.dumps(report, indent=2) + "\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    write_jsonl(registry, RESULTS_DIR / "data_metrics.jsonl")

    lines = [f"data pipeline ({report['profile']} profile) — pairs/sec over "
             f"{len(trips)} trips ({num_pairs} pairs per epoch)"]
    for mode in MODES:
        res = report_modes[mode]
        lines.append(f"  {mode:12s}: {res['pairs_per_s']:>10,.0f} pairs/s  "
                     f"epoch {res['epoch_s'] * 1e3:>8,.1f} ms")
    summary = report["summary"]
    lines.append(f"  pipeline speedup vs legacy: {summary['pipeline_w0_speedup']}x "
                 f"in-process, {summary['pipeline_w4_speedup']}x at 4 workers")
    lines.append(f"  pad tokens per real token: "
                 f"{report['padding']['bucketed_pad_per_real_token']:.4f} "
                 f"bucketed vs "
                 f"{report['padding']['shuffled_pad_per_real_token']:.4f} "
                 f"shuffle-only "
                 f"({summary['bucketing_pad_reduction']:.1%} less padding)")
    print("\n".join(lines))
    return report


def test_data_smoke(tmp_path):
    """Smoke gate: every mode runs end to end and the report is sane."""
    report = run(smoke=True, output=tmp_path / "BENCH_data.json")
    for mode in MODES:
        assert report["results"][mode]["pairs_per_s"] > 0
    padding = report["padding"]
    assert padding["bucketed_pad_per_real_token"] >= 0
    # Length bucketing pads less than shuffle-only even at smoke scale.
    assert (padding["bucketed_pad_per_real_token"]
            < padding["shuffled_pad_per_real_token"])
    assert (tmp_path / "BENCH_data.json").exists()


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny profile for CI (also: REPRO_BENCH_FAST=1)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="where to write the JSON report")
    args = parser.parse_args(argv)
    report = run(smoke=args.smoke or FAST, output=args.output)
    if report["profile"] == "full":
        summary = report["summary"]
        assert summary["pipeline_w4_speedup"] >= 2.0, summary
        assert summary["bucketing_pad_reduction"] > 0.0, summary


if __name__ == "__main__":
    main()
