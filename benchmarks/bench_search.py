"""Query-throughput gate: batched vector search vs. the per-query loop.

The serving path of the paper (Section IV-D) is Euclidean k-NN over
encoded vectors.  This bench measures, on a synthetic clustered vector
database standing in for encoded trips (routes cluster in representation
space, which is exactly what makes LSH useful there):

* **exact_loop** — the pre-batching path: one ``ExactIndex.knn_scan``
  per query (a python loop of full-database scans);
* **exact_batch** — ``ExactIndex.knn_batch``: the whole query block
  through the blocked ``||x||² + ||q||² − 2·X@Qᵀ`` GEMM kernel;
* **lsh_loop** — one ``LSHIndex.knn`` per query;
* **lsh_batch** — ``LSHIndex.knn_batch``: batched signatures, queries
  grouped by bucket, exact re-ranking per group.

Reported per mode: queries/sec (from the best round) and per-query
latency percentiles through the telemetry registry.  LSH modes also
report recall against the exact top-k.

Timing protocol (same as bench_throughput): the host is a contended
CPU, so the modes are interleaved round-robin and each keeps its
*minimum* round time — the minimum converges to the uncontended cost
and every mode sees the same interference pattern.

Run standalone (writes ``BENCH_search.json`` at the repo root)::

    PYTHONPATH=src python benchmarks/bench_search.py [--smoke]

or under pytest (``pytest benchmarks/bench_search.py``), which runs the
smoke profile.  ``REPRO_BENCH_FAST=1`` also selects the smoke profile.
Per-mode metrics additionally land in
``benchmarks/results/search_metrics.jsonl``.

Full-profile gate (checked when run standalone): batched exact must
clear ≥5x the per-query loop's queries/sec, and batched LSH must beat
batched exact at recall ≥ 0.9.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.index import ExactIndex, LSHIndex
from repro.telemetry import MetricsRegistry, write_jsonl

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = Path(__file__).parent / "results"
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_search.json"

FAST = os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")

#: Workload profiles.  Vectors are a mixture of tight clusters (cluster
#: std << inter-center distance), mimicking encoded trajectories where
#: trips sharing a route land near each other; queries are perturbed
#: database members, so their true neighbours are cluster-mates.
PROFILES = {
    "full": dict(n=200_000, dim=64, clusters=2000, cluster_std=0.05,
                 queries=128, k=10, rounds=3,
                 num_tables=8, num_bits=16, block_rows=32768),
    "smoke": dict(n=4000, dim=32, clusters=80, cluster_std=0.05,
                  queries=32, k=5, rounds=2,
                  num_tables=8, num_bits=10, block_rows=1024),
}

MODES = ("exact_loop", "exact_batch", "lsh_loop", "lsh_batch")


def make_workload(profile: dict):
    """Clustered database vectors + queries near database members."""
    rng = np.random.default_rng(0)
    centers = rng.standard_normal((profile["clusters"], profile["dim"]))
    assign = np.arange(profile["n"]) % profile["clusters"]
    vectors = (centers[assign] + profile["cluster_std"]
               * rng.standard_normal((profile["n"], profile["dim"])))
    vectors = vectors.astype(np.float32)
    picks = rng.integers(0, profile["n"], size=profile["queries"])
    queries = (vectors[picks] + profile["cluster_std"]
               * rng.standard_normal((profile["queries"], profile["dim"]))
               .astype(np.float32))
    return vectors, queries.astype(np.float32)


def run(smoke: bool = False, output: Path = DEFAULT_OUTPUT) -> dict:
    profile = PROFILES["smoke" if smoke else "full"]
    registry = MetricsRegistry()
    vectors, queries = make_workload(profile)
    k = profile["k"]
    num_q = len(queries)

    exact = ExactIndex(vectors, registry=registry,
                       block_rows=profile["block_rows"])
    lsh = LSHIndex(vectors, num_tables=profile["num_tables"],
                   num_bits=profile["num_bits"], seed=0, registry=registry,
                   block_rows=profile["block_rows"])

    def run_exact_loop():
        return np.stack([exact.knn_scan(q, k)[0] for q in queries])

    def run_exact_batch():
        return exact.knn_batch(queries, k)[0]

    def run_lsh_loop():
        return np.stack([lsh.knn(q, k)[0] for q in queries])

    def run_lsh_batch():
        return lsh.knn_batch(queries, k)[0]

    runners = {"exact_loop": run_exact_loop, "exact_batch": run_exact_batch,
               "lsh_loop": run_lsh_loop, "lsh_batch": run_lsh_batch}

    results = {mode: runners[mode]() for mode in MODES}   # warmup + output
    best = {mode: float("inf") for mode in MODES}
    for _ in range(profile["rounds"]):
        for mode in MODES:
            start = time.perf_counter()
            runners[mode]()
            elapsed = time.perf_counter() - start
            best[mode] = min(best[mode], elapsed)
            registry.histogram(f"search.{mode}.query_s").observe(
                elapsed / num_q)

    truth = [set(row.tolist()) for row in results["exact_batch"]]
    report_modes = {}
    for mode in MODES:
        qps = num_q / best[mode]
        registry.gauge(f"search.{mode}.queries_per_s").set(qps)
        hist = registry.histogram(f"search.{mode}.query_s")
        recall = float(np.mean([
            len(truth[i] & set(results[mode][i].tolist())) / k
            for i in range(num_q)]))
        report_modes[mode] = {
            "queries_per_s": round(qps, 1),
            "query_latency_s": {
                "min": round(min(hist.values), 8),
                "mean": round(hist.mean, 8),
                "p95": round(hist.percentile(95), 8),
            },
            "recall_vs_exact": round(recall, 4),
        }

    avg_candidates = registry.histogram("index.lsh.candidates")
    report = {
        "benchmark": "bench_search",
        "profile": "smoke" if smoke else "full",
        "workload": {key: profile[key] for key in
                     ("n", "dim", "clusters", "cluster_std", "queries", "k",
                      "num_tables", "num_bits", "block_rows")},
        "timing": "interleaved rounds, per-mode minimum round time",
        "results": report_modes,
        "summary": {
            "exact_batch_speedup": round(
                report_modes["exact_batch"]["queries_per_s"]
                / report_modes["exact_loop"]["queries_per_s"], 2),
            "lsh_batch_speedup": round(
                report_modes["lsh_batch"]["queries_per_s"]
                / report_modes["exact_loop"]["queries_per_s"], 2),
            "lsh_batch_vs_exact_batch": round(
                report_modes["lsh_batch"]["queries_per_s"]
                / report_modes["exact_batch"]["queries_per_s"], 2),
            "lsh_recall": report_modes["lsh_batch"]["recall_vs_exact"],
            "lsh_mean_candidates": round(avg_candidates.mean, 1)
            if avg_candidates.values else None,
        },
    }
    output.write_text(json.dumps(report, indent=2) + "\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    write_jsonl(registry, RESULTS_DIR / "search_metrics.jsonl")

    lines = [f"search throughput ({report['profile']} profile) — "
             f"queries/sec over {profile['n']:,} vectors, k={k}"]
    for mode in MODES:
        res = report_modes[mode]
        lines.append(f"  {mode:11s}: {res['queries_per_s']:>10,.0f} q/s  "
                     f"p95 {res['query_latency_s']['p95'] * 1e6:>8,.1f} µs/q  "
                     f"recall {res['recall_vs_exact']:.3f}")
    summary = report["summary"]
    lines.append(f"  batched-exact speedup {summary['exact_batch_speedup']}x, "
                 f"lsh-batch vs exact-batch "
                 f"{summary['lsh_batch_vs_exact_batch']}x at recall "
                 f"{summary['lsh_recall']:.3f}")
    print("\n".join(lines))
    return report


def test_search_smoke(tmp_path):
    """Smoke gate: all four modes run end to end and the report is sane."""
    report = run(smoke=True, output=tmp_path / "BENCH_search.json")
    for mode in MODES:
        res = report["results"][mode]
        assert res["queries_per_s"] > 0
        assert res["query_latency_s"]["p95"] > 0
    assert report["results"]["exact_batch"]["recall_vs_exact"] == 1.0
    assert report["results"]["lsh_batch"]["recall_vs_exact"] > 0.5
    # Batched exact beats the per-query loop even at smoke scale.
    assert report["summary"]["exact_batch_speedup"] > 1.0
    assert (tmp_path / "BENCH_search.json").exists()


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny profile for CI (also: REPRO_BENCH_FAST=1)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="where to write the JSON report")
    args = parser.parse_args(argv)
    report = run(smoke=args.smoke or FAST, output=args.output)
    if report["profile"] == "full":
        summary = report["summary"]
        assert summary["exact_batch_speedup"] >= 5.0, summary
        assert summary["lsh_batch_vs_exact_batch"] > 1.0, summary
        assert summary["lsh_recall"] >= 0.9, summary


if __name__ == "__main__":
    main()
