"""Table VIII — effect of the cell size (spatial resolution).

Paper shape (cell sizes 25/50/100/150 m): the finest grid (25 m) is by
far the worst — the vocabulary explodes and the model is much harder to
train — while 100 m gives the best mean rank and 150 m is about equal.
Training time falls monotonically as cells grow.
"""

import numpy as np

from repro.eval import build_setup, format_table, mean_rank

from .conftest import FAST, bench_config, fit_cached, run_once, write_result

CELL_SIZES = [25.0, 50.0, 100.0, 150.0] if not FAST else [50.0, 150.0]
TRIPS = 200 if not FAST else 60
EPOCHS = 6 if not FAST else 2
HIDDEN = 48 if not FAST else 24
NUM_QUERIES = 30 if not FAST else 8
FILLERS = 250 if not FAST else 50
RATES = [0.5, 0.6]


def test_table8_cell_size(benchmark, porto_bench):
    train = porto_bench.train[:TRIPS]
    rows = {}
    vocab_sizes = {}
    times = {}

    def run():
        for cell in CELL_SIZES:
            tag = f"ablate_cell_{int(cell)}"
            model = fit_cached(tag, bench_config(
                hidden=HIDDEN, epochs=EPOCHS, cell_size=cell), train)
            vocab_sizes[cell] = model.vocab.num_hot_cells
            times[cell] = (model.last_result.wall_time_s
                           if model.last_result else float("nan"))
            ranks = []
            for r1 in RATES:
                setup = build_setup(porto_bench.queries_pool,
                                    porto_bench.filler_pool[:FILLERS],
                                    NUM_QUERIES, dropping_rate=r1,
                                    rng=np.random.default_rng(13))
                ranks.append(mean_rank(model, setup))
            rows[f"{int(cell)}m"] = ranks
        return rows

    results = run_once(benchmark, run)
    text = format_table(
        "Table VIII: mean rank per cell size (rows) at r1=0.5/0.6",
        "r1", RATES, results)
    text += "\n\n#hot cells: " + "  ".join(
        f"{int(c)}m={v}" for c, v in vocab_sizes.items())
    timed = {c: t for c, t in times.items() if np.isfinite(t)}
    if timed:
        text += "\ntraining time (s): " + "  ".join(
            f"{int(c)}m={t:.0f}" for c, t in timed.items())
    write_result("table8_cell_size", text)

    # Shape: finer cells mean (weakly) more hot cells — higher model
    # complexity, the paper's explanation for the 25 m degradation.
    cells = sorted(vocab_sizes)
    assert vocab_sizes[cells[0]] >= vocab_sizes[cells[-1]]
