"""Ablations for design choices not covered by a paper table (DESIGN.md §5).

* GRU vs LSTM — the paper picks GRU for equal quality at lower cost
  (Section V-B); we train both at identical budgets and compare mean
  rank and wall time.
* Dense vs gathered L3 — this implementation adds a dense masked-softmax
  fast path for small vocabularies (nn/loss.py); the bench times both
  paths on identical inputs to justify the `DENSE_L3_VOCAB_LIMIT` switch.
"""

import time

import numpy as np

from repro.core import EncoderDecoder, ModelConfig
from repro.eval import build_setup, format_table, mean_rank
from repro.nn import Tensor, masked_sampled_loss, sampled_weighted_loss

from .conftest import FAST, bench_config, fit_cached, run_once, write_result

TRIPS = 150 if not FAST else 50
EPOCHS = 5 if not FAST else 2
HIDDEN = 32 if not FAST else 16
NUM_QUERIES = 25 if not FAST else 8
FILLERS = 200 if not FAST else 50
RATES = [0.0, 0.5]


def test_ablation_gru_vs_lstm(benchmark, porto_bench):
    train = porto_bench.train[:TRIPS]
    rows, times = {}, {}

    def run():
        for rnn_type in ("gru", "lstm"):
            tag = f"ablate_rnn_{rnn_type}"
            model = fit_cached(tag, bench_config(
                hidden=HIDDEN, epochs=EPOCHS, rnn_type=rnn_type), train)
            if model.last_result:
                times[rnn_type] = model.last_result.wall_time_s
            ranks = []
            for r1 in RATES:
                setup = build_setup(porto_bench.queries_pool,
                                    porto_bench.filler_pool[:FILLERS],
                                    NUM_QUERIES, dropping_rate=r1,
                                    rng=np.random.default_rng(23))
                ranks.append(mean_rank(model, setup))
            rows[rnn_type] = ranks
        return rows

    results = run_once(benchmark, run)
    text = format_table("Ablation: GRU vs LSTM encoder-decoder "
                        "(mean rank at r1=0/0.5)", "r1", RATES, results)
    if times:
        text += "\n\ntraining time (s): " + "  ".join(
            f"{k}={v:.0f}" for k, v in times.items())
    write_result("ablation_rnn_type", text)
    # Shape (paper's rationale): GRU is competitive with LSTM.
    assert np.mean(results["gru"]) < 2.5 * np.mean(results["lstm"]) + 5.0


def test_ablation_l3_dense_vs_gathered(benchmark, porto_bench):
    """Identical L3 objective, two implementations: measure the speed gap."""
    rng = np.random.default_rng(0)
    vocab = porto_bench.vocab
    rows, hidden_dim, k, noise = 4096, 64, 10, 64
    model = EncoderDecoder(ModelConfig(vocab.size, hidden_dim, hidden_dim,
                                       num_layers=1, dropout=0.0))
    hidden_data = rng.standard_normal((rows, hidden_dim)).astype(np.float32)
    targets = rng.integers(4, vocab.size, size=rows)
    cand, knn_w = vocab.proximity_candidates(targets, k, theta=100.0)
    noise_tokens = vocab.sample_noise(rng, rows, noise)

    def dense_path():
        hidden = Tensor(hidden_data, requires_grad=True)
        row_idx = np.arange(rows)[:, None]
        weights = np.zeros((rows, vocab.size), dtype=np.float32)
        weights[row_idx, cand] = knn_w
        bias = np.full((rows, vocab.size), -1e9, dtype=np.float32)
        bias[row_idx, cand] = 0.0
        bias[row_idx, noise_tokens] = 0.0
        loss = masked_sampled_loss(model.logits(hidden), weights, bias)
        loss.backward()
        return loss.item()

    def gathered_path():
        hidden = Tensor(hidden_data, requires_grad=True)
        candidates = np.concatenate([cand, noise_tokens], axis=1)
        weights = np.concatenate(
            [knn_w, np.zeros_like(noise_tokens, dtype=float)], axis=1)
        loss = sampled_weighted_loss(hidden, model.proj_weight, candidates,
                                     weights, proj_bias=model.proj_bias)
        loss.backward()
        return loss.item()

    dense_value = run_once(benchmark, dense_path)

    def timed(fn, repeats=3):
        fn()
        start = time.perf_counter()
        for _ in range(repeats):
            fn()
        return (time.perf_counter() - start) / repeats

    dense_t = timed(dense_path)
    gathered_t = timed(gathered_path)
    gathered_value = gathered_path()
    text = (f"L3 paths on vocab={vocab.size}, rows={rows}:\n"
            f"dense masked softmax   {dense_t * 1e3:.1f} ms/step "
            f"(loss {dense_value:.4f})\n"
            f"gathered sampled loss  {gathered_t * 1e3:.1f} ms/step "
            f"(loss {gathered_value:.4f})")
    write_result("ablation_l3_paths", text)
    # Same objective up to noise-collision handling: the dense path dedups
    # noise cells that collide with candidates (a bias cell is zeroed
    # twice), while the gathered path counts them twice in the partition
    # estimate — a small systematic difference, not an error.
    assert abs(dense_value - gathered_value) < 0.05 * max(abs(dense_value), 1.0)
