"""Table VII — loss-function ablation: L1 vs L2 vs L3 vs L3+CL.

Paper shape: L3 improves mean rank dramatically over L1; adding cell
pretraining (CL) improves it a little more *and* cuts training time by a
third; L2 (exact spatial loss) is so expensive it never converged in the
authors' 5-day budget.

Each variant trains a small model from scratch (cached on disk), then is
scored on most-similar search at dropping rates 0.4/0.5/0.6.
"""

import numpy as np

from repro.eval import build_setup, format_table, mean_rank

from .conftest import FAST, bench_config, fit_cached, run_once, write_result

RATES = [0.4, 0.5, 0.6]
TRIPS = 200 if not FAST else 60
EPOCHS = 6 if not FAST else 2
HIDDEN = 48 if not FAST else 24
NUM_QUERIES = 30 if not FAST else 8
FILLERS = 250 if not FAST else 50

VARIANTS = [
    ("L1", dict(kind="L1"), False),
    ("L2", dict(kind="L2"), False),
    ("L3", dict(kind="L3"), False),
    ("L3+CL", dict(kind="L3"), True),
]


def _variant_config(loss_kwargs, pretrain):
    from repro import LossSpec
    return bench_config(
        hidden=HIDDEN, epochs=EPOCHS,
        loss=LossSpec(k_nearest=10, theta=100.0, noise=48, **loss_kwargs),
        pretrain_cells=pretrain,
    )


def test_table7_loss_ablation(benchmark, porto_bench):
    train = porto_bench.train[:TRIPS]
    rows = {}
    times = {}

    def run():
        for name, loss_kwargs, pretrain in VARIANTS:
            tag = f"ablate_loss_{name.replace('+', '_')}"
            model = fit_cached(tag, _variant_config(loss_kwargs, pretrain),
                               train)
            times[name] = (model.last_result.wall_time_s
                           if model.last_result else float("nan"))
            ranks = []
            for r1 in RATES:
                setup = build_setup(porto_bench.queries_pool,
                                    porto_bench.filler_pool[:FILLERS],
                                    NUM_QUERIES, dropping_rate=r1,
                                    rng=np.random.default_rng(11))
                ranks.append(mean_rank(model, setup))
            rows[name] = ranks
        return rows

    results = run_once(benchmark, run)
    text = format_table(
        "Table VII: mean rank per loss function (rows) at r1=0.4/0.5/0.6",
        "r1", RATES, results)
    timed = {k: v for k, v in times.items() if np.isfinite(v)}
    if timed:
        text += "\n\ntraining time (s): " + "  ".join(
            f"{k}={v:.0f}" for k, v in timed.items())
    write_result("table7_loss_ablation", text)

    # Shape: the spatial losses beat plain NLL on average.
    l1_mean = np.mean(results["L1"])
    assert np.mean(results["L3"]) < l1_mean
    assert np.mean(results["L3+CL"]) < l1_mean
