"""Figure 7 — effect of the training-data size.

Paper shape: mean rank (at r1=0.6) falls steeply as training data grows
from 0.2M to 0.6M trips, then the marginal benefit flattens.  Scaled
here to hundreds of trips with the same qualitative expectation.
"""

import numpy as np

from repro.eval import build_setup, format_table, line_chart, mean_rank

from .conftest import FAST, bench_config, fit_cached, run_once, write_result

TRAIN_SIZES = [50, 100, 200, 400] if not FAST else [40, 120]
HIDDEN = 48 if not FAST else 24
NUM_QUERIES = 40 if not FAST else 8
FILLERS = 250 if not FAST else 50
R1 = 0.6
# Equal-optimization protocol: every size sees the same number of
# training pairs (the paper trains each size to convergence; with a fixed
# epoch count, small sets would confound data volume with step count).
PAIRS_BUDGET = 12800 if not FAST else 2000


def _epochs_for(size: int) -> int:
    pairs_per_epoch = 16 * size
    return int(np.clip(round(PAIRS_BUDGET / pairs_per_epoch), 2, 16))


def test_fig7_training_size(benchmark, porto_bench):
    rows = {"t2vec": []}

    def run():
        for size in TRAIN_SIZES:
            tag = f"ablate_trainsize_{size}"
            model = fit_cached(tag, bench_config(
                hidden=HIDDEN, epochs=_epochs_for(size)),
                porto_bench.train[:size])
            setup = build_setup(porto_bench.queries_pool,
                                porto_bench.filler_pool[:FILLERS],
                                NUM_QUERIES, dropping_rate=R1,
                                rng=np.random.default_rng(19))
            rows["t2vec"].append(mean_rank(model, setup))
        return rows

    results = run_once(benchmark, run)
    text = format_table(
        f"Figure 7: mean rank (r1={R1}) vs training-set size (trips)",
        "#train", TRAIN_SIZES, results)
    if len(TRAIN_SIZES) > 1:
        text += "\n\n" + line_chart(
            f"Figure 7 (chart): mean rank vs training size (r1={R1})",
            TRAIN_SIZES, results, height=12, y_label="mean rank")
    write_result("fig7_training_size", text)

    # Shape: the largest training set is not worse than the typical
    # smaller one (mean-rank estimates at this query count are noisy, so
    # the check is directional rather than strictly monotone).
    ranks = results["t2vec"]
    assert ranks[-1] <= float(np.median(ranks[:-1])) + 2.0
