"""Table III — mean rank versus database size (Experiment 1, both cities).

Paper shape @100k DB (Porto): t2vec 7.67 < EDwP 28.90 < EDR 130.98 <
LCSS 150.67 < vRNN 163.10 < CMS 291.26; all methods degrade as the
database grows.  Here the database sizes are scaled ~100x down.
"""

import pytest

from repro.baselines import CMS, EDR, LCSS, EDwP
from repro.eval import experiment_db_size, format_table

from .conftest import FAST, run_once, write_result

DB_SIZES = [100, 200, 400, 800] if not FAST else [50, 100]
NUM_QUERIES = 40 if not FAST else 10


@pytest.mark.parametrize("city_fixture", ["porto_bench", "harbin_bench"])
def test_table3_mean_rank_vs_db_size(benchmark, request, city_fixture):
    bench = request.getfixturevalue(city_fixture)
    measures = [bench.model, EDwP(), EDR(100.0), LCSS(100.0),
                bench.vrnn, CMS(bench.vocab)]

    def run():
        return experiment_db_size(
            measures, bench.queries_pool, bench.filler_pool,
            num_queries=NUM_QUERIES, db_sizes=DB_SIZES, seed=7)

    results = run_once(benchmark, run)
    write_result(f"table3_dbsize_{bench.name}", format_table(
        f"Table III ({bench.name}): mean rank vs database size",
        "DB size", DB_SIZES, results))

    # Shape assertions (paper): ranks grow with DB size, and a weak
    # baseline (order-blind CMS, or the undertrained-LM vRNN) is the
    # worst method at the largest size; CMS never beats EDwP.
    for name, ranks in results.items():
        assert ranks[-1] >= ranks[0] - 1.0, name
    largest = {name: ranks[-1] for name, ranks in results.items()}
    worst = max(largest, key=largest.get)
    assert worst in ("CMS", "vRNN"), worst
    assert largest["CMS"] > largest["EDwP"]
